//! PERF.md W7 driver: streaming trace ingest — events/sec and the
//! peak-RSS-vs-trace-length curve — plus the bounded-memory smoke that
//! tier1.sh runs under `--release`.
//!
//! ```sh
//! cargo run -p thicket-bench --release --example trace_bench             # W7 curve
//! cargo run -p thicket-bench --release --example trace_bench -- smoke    # RSS budget smoke (24 MiB)
//! cargo run -p thicket-bench --release --example trace_bench -- smoke 32 # explicit budget (MiB)
//! ```
//!
//! Each curve point re-execs this binary (`child` mode, via
//! `current_exe`) so every measurement gets a fresh process and an
//! untouched `VmHWM` high-water mark — the peak is attributable to that
//! one ingest, not to whichever earlier point grew the heap most.
//!
//! The smoke emits a trace at least 4× a configured RSS budget, streams
//! it through the `LoadSource::trace` pipeline in a child process, and
//! exits nonzero if the child's peak RSS reached the budget: the
//! bounded-memory claim (resident state is O(tree depth × ranks), not
//! O(events)) is enforced in CI, not just asserted in prose.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

use thicket_core::{LoadSource, Thicket};
use thicket_perfsim::{emit_trace_to_path, TraceConfig};

/// Peak resident set size of this process in KiB, from Linux procfs.
fn vmhwm_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-trace-bench-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Child mode: stream one trace into a thicket, report to stdout in a
/// `key=value` line the parent parses.
fn child(trace: &Path) {
    let t = Instant::now();
    let (tk, report) = Thicket::loader(LoadSource::trace(trace))
        .load()
        .expect("child ingest failed");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(report.is_clean(), "child ingest not clean: {}", report.summary());
    println!(
        "CHILD ms={ms:.1} profiles={} vmhwm_kib={}",
        tk.metadata().len(),
        vmhwm_kib().unwrap_or(0),
    );
}

/// Spawn `child` on a trace and return `(ingest ms, peak RSS KiB)`.
fn run_child(trace: &Path) -> (f64, u64) {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .arg("child")
        .arg(trace)
        .output()
        .expect("spawn child");
    assert!(
        out.status.success(),
        "child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> f64 {
        stdout
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("child output missing {key}: {stdout}"))
    };
    (field("ms"), field("vmhwm_kib") as u64)
}

/// W7 curve: ingest time and peak RSS at doubling trace lengths. The
/// headline is the last column staying flat while the first doubles.
fn curve() {
    let dir = scratch("curve");
    println!("## W7: streaming trace ingest (`trace_bench`)");
    println!();
    println!("| events | trace size | ingest | events/s | peak RSS |");
    println!("|---|---|---|---|---|");
    for passes in [1000u32, 4000, 16000] {
        let cfg = TraceConfig::quartz(4, passes, 7);
        let path = dir.join(format!("w7-{passes}.trace"));
        let events = emit_trace_to_path(&cfg, &path).expect("emit trace");
        let bytes = std::fs::metadata(&path).expect("stat trace").len();
        let (ms, hwm_kib) = run_child(&path);
        println!(
            "| {events} | {:.1} MiB | {ms:.0} ms | {:.2}M | {:.1} MiB |",
            bytes as f64 / (1 << 20) as f64,
            events as f64 / (ms / 1e3) / 1e6,
            hwm_kib as f64 / 1024.0,
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Bounded-memory smoke: a trace ≥ 4× the RSS budget must stream
/// through ingest with peak RSS strictly under the budget.
fn smoke(budget_mib: u64) {
    let budget_bytes = budget_mib * (1 << 20);
    let dir = scratch("smoke");
    let path = dir.join("smoke.trace");

    // Size the trace from the per-pass event count (conservative 20
    // bytes/event estimate overshoots), then verify the real file.
    let per_pass = TraceConfig::quartz(8, 1, 3).events_total();
    let target_events = 4 * budget_bytes / 20;
    let passes = (target_events / per_pass + 1) as u32;
    let cfg = TraceConfig::quartz(8, passes, 3);
    let events = emit_trace_to_path(&cfg, &path).expect("emit trace");
    let bytes = std::fs::metadata(&path).expect("stat trace").len();
    assert!(
        bytes >= 4 * budget_bytes,
        "smoke trace undersized: {bytes} bytes for a {budget_mib} MiB budget"
    );

    let (ms, hwm_kib) = run_child(&path);
    let hwm_bytes = hwm_kib * 1024;
    println!(
        "W7 smoke: {events} events ({:.0} MiB trace) ingested in {ms:.0} ms \
         ({:.2}M events/s), peak RSS {:.1} MiB under a {budget_mib} MiB budget",
        bytes as f64 / (1 << 20) as f64,
        events as f64 / (ms / 1e3) / 1e6,
        hwm_kib as f64 / 1024.0,
    );
    let _ = std::fs::remove_dir_all(&dir);
    if hwm_bytes >= budget_bytes {
        eprintln!(
            "trace_bench: FAIL — peak RSS {hwm_bytes} bytes reached the \
             {budget_bytes}-byte budget on a {bytes}-byte trace"
        );
        std::process::exit(1);
    }
}

fn main() {
    if vmhwm_kib().is_none() {
        println!("trace_bench: no /proc/self/status (non-Linux host); skipping");
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("child") => {
            let trace = args.get(1).expect("child mode needs a trace path");
            child(Path::new(trace));
        }
        Some("smoke") => {
            let budget = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(24);
            smoke(budget);
        }
        _ => curve(),
    }
}
