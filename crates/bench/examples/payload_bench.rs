//! PERF.md workload driver: medians for the canonical store-format and
//! ingest experiments, printed as ready-to-paste markdown.
//!
//! ```sh
//! cargo run -p thicket-bench --release --example payload_bench
//! ```
//!
//! Workloads (one change per experiment):
//!
//! * **W1 — store load, v2 vs v3**: the same 2,000-profile RAJAPerf
//!   ensemble saved under v2 (JSON payloads) and v3 (binary columnar
//!   payloads), timed through the identical `load_all` path. The only
//!   variable is the per-record decode.
//! * **W2 — pushdown read**: same stores, `seed < 10` predicate (10 of
//!   2,000 kept), plus the `bytes_read` accounting for each.
//! * **W3 — threaded ingest**: thicket assembly from 560 in-memory
//!   profiles at 1/2/4/8 worker threads (the multicore scaling curve;
//!   on a single-core host this measures the fan-out overhead floor).

use std::time::Instant;
use thicket_core::Thicket;
use thicket_dataframe::Value;
use thicket_perfsim::{ManifestVersion, MetaPred, Store, StoreOptions};

const RUNS: usize = 5;

/// Median wall-clock milliseconds over [`RUNS`] runs of `f`.
fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    eprintln!("generating {n} profiles...");
    let profiles = thicket_bench::data::quartz_runs(n, 1_048_576);

    println!("## Store payload format: v2 (JSON) vs v3 (binary), {n} profiles\n");
    let mut dirs = Vec::new();
    let mut store_bytes = Vec::new();
    for (name, version) in [("v2", ManifestVersion::V2), ("v3", ManifestVersion::V3)] {
        let dir = std::env::temp_dir().join(format!("thicket-payloadbench-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            format: version,
            ..StoreOptions::default()
        };
        let t = Instant::now();
        Store::save_opts(&dir, &profiles, &opts).unwrap();
        let save_ms = t.elapsed().as_secs_f64() * 1e3;
        let bytes: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        println!("- {name}: save {save_ms:.0} ms, {:.1} MiB on disk", bytes as f64 / (1 << 20) as f64);
        dirs.push((name, dir));
        store_bytes.push(bytes);
    }
    println!();
    println!("| workload | v2 median | v3 median | speedup |");
    println!("|---|---|---|---|");

    let mut full = Vec::new();
    let mut push = Vec::new();
    let mut push_bytes = Vec::new();
    for (_, dir) in &dirs {
        full.push(median_ms(|| {
            let (p, rep) = Store::open(dir).unwrap().load_all().unwrap();
            assert!(rep.is_clean());
            assert_eq!(p.len() as u64, n);
        }));
        let reader = Store::open(dir).unwrap();
        let (kept, _) = reader.load_matching(&MetaPred::lt("seed", 10i64)).unwrap();
        assert_eq!(kept.len(), 10);
        push_bytes.push(reader.bytes_read());
        push.push(median_ms(|| {
            let (p, _) = Store::open(dir).unwrap().load_matching(&MetaPred::lt("seed", 10i64)).unwrap();
            assert_eq!(p.len(), 10);
        }));
    }
    println!(
        "| full load ({n} profiles) | {:.0} ms | {:.0} ms | {:.2}x |",
        full[0], full[1], full[0] / full[1]
    );
    println!(
        "| pushdown load (10 of {n}) | {:.1} ms | {:.1} ms | {:.2}x |",
        push[0], push[1], push[0] / push[1]
    );
    println!(
        "\npushdown bytes_read: v2 {} / v3 {}; store size: v2 {:.1} MiB / v3 {:.1} MiB ({:.2}x)\n",
        push_bytes[0],
        push_bytes[1],
        store_bytes[0] as f64 / (1 << 20) as f64,
        store_bytes[1] as f64 / (1 << 20) as f64,
        store_bytes[0] as f64 / store_bytes[1] as f64,
    );
    for (_, dir) in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }

    let m = 560u64.min(n);
    let ingest: Vec<_> = profiles[..m as usize].to_vec();
    let ids: Vec<Value> = (0..m as i64).map(Value::Int).collect();
    println!("## Threaded ingest, {m} in-memory profiles → thicket\n");
    println!("| threads | median |");
    println!("|---|---|");
    for threads in [1usize, 2, 4, 8] {
        let ms = median_ms(|| {
            Thicket::loader(&ingest[..])
                .profile_ids(&ids)
                .threads(threads)
                .load()
                .unwrap();
        });
        println!("| {threads} | {ms:.0} ms |");
    }
    eprintln!("done");
}
