//! PERF.md workload driver: medians for the canonical store-format and
//! ingest experiments, printed as ready-to-paste markdown.
//!
//! ```sh
//! cargo run -p thicket-bench --release --example payload_bench            # all workloads, 2000 profiles
//! cargo run -p thicket-bench --release --example payload_bench -- 600    # smaller ensemble
//! cargo run -p thicket-bench --release --example payload_bench -- 60 w4  # W4 smoke only
//! ```
//!
//! Workloads (one change per experiment):
//!
//! * **W1 — store load, v2 vs v3**: the same 2,000-profile RAJAPerf
//!   ensemble saved under v2 (JSON payloads) and v3 (binary columnar
//!   payloads), timed through the identical `load_all` path. The only
//!   variable is the per-record decode.
//! * **W2 — pushdown read**: same stores, `seed < 10` predicate (10 of
//!   2,000 kept), plus the `bytes_read` accounting for each.
//! * **W3 — threaded ingest**: thicket assembly from 560 in-memory
//!   profiles at 1/2/4/8 worker threads (the multicore scaling curve;
//!   on a single-core host this measures the fan-out overhead floor).
//! * **W4 — predicate engine**: the same predicates evaluated by the
//!   per-row walk and by the vectorized bitmap evaluator, over store
//!   metadata (selection only) and over the composed perf frame, plus
//!   the end-to-end planner split (metadata conjunct pushed below the
//!   shard read, frame conjunct applied post-compose) vs a full load.
//! * **W5 — snapshot pinning**: the W1 full load and the W2-style
//!   pushdown read through a plain reader vs a generation-pinned
//!   snapshot (`Store::open_pinned`: lease file + held shard handles).
//!   The only variable is the pinning layer; it must be ~free.

use std::time::Instant;
use thicket_core::{LoadSource, Thicket};
use thicket_dataframe::{ColKey, PredExpr, Value};
use thicket_perfsim::{ManifestVersion, MetaPred, Store, StoreOptions};

const RUNS: usize = 5;

/// Median wall-clock milliseconds over [`RUNS`] runs of `f`.
fn median_ms(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..RUNS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);
    let w4_only = std::env::args().nth(2).as_deref() == Some("w4");

    let nproc = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "rustc (version unavailable)".into());
    println!("_host: nproc = {nproc}, {rustc}_\n");

    eprintln!("generating {n} profiles...");
    let profiles = thicket_bench::data::quartz_runs(n, 1_048_576);

    if !w4_only {
        store_format_workloads(&profiles, n);
        threaded_ingest_workload(&profiles, n, nproc);
    }
    predicate_engine_workload(&profiles, n);
    if !w4_only {
        pinning_workload(&profiles, n);
    }
    eprintln!("done");
}

/// W1 + W2: v2 vs v3 full load and metadata pushdown.
fn store_format_workloads(profiles: &[thicket_perfsim::Profile], n: u64) {
    println!("## Store payload format: v2 (JSON) vs v3 (binary), {n} profiles\n");
    let mut dirs = Vec::new();
    let mut store_bytes = Vec::new();
    for (name, version) in [("v2", ManifestVersion::V2), ("v3", ManifestVersion::V3)] {
        let dir = std::env::temp_dir().join(format!("thicket-payloadbench-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            format: version,
            ..StoreOptions::default()
        };
        let t = Instant::now();
        Store::save_opts(&dir, profiles, &opts).unwrap();
        let save_ms = t.elapsed().as_secs_f64() * 1e3;
        let bytes: u64 = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().metadata().unwrap().len())
            .sum();
        println!("- {name}: save {save_ms:.0} ms, {:.1} MiB on disk", bytes as f64 / (1 << 20) as f64);
        dirs.push((name, dir));
        store_bytes.push(bytes);
    }
    println!();
    println!("| workload | v2 median | v3 median | speedup |");
    println!("|---|---|---|---|");

    let mut full = Vec::new();
    let mut push = Vec::new();
    let mut push_bytes = Vec::new();
    for (_, dir) in &dirs {
        full.push(median_ms(|| {
            let (p, rep) = Store::open(dir).unwrap().load_all().unwrap();
            assert!(rep.is_clean());
            assert_eq!(p.len() as u64, n);
        }));
        let reader = Store::open(dir).unwrap();
        let (kept, _) = reader.load_matching(&MetaPred::lt("seed", 10i64)).unwrap();
        assert_eq!(kept.len(), 10);
        push_bytes.push(reader.bytes_read());
        push.push(median_ms(|| {
            let (p, _) = Store::open(dir).unwrap().load_matching(&MetaPred::lt("seed", 10i64)).unwrap();
            assert_eq!(p.len(), 10);
        }));
    }
    println!(
        "| full load ({n} profiles) | {:.0} ms | {:.0} ms | {:.2}x |",
        full[0], full[1], full[0] / full[1]
    );
    println!(
        "| pushdown load (10 of {n}) | {:.1} ms | {:.1} ms | {:.2}x |",
        push[0], push[1], push[0] / push[1]
    );
    println!(
        "\npushdown bytes_read: v2 {} / v3 {}; store size: v2 {:.1} MiB / v3 {:.1} MiB ({:.2}x)\n",
        push_bytes[0],
        push_bytes[1],
        store_bytes[0] as f64 / (1 << 20) as f64,
        store_bytes[1] as f64 / (1 << 20) as f64,
        store_bytes[0] as f64 / store_bytes[1] as f64,
    );
    for (_, dir) in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// W3: thicket assembly at 1/2/4/8 worker threads.
fn threaded_ingest_workload(profiles: &[thicket_perfsim::Profile], n: u64, nproc: usize) {
    let m = 560u64.min(n);
    let ingest: Vec<_> = profiles[..m as usize].to_vec();
    let ids: Vec<Value> = (0..m as i64).map(Value::Int).collect();
    println!("## Threaded ingest, {m} in-memory profiles → thicket\n");
    println!("| threads | median |");
    println!("|---|---|");
    for threads in [1usize, 2, 4, 8] {
        let ms = median_ms(|| {
            Thicket::loader(&ingest[..])
                .profile_ids(&ids)
                .threads(threads)
                .load()
                .unwrap();
        });
        println!("| {threads} | {ms:.0} ms |");
    }
    if nproc == 1 {
        println!(
            "\n_nproc = 1: the curve above is flat by construction (fan-out \
             overhead floor only). Re-record on a multicore host before \
             citing a scaling number._"
        );
    }
    println!();
}

/// W4: row-walk vs vectorized predicate evaluation, and the planner
/// split end-to-end.
fn predicate_engine_workload(profiles: &[thicket_perfsim::Profile], n: u64) {
    // Selection repeats per timed sample: the individual scans are
    // sub-millisecond, the ratio is what matters.
    let reps: usize = 100;
    let meta_cut = (n / 10).max(1) as i64; // keep ~10% of profiles

    println!("## W4: predicate engine, {n}-profile store (selection reps = {reps})\n");
    let dir = std::env::temp_dir().join("thicket-payloadbench-w4");
    let _ = std::fs::remove_dir_all(&dir);
    Store::save_opts(
        &dir,
        profiles,
        &StoreOptions {
            format: ManifestVersion::V3,
            ..StoreOptions::default()
        },
    )
    .unwrap();

    // --- metadata-only selection: row walk over materialized entries
    // vs vectorized evaluation straight off the columnar manifest.
    let meta_expr = PredExpr::lt("seed", meta_cut);
    let reader = Store::open(&dir).unwrap();
    let expect = reader.select_expr(&meta_expr).unwrap().len();
    assert_eq!(expect as i64, meta_cut.min(n as i64));
    let _ = reader.entries(); // materialize once; time the walk, not the decode
    let rw_meta = median_ms(|| {
        for _ in 0..reps {
            let hits = reader
                .entries()
                .iter()
                .filter(|e| meta_expr.eval_lookup(&mut |k| e.meta(k).cloned()))
                .count();
            assert_eq!(hits, expect);
        }
    });
    let vec_meta = median_ms(|| {
        for _ in 0..reps {
            assert_eq!(reader.select_expr(&meta_expr).unwrap().len(), expect);
        }
    });

    // --- frame-only selection over the composed perf frame: closure
    // row walk, the engine's row-wise reference, and the bitmap
    // evaluator, all selecting the same rows.
    let (tk, _) = Thicket::loader(LoadSource::store(&dir)).load().unwrap();
    let perf = tk.perf_data();
    let metric = ColKey::new("time (exc)");
    let mut times = perf.column(&metric).unwrap().numeric_values();
    times.sort_by(f64::total_cmp);
    let threshold = times[times.len() / 2]; // median ⇒ ~half the rows match
    let frame_expr = PredExpr::gt("time (exc)", threshold);
    let src = perf.bind_source(&frame_expr);
    let expect_rows = frame_expr.eval(&src).count_ones();
    let rw_frame = median_ms(|| {
        for _ in 0..reps {
            let hits = (0..perf.len())
                .filter(|&i| perf.row(i).f64("time (exc)").is_some_and(|v| v > threshold))
                .count();
            assert_eq!(hits, expect_rows);
        }
    });
    let ref_frame = median_ms(|| {
        for _ in 0..reps {
            assert_eq!(frame_expr.eval_rowwise(&src).count_ones(), expect_rows);
        }
    });
    let vec_frame = median_ms(|| {
        for _ in 0..reps {
            assert_eq!(frame_expr.eval(&src).count_ones(), expect_rows);
        }
    });

    println!("| selection ({reps} scans) | row walk | engine row-wise | vectorized | speedup (walk/vec) |");
    println!("|---|---|---|---|---|");
    println!(
        "| metadata `seed < {meta_cut}` ({} entries) | {rw_meta:.1} ms | — | {vec_meta:.1} ms | {:.2}x |",
        n,
        rw_meta / vec_meta
    );
    println!(
        "| perf frame `time (exc) > median` ({} rows) | {rw_frame:.1} ms | {ref_frame:.1} ms | {vec_frame:.1} ms | {:.2}x |",
        perf.len(),
        rw_frame / vec_frame
    );

    // --- end-to-end planner split: full load + post-filter vs a
    // planned filter pushing the metadata conjunct below the shard read.
    let mixed = PredExpr::and([
        PredExpr::lt("seed", meta_cut),
        PredExpr::gt("time (exc)", threshold),
    ]);
    let (planned, report) = Thicket::loader(LoadSource::store(&dir))
        .filter(mixed.clone())
        .load()
        .unwrap();
    let plan = report.pushdown.expect("planned filters record a plan");
    let full_ms = median_ms(|| {
        let (tk, _) = Thicket::loader(LoadSource::store(&dir)).load().unwrap();
        assert_eq!(tk.profiles().len() as u64, n);
    });
    let planned_ms = median_ms(|| {
        let (tk, _) = Thicket::loader(LoadSource::store(&dir))
            .filter(mixed.clone())
            .load()
            .unwrap();
        assert_eq!(tk.profiles().len(), planned.profiles().len());
    });

    // bytes_read: the pushed conjunct bounds the shard I/O; the full
    // load pays for every record.
    let full_reader = Store::open(&dir).unwrap();
    full_reader.load_all().unwrap();
    let full_bytes = full_reader.bytes_read();
    let push_reader = Store::open(&dir).unwrap();
    push_reader
        .load_matching_expr(&PredExpr::lt("seed", meta_cut), 1)
        .unwrap();
    let push_bytes = push_reader.bytes_read();

    println!("\n| end-to-end (mixed predicate) | median | bytes_read |");
    println!("|---|---|---|");
    println!("| full load, filter post-compose | {full_ms:.0} ms | {full_bytes} |");
    println!(
        "| planner split ({} kept) | {planned_ms:.0} ms | {push_bytes} |",
        planned.profiles().len()
    );
    println!("\nplan: {plan}");
    println!(
        "bytes ratio {:.2}x, end-to-end {:.2}x\n",
        full_bytes as f64 / push_bytes as f64,
        full_ms / planned_ms
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// W5: pinned vs unpinned reads. `Snapshot` derefs to `StoreReader`,
/// so both columns time the identical load path — the delta is the
/// lease write + handle pinning at open, amortized over the read.
fn pinning_workload(profiles: &[thicket_perfsim::Profile], n: u64) {
    let meta_cut = (n / 10).max(1) as i64;
    println!("## W5: snapshot pinning, {n}-profile v3 store (pinned vs unpinned)\n");
    let dir = std::env::temp_dir().join("thicket-payloadbench-w5");
    let _ = std::fs::remove_dir_all(&dir);
    Store::save_opts(
        &dir,
        profiles,
        &StoreOptions {
            format: ManifestVersion::V3,
            ..StoreOptions::default()
        },
    )
    .unwrap();

    let expr = PredExpr::lt("seed", meta_cut);
    let expect = meta_cut.min(n as i64) as usize;
    let full_plain = median_ms(|| {
        let (p, rep) = Store::open(&dir).unwrap().load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(p.len() as u64, n);
    });
    let full_pinned = median_ms(|| {
        let (p, rep) = Store::open_pinned(&dir).unwrap().load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(p.len() as u64, n);
    });
    let push_plain = median_ms(|| {
        let (p, _) = Store::open(&dir)
            .unwrap()
            .load_matching_expr(&expr, 1)
            .unwrap();
        assert_eq!(p.len(), expect);
    });
    let push_pinned = median_ms(|| {
        let (p, _) = Store::open_pinned(&dir)
            .unwrap()
            .load_matching_expr(&expr, 1)
            .unwrap();
        assert_eq!(p.len(), expect);
    });

    println!("| workload | unpinned | pinned | overhead |");
    println!("|---|---|---|---|");
    println!(
        "| full load ({n} profiles) | {full_plain:.1} ms | {full_pinned:.1} ms | {:+.1}% |",
        (full_pinned / full_plain - 1.0) * 1e2
    );
    println!(
        "| pushdown load ({expect} of {n}) | {push_plain:.2} ms | {push_pinned:.2} ms | {:+.1}% |",
        (push_pinned / push_plain - 1.0) * 1e2
    );
    println!();
    std::fs::remove_dir_all(&dir).ok();
}
