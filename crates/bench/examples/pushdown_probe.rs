//! One-shot measurement behind the EXPERIMENTS.md "Store format v2"
//! numbers: at 2,000 profiles, compare the v1 row manifest against the
//! v2 columnar manifest on (a) open/parse time, (b) pushdown selection
//! time, and (c) bytes actually read for a 10-of-2000 selection.
//!
//! Run with `cargo run --release -p thicket-bench --example pushdown_probe`.

use std::time::Instant;
use thicket_bench::data;
use thicket_perfsim::{ManifestVersion, MetaPred, Store, StoreOptions};

fn main() {
    let n = 2000;
    let profiles = data::quartz_runs(n, 1_048_576);
    let pred = MetaPred::lt("seed", 10i64);

    for (label, format) in [("v1", ManifestVersion::V1), ("v2", ManifestVersion::V2)] {
        let dir = std::env::temp_dir().join(format!("thicket-pushdown-probe-{label}"));
        let _ = std::fs::remove_dir_all(&dir);
        let opts = StoreOptions {
            format,
            ..StoreOptions::default()
        };
        Store::save_opts(&dir, &profiles, &opts).unwrap();

        // (a) open = read + verify + parse the manifest.
        let t = Instant::now();
        let reader = Store::open(&dir).unwrap();
        let open_ms = t.elapsed().as_secs_f64() * 1e3;
        let manifest_bytes = reader.bytes_read();

        // (b) selection only (no shard I/O).
        let t = Instant::now();
        let selected = reader.select(&pred).unwrap();
        let select_ms = t.elapsed().as_secs_f64() * 1e3;

        // (c) full pushdown load; bytes_read includes the manifest.
        let reader = Store::open(&dir).unwrap();
        let t = Instant::now();
        let (loaded, report) = reader.load_matching(&pred).unwrap();
        let load_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(report.is_clean());
        assert_eq!(loaded.len(), 10);
        assert_eq!(selected.len(), 10);

        // Reference: what a full load reads.
        let full = Store::open(&dir).unwrap();
        full.load_all().unwrap();

        println!(
            "{label}: manifest {manifest_bytes} B, open {open_ms:.2} ms, \
             select {select_ms:.3} ms, pushdown load {load_ms:.2} ms, \
             pushdown bytes {} B vs full load {} B",
            reader.bytes_read(),
            full.bytes_read(),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
