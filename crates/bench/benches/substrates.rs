//! Criterion benchmarks for the individual substrates: dataframe joins,
//! JSON parsing, k-means, and PMNF model fitting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thicket_dataframe::{join, Column, DataFrame, Index, JoinHow};
use thicket_learn::{kmeans, KMeansConfig};
use thicket_model::fit_model;
use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Json, Profile};

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("dataframe_join");
    for &n in &[1_000usize, 10_000, 50_000] {
        let keys: Vec<i64> = (0..n as i64).collect();
        let mut a = DataFrame::new(Index::single("k", keys.clone()));
        a.insert("x", Column::from_f64((0..n).map(|i| i as f64).collect()))
            .unwrap();
        let mut b = DataFrame::new(Index::single("k", keys));
        b.insert("y", Column::from_f64((0..n).map(|i| i as f64 * 2.0).collect()))
            .unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(&a, &b), |bench, (a, b)| {
            bench.iter(|| join(a, b, JoinHow::Inner).unwrap())
        });
    }
    group.finish();
}

fn bench_json(c: &mut Criterion) {
    let profile = simulate_cpu_run(&CpuRunConfig::quartz_default());
    let text = profile.to_string_pretty();
    c.bench_function("json_parse_profile", |b| {
        b.iter(|| Json::parse(&text).unwrap())
    });
    c.bench_function("profile_parse", |b| b.iter(|| Profile::parse(&text).unwrap()));
    c.bench_function("profile_serialize", |b| b.iter(|| profile.to_string_pretty()));
}

fn bench_kmeans(c: &mut Criterion) {
    // 300 samples, 3 features, 3 well-separated blobs.
    let samples: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            let blob = (i % 3) as f64 * 10.0;
            vec![
                blob + (i % 7) as f64 * 0.1,
                blob - (i % 5) as f64 * 0.1,
                (i % 11) as f64 * 0.05,
            ]
        })
        .collect();
    c.bench_function("kmeans_300x3_k3", |b| {
        b.iter(|| kmeans(&samples, &KMeansConfig::new(3).with_seed(1)))
    });
}

fn bench_model_fit(c: &mut Criterion) {
    let p: Vec<f64> = (1..=30).map(|i| 36.0 * i as f64).collect();
    let y: Vec<f64> = p.iter().map(|p| 200.0 - 18.0 * p.powf(1.0 / 3.0)).collect();
    c.bench_function("pmnf_fit_30pts", |b| b.iter(|| fit_model(&p, &y).unwrap()));
}

criterion_group!(benches, bench_join, bench_json, bench_kmeans, bench_model_fit);
criterion_main!(benches);
