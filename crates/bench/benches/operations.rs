//! Criterion benchmarks for the core thicket operations at increasing
//! ensemble scale: composition, metadata filtering, grouping, querying,
//! and aggregated statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thicket_bench::data;
use thicket_core::Thicket;
use thicket_dataframe::{AggFn, ColKey};
use thicket_query::{pred, Query};

fn bench_compose(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose_scale");
    for &n in &[10u64, 50, 200] {
        let profiles = data::quartz_runs(n, 1_048_576);
        group.bench_with_input(BenchmarkId::from_parameter(n), &profiles, |b, profiles| {
            b.iter(|| Thicket::loader(profiles).load().unwrap().0);
        });
    }
    group.finish();
}

fn bench_filter_metadata(c: &mut Criterion) {
    let profiles = data::quartz_runs(100, 1_048_576);
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    c.bench_function("filter_metadata_100", |b| {
        b.iter(|| tk.filter_metadata(|r| r.get("seed").as_i64().unwrap_or(0) % 2 == 0));
    });
}

fn bench_groupby(c: &mut Criterion) {
    let profiles = data::figure13_profiles();
    let cpu_only: Vec<_> = profiles
        .iter()
        .filter(|p| p.metadata("variant").unwrap().as_str() != Some("CUDA"))
        .cloned()
        .collect();
    let tk = Thicket::loader(&cpu_only).load().unwrap().0;
    c.bench_function("groupby_compiler_size_400", |b| {
        b.iter(|| {
            tk.groupby(&[ColKey::new("compiler"), ColKey::new("problem size")])
                .unwrap()
        });
    });
}

fn bench_query(c: &mut Criterion) {
    let profiles = data::quartz_runs(50, 1_048_576);
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    let q = Query::builder()
        .any("*")
        .node(".", pred::name_starts_with("Stream_"))
        .build();
    c.bench_function("query_streams_50", |b| {
        b.iter(|| tk.query(&q).unwrap());
    });
}

fn bench_stats(c: &mut Criterion) {
    let profiles = data::quartz_runs(100, 1_048_576);
    let tk = Thicket::loader(&profiles).load().unwrap().0;
    c.bench_function("compute_stats_100", |b| {
        b.iter(|| {
            let mut t = tk.clone();
            t.compute_stats(&[(
                ColKey::new("time (exc)"),
                vec![AggFn::Mean, AggFn::Std, AggFn::Min, AggFn::Max],
            )])
            .unwrap();
            t
        });
    });
}

criterion_group!(
    benches,
    bench_compose,
    bench_filter_metadata,
    bench_groupby,
    bench_query,
    bench_stats
);
criterion_main!(benches);
