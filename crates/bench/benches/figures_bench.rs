//! Criterion benchmarks timing each figure/table regeneration — one
//! bench per paper artifact, so `cargo bench` exercises the complete
//! evaluation pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use thicket_bench::figures;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    // Keep the heavyweight generators at modest sample counts.
    group.sample_size(10);
    group.bench_function("fig02_components", |b| b.iter(figures::fig02));
    group.bench_function("fig03_er_keys", |b| b.iter(figures::fig03));
    group.bench_function("fig04_composed_table", |b| b.iter(figures::fig04));
    group.bench_function("fig05_metadata_table", |b| b.iter(figures::fig05));
    group.bench_function("fig06_filter_metadata", |b| b.iter(figures::fig06));
    group.bench_function("fig07_groupby", |b| b.iter(figures::fig07));
    group.bench_function("fig08_query", |b| b.iter(figures::fig08));
    group.bench_function("fig09_stats", |b| b.iter(figures::fig09));
    group.bench_function("fig10_kmeans", |b| b.iter(figures::fig10));
    group.bench_function("fig11_extrap", |b| b.iter(figures::fig11));
    group.bench_function("fig12_heatmap_hist", |b| b.iter(figures::fig12));
    group.bench_function("fig13_config_table", |b| b.iter(figures::fig13));
    group.bench_function("fig14_topdown", |b| b.iter(figures::fig14));
    group.bench_function("fig15_speedup_table", |b| b.iter(figures::fig15));
    group.bench_function("fig16_marbl_table", |b| b.iter(figures::fig16));
    group.bench_function("fig17_scaling", |b| b.iter(figures::fig17));
    group.bench_function("fig18_pcp", |b| b.iter(figures::fig18));
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
