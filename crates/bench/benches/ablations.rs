//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! hash-indexed vs naive graph union, memoized vs unmemoized query
//! matching, and hash- vs sort-based dataframe grouping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thicket_dataframe::{Column, DataFrame, GroupBy, Index};
use thicket_graph::{Frame, Graph, GraphUnion};
use thicket_query::{pred, Query};

/// A wide tree: one root with `width` children, each with `depth` chained
/// descendants — the worst case for the naive sibling scan.
fn wide_tree(width: usize, depth: usize, offset: usize) -> Graph {
    let mut g = Graph::new();
    let root = g.add_root(Frame::named("root"));
    for i in 0..width {
        let mut cur = g.add_child(root, Frame::named(format!("k{}", i + offset)));
        for d in 0..depth {
            cur = g.add_child(cur, Frame::named(format!("d{d}")));
        }
    }
    g
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablate_union");
    for &width in &[50usize, 200, 800] {
        let a = wide_tree(width, 3, 0);
        let b = wide_tree(width, 3, width / 2); // half-overlapping
        group.bench_with_input(
            BenchmarkId::new("indexed", width),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| GraphUnion::build(&[a, b])),
        );
        group.bench_with_input(
            BenchmarkId::new("naive", width),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| GraphUnion::build_naive(&[a, b])),
        );
    }
    group.finish();
}

fn bench_query_memo(c: &mut Criterion) {
    // A bushy tree where "*" patterns fan out heavily.
    fn bushy(depth: usize) -> Graph {
        let mut g = Graph::new();
        let root = g.add_root(Frame::named("root"));
        let mut frontier = vec![root];
        for d in 0..depth {
            let mut next = Vec::new();
            for &node in &frontier {
                for i in 0..3 {
                    next.push(g.add_child(node, Frame::named(format!("n{d}_{i}"))));
                }
            }
            frontier = next;
        }
        g
    }
    let g = bushy(7);
    let q = Query::builder()
        .node(".", pred::name_eq("root"))
        .any("*")
        .node(".", pred::name_starts_with("n6"))
        .build();
    let mut group = c.benchmark_group("ablate_query");
    group.bench_function("memoized", |b| b.iter(|| q.apply(&g)));
    group.bench_function("unmemoized", |b| b.iter(|| q.apply_unmemoized(&g)));
    group.finish();
}

fn bench_groupby_strategy(c: &mut Criterion) {
    // 50k rows, 100 groups.
    let n = 50_000usize;
    let keys: Vec<i64> = (0..n).map(|i| (i % 100) as i64).collect();
    let vals: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut df = DataFrame::new(Index::single("k", keys));
    df.insert("x", Column::from_f64(vals)).unwrap();

    let mut group = c.benchmark_group("ablate_groupby");
    group.bench_function("hashmap", |b| {
        b.iter(|| GroupBy::by_levels(&df, &["k"]).unwrap().len())
    });
    group.bench_function("sort_scan", |b| {
        b.iter(|| {
            // Sort-based grouping: argsort the index, then scan runs.
            let order = df.index().argsort();
            let mut groups = 0usize;
            let mut prev: Option<&thicket_dataframe::Key> = None;
            for &row in &order {
                let key = df.index().key(row);
                if prev != Some(key) {
                    groups += 1;
                    prev = Some(key);
                }
            }
            groups
        })
    });
    group.finish();
}

criterion_group!(benches, bench_union, bench_query_memo, bench_groupby_strategy);
criterion_main!(benches);
