//! Criterion benchmarks for the aggregated-statistics path (paper §4.4,
//! Figure 9): node-level group-by over the perf-data table and the
//! multi-reduction statsframe computation, at 10/100/560-profile scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thicket_bench::data;
use thicket_core::Thicket;
use thicket_dataframe::{AggFn, ColKey, GroupBy, Value};

fn thicket_of(n: u64) -> Thicket {
    let profiles = data::quartz_runs(n, 1_048_576);
    let ids: Vec<Value> = (0..profiles.len() as i64).map(Value::Int).collect();
    Thicket::loader(&profiles).profile_ids(&ids).load().unwrap().0
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats");
    for &n in &[10u64, 100, 560] {
        let tk = thicket_of(n);
        group.bench_with_input(BenchmarkId::new("compute", n), &tk, |b, tk| {
            let mut tk = tk.clone();
            let specs = [(
                ColKey::new("time (exc)"),
                vec![AggFn::Mean, AggFn::Std, AggFn::Min, AggFn::Max],
            )];
            b.iter(|| {
                tk.compute_stats(&specs).unwrap();
                tk.statsframe().len()
            });
        });
        group.bench_with_input(BenchmarkId::new("groupby_mean", n), &tk, |b, tk| {
            b.iter(|| {
                GroupBy::by_levels(tk.perf_data(), &["node"])
                    .unwrap()
                    .agg(AggFn::Mean)
                    .unwrap()
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
