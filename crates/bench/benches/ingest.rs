//! Criterion benchmarks for the ingest fast path: serial vs parallel
//! loader row assembly, and the pairwise-chain vs single-pass
//! k-way join kernel, at 10/100/560-profile scale (560 is the Figure 13
//! study size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use thicket_bench::data;
use thicket_core::Thicket;
use thicket_dataframe::{join_many, join_many_pairwise, Column, DataFrame, Index, JoinHow, Value};
use thicket_perfsim::default_threads;

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("ingest");
    for &n in &[10u64, 100, 560] {
        let profiles = data::quartz_runs(n, 1_048_576);
        let ids: Vec<Value> = (0..profiles.len() as i64).map(Value::Int).collect();
        let input = (profiles, ids);
        group.bench_with_input(
            BenchmarkId::new("serial", n),
            &input,
            |b, (profiles, ids)| {
                b.iter(|| {
                    Thicket::loader(profiles)
                        .profile_ids(ids)
                        .threads(1)
                        .load()
                        .unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("parallel", n),
            &input,
            |b, (profiles, ids)| {
                // Force the threaded path even on a single-core host so
                // the bench always measures it (overhead there, speedup
                // on multicore) instead of silently re-running serial.
                let threads = default_threads(profiles.len()).max(2);
                b.iter(|| {
                    Thicket::loader(profiles)
                        .profile_ids(ids)
                        .threads(threads)
                        .load()
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// One float frame per profile, all keyed by the same node-id level —
/// the shape `concat_thickets` feeds the join kernel.
fn metric_frames(n_frames: usize, n_rows: usize) -> Vec<DataFrame> {
    (0..n_frames)
        .map(|f| {
            // Stagger key sets so Outer has genuine novel keys per frame.
            let keys: Vec<i64> = (0..n_rows as i64).map(|r| r + f as i64).collect();
            let vals: Vec<f64> = keys.iter().map(|k| *k as f64 + f as f64 * 0.5).collect();
            let mut df = DataFrame::new(Index::single("node", keys));
            df.insert(format!("m{f}"), Column::from_f64(vals)).unwrap();
            df
        })
        .collect()
}

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_many");
    for &n in &[10usize, 100, 560] {
        let frames = metric_frames(n, 600);
        let refs: Vec<&DataFrame> = frames.iter().collect();
        group.bench_with_input(BenchmarkId::new("pairwise", n), &refs, |b, refs| {
            b.iter(|| join_many_pairwise(refs, JoinHow::Outer).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("kway", n), &refs, |b, refs| {
            b.iter(|| join_many(refs, JoinHow::Outer).unwrap());
        });
    }
    group.finish();
}

/// v2 (JSON payloads) vs v3 (binary columnar payloads) on the shard
/// hot path: the same ensemble saved under both formats, timed through
/// the identical `load_all` read path. The only variable is the
/// per-record decode.
fn bench_payload_format(c: &mut Criterion) {
    use thicket_perfsim::{ManifestVersion, Store, StoreOptions};

    let mut group = c.benchmark_group("payload_format");
    group.sample_size(10);
    for &n in &[560u64, 2000] {
        let profiles = data::quartz_runs(n, 1_048_576);
        for (name, version) in [("v2", ManifestVersion::V2), ("v3", ManifestVersion::V3)] {
            let dir = std::env::temp_dir().join(format!("thicket-bench-fmt-{name}-{n}"));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = StoreOptions {
                format: version,
                ..StoreOptions::default()
            };
            Store::save_opts(&dir, &profiles, &opts).unwrap();
            group.bench_with_input(BenchmarkId::new(name, n), &dir, |b, dir| {
                b.iter(|| Store::open(dir).unwrap().load_all().unwrap());
            });
        }
    }
    group.finish();
}

/// Sharded-store read path vs the JSON ensemble directory: full loads
/// at equal profile counts, plus the metadata-pushdown read that skips
/// whole shards (the predicate selects 10 of n profiles).
fn bench_store(c: &mut Criterion) {
    use thicket_perfsim::{load_dir, save_ensemble, MetaPred, Store, Strictness};

    let mut group = c.benchmark_group("store");
    group.sample_size(10);
    for &n in &[100u64, 560] {
        let profiles = data::quartz_runs(n, 1_048_576);
        let json_dir = std::env::temp_dir().join(format!("thicket-bench-json-{n}"));
        let store_dir = std::env::temp_dir().join(format!("thicket-bench-store-{n}"));
        let _ = std::fs::remove_dir_all(&json_dir);
        let _ = std::fs::remove_dir_all(&store_dir);
        save_ensemble(&json_dir, &profiles).unwrap();
        Store::save(&store_dir, &profiles).unwrap();

        group.bench_with_input(BenchmarkId::new("load_dir", n), &json_dir, |b, dir| {
            b.iter(|| load_dir(dir, None, Strictness::FailFast).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("load_all", n), &store_dir, |b, dir| {
            b.iter(|| Store::open(dir).unwrap().load_all().unwrap());
        });
        group.bench_with_input(BenchmarkId::new("load_matching", n), &store_dir, |b, dir| {
            b.iter(|| {
                Store::open(dir)
                    .unwrap()
                    .load_matching(&MetaPred::lt("seed", 10i64))
                    .unwrap()
            });
        });
    }

    // Write-path maintenance at a fixed scale: append a small batch on
    // top of an existing generation (no rewrite of old shards) vs
    // re-saving everything, and compacting a fragmented store.
    {
        let base = data::quartz_runs(200, 1_048_576);
        let batch = data::quartz_runs_seeded(10, 1_048_576, 10_000);
        group.bench_function("append_10_onto_200", |b| {
            let dir = std::env::temp_dir().join("thicket-bench-append");
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                Store::save(&dir, &base).unwrap();
                Store::append(&dir, &batch).unwrap()
            });
        });
        group.bench_function("compact_200_fragmented", |b| {
            let dir = std::env::temp_dir().join("thicket-bench-compact");
            let frag = thicket_perfsim::StoreOptions {
                shard_bytes: 1, // one shard per profile: worst-case fragmentation
                ..thicket_perfsim::StoreOptions::default()
            };
            b.iter(|| {
                let _ = std::fs::remove_dir_all(&dir);
                Store::save_opts(&dir, &base, &frag).unwrap();
                Store::compact(&dir).unwrap()
            });
        });
    }

    // Pushdown at 2,000 profiles: selection cost and bytes actually
    // read, v2 columnar manifest vs the v1 row manifest.
    {
        let profiles = data::quartz_runs(2000, 1_048_576);
        for (label, format) in [
            ("pushdown_2000_v2", thicket_perfsim::ManifestVersion::V2),
            ("pushdown_2000_v1", thicket_perfsim::ManifestVersion::V1),
        ] {
            let dir = std::env::temp_dir().join(format!("thicket-bench-{label}"));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = thicket_perfsim::StoreOptions {
                format,
                ..thicket_perfsim::StoreOptions::default()
            };
            Store::save_opts(&dir, &profiles, &opts).unwrap();
            group.bench_with_input(BenchmarkId::new(label, 2000), &dir, |b, dir| {
                b.iter(|| {
                    Store::open(dir)
                        .unwrap()
                        .load_matching(&MetaPred::lt("seed", 10i64))
                        .unwrap()
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_join, bench_payload_format, bench_store);
criterion_main!(benches);
