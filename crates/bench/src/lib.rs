//! # thicket-bench
//!
//! The reproduction's benchmark harness: workload generators matching the
//! paper's experiment configurations ([`data`]), one regenerator per
//! table/figure of the evaluation ([`figures`]), and criterion benchmarks
//! (under `benches/`) timing the core operations and the design-choice
//! ablations DESIGN.md calls out.
//!
//! Regenerate everything with:
//!
//! ```sh
//! cargo run -p thicket-bench --bin figures --release
//! ```

#![warn(missing_docs)]

pub mod data;
pub mod figures;
