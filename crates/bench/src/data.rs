//! Workload generators shared by the figure regenerators and the
//! criterion benchmarks: the exact ensembles the paper's evaluation
//! collected (Figure 13 and Figure 16 configuration tables).

use thicket_core::Thicket;
use thicket_dataframe::Value;
use thicket_perfsim::{
    marbl_ensemble, simulate_cpu_run, simulate_gpu_run, Compiler, CpuRunConfig, GpuRunConfig,
    Profile, Variant,
};

/// The paper's four RAJA problem sizes.
pub const SIZES: [u64; 4] = [1_048_576, 2_097_152, 4_194_304, 8_388_608];

/// The paper's CUDA block sizes (Figure 13 row 4).
pub const BLOCK_SIZES: [u32; 4] = [128, 256, 512, 1024];

/// One row of the Figure 13 configuration table.
#[derive(Debug, Clone)]
pub struct RajaConfigRow {
    /// Cluster name.
    pub cluster: &'static str,
    /// System type.
    pub systype: &'static str,
    /// Problem sizes swept.
    pub problem_sizes: Vec<u64>,
    /// CPU compiler.
    pub compiler: String,
    /// `-O` levels swept.
    pub optimizations: Vec<u32>,
    /// OpenMP threads.
    pub omp_threads: u32,
    /// CUDA compiler (GPU rows only).
    pub cuda_compiler: Option<String>,
    /// CUDA block sizes (GPU rows only).
    pub block_sizes: Vec<u32>,
    /// RAJA variant.
    pub variant: &'static str,
    /// Total profiles this row contributes (10 runs per configuration).
    pub profiles: usize,
}

/// The five experiment configurations of Figure 13 (560 profiles total).
pub fn figure13_configs() -> Vec<RajaConfigRow> {
    let seq = |compiler: String| RajaConfigRow {
        cluster: "quartz",
        systype: "toss_3_x86_64_ib",
        problem_sizes: SIZES.to_vec(),
        compiler,
        optimizations: vec![0, 1, 2, 3],
        omp_threads: 1,
        cuda_compiler: None,
        block_sizes: vec![],
        variant: "Sequential",
        profiles: 4 * 4 * 10,
    };
    let omp = |compiler: String| RajaConfigRow {
        cluster: "quartz",
        systype: "toss_3_x86_64_ib",
        problem_sizes: SIZES.to_vec(),
        compiler,
        optimizations: vec![0],
        omp_threads: 72,
        cuda_compiler: None,
        block_sizes: vec![],
        variant: "OpenMP",
        profiles: 4 * 10,
    };
    vec![
        seq(Compiler::clang9().name),
        seq(Compiler::gcc8().name),
        omp(Compiler::clang9().name),
        omp(Compiler::gcc8().name),
        RajaConfigRow {
            cluster: "lassen",
            systype: "blueos_3_ppc64le_ib_p9",
            problem_sizes: SIZES.to_vec(),
            compiler: Compiler::xl16().name,
            optimizations: vec![0],
            omp_threads: 1,
            cuda_compiler: Some("nvcc-11.2.152".into()),
            block_sizes: BLOCK_SIZES.to_vec(),
            variant: "CUDA",
            profiles: 4 * 4 * 10,
        },
    ]
}

/// Generate the full Figure 13 ensemble (all 560 profiles).
pub fn figure13_profiles() -> Vec<Profile> {
    let mut out = Vec::new();
    let mut seed = 0u64;
    for row in figure13_configs() {
        for &size in &row.problem_sizes {
            match row.variant {
                "CUDA" => {
                    for &block in &row.block_sizes {
                        for _run in 0..10 {
                            let mut cfg = GpuRunConfig::lassen_default();
                            cfg.block_size = block;
                            cfg.problem_size = size;
                            cfg.seed = seed;
                            seed += 1;
                            out.push(simulate_gpu_run(&cfg));
                        }
                    }
                }
                variant => {
                    for &opt in &row.optimizations {
                        for _run in 0..10 {
                            let mut cfg = CpuRunConfig::quartz_default();
                            cfg.compiler = if row.compiler.starts_with("clang") {
                                Compiler::clang9()
                            } else {
                                Compiler::gcc8()
                            };
                            cfg.opt_level = opt;
                            cfg.threads = row.omp_threads;
                            cfg.variant = if variant == "OpenMP" {
                                Variant::OpenMp
                            } else {
                                Variant::Sequential
                            };
                            cfg.problem_size = size;
                            cfg.seed = seed;
                            seed += 1;
                            out.push(simulate_cpu_run(&cfg));
                        }
                    }
                }
            }
        }
    }
    out
}

/// A small Quartz ensemble: `runs` repetitions at one configuration.
pub fn quartz_runs(runs: u64, problem_size: u64) -> Vec<Profile> {
    quartz_runs_seeded(runs, problem_size, 0)
}

/// [`quartz_runs`] starting at an arbitrary base seed, so a second
/// batch is disjoint from the first (append benchmarks need profiles
/// the store does not already hold).
pub fn quartz_runs_seeded(runs: u64, problem_size: u64, base_seed: u64) -> Vec<Profile> {
    (base_seed..base_seed + runs)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.problem_size = problem_size;
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect()
}

/// One Quartz profile per problem size, thicket-composed and indexed by
/// size.
pub fn cpu_by_size_thicket() -> Thicket {
    let profiles: Vec<Profile> = SIZES
        .iter()
        .map(|&s| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.problem_size = s;
            cfg.seed = s;
            simulate_cpu_run(&cfg)
        })
        .collect();
    Thicket::loader(&profiles)
        .profile_ids(&SIZES.iter().map(|&s| Value::Int(s as i64)).collect::<Vec<_>>())
        .load()
        .expect("compose")
        .0
}

/// One Lassen CUDA profile per problem size, indexed by size.
pub fn gpu_by_size_thicket() -> Thicket {
    let profiles: Vec<Profile> = SIZES
        .iter()
        .map(|&s| {
            let mut cfg = GpuRunConfig::lassen_default();
            cfg.problem_size = s;
            cfg.seed = s;
            simulate_gpu_run(&cfg)
        })
        .collect();
    Thicket::loader(&profiles)
        .profile_ids(&SIZES.iter().map(|&s| Value::Int(s as i64)).collect::<Vec<_>>())
        .load()
        .expect("compose")
        .0
}

/// The MARBL study ensemble (Figure 16): both clusters × six node counts
/// × five runs.
pub fn marbl_study() -> Vec<Profile> {
    marbl_ensemble(&[1, 2, 4, 8, 16, 32], 5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_totals() {
        let rows = figure13_configs();
        assert_eq!(rows.len(), 5);
        let total: usize = rows.iter().map(|r| r.profiles).sum();
        assert_eq!(total, 560); // 160 + 160 + 40 + 40 + 160
    }

    #[test]
    fn figure13_profiles_match_declared_counts() {
        let profiles = figure13_profiles();
        assert_eq!(profiles.len(), 560);
        let cuda = profiles
            .iter()
            .filter(|p| p.metadata("variant").unwrap().as_str() == Some("CUDA"))
            .count();
        assert_eq!(cuda, 160);
    }

    #[test]
    fn size_thickets_have_four_profiles() {
        assert_eq!(cpu_by_size_thicket().profiles().len(), 4);
        assert_eq!(gpu_by_size_thicket().profiles().len(), 4);
    }

    #[test]
    fn marbl_study_size() {
        assert_eq!(marbl_study().len(), 60);
    }
}
