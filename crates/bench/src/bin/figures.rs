//! Regenerate every table and figure of the paper's evaluation.
//!
//! Writes text artifacts and SVGs under `target/figures/` and prints a
//! summary. `cargo run -p thicket-bench --bin figures --release`.

use std::path::PathBuf;
use thicket_bench::figures::all_figures;
use thicket_viz::HtmlReport;

fn main() {
    let out_dir = PathBuf::from(
        std::env::var("THICKET_FIGURE_DIR").unwrap_or_else(|_| "target/figures".into()),
    );
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let mut report = HtmlReport::new(
        "Thicket reproduction — regenerated paper figures (HPDC '23)",
    );
    for fig in all_figures() {
        report.section(format!("{} — {}", fig.id, fig.title));
        report.pre(&fig.text);
        for (_, svg) in &fig.svgs {
            report.svg(svg.clone());
        }
        let txt_path = out_dir.join(format!("{}.txt", fig.id));
        std::fs::write(&txt_path, &fig.text).expect("write text artifact");
        for (name, svg) in &fig.svgs {
            std::fs::write(out_dir.join(name), svg).expect("write svg artifact");
        }
        println!("==== {} — {} ====", fig.id, fig.title);
        println!("{}", fig.text);
        if !fig.svgs.is_empty() {
            let names: Vec<&str> = fig.svgs.iter().map(|(n, _)| n.as_str()).collect();
            println!("(svg: {})", names.join(", "));
        }
        println!();
    }
    std::fs::write(out_dir.join("report.html"), report.render()).expect("write report");
    println!("artifacts written to {} (report.html bundles everything)", out_dir.display());
}
