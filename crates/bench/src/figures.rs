//! One regenerator per table/figure of the paper (DESIGN.md experiment
//! index). Each produces a text artifact and, where the original is
//! graphical, SVG artifacts.

use crate::data;
use thicket_core::{concat_thickets, model_metric, NodeMatch, Thicket};
use thicket_dataframe::{render, AggFn, ColKey, Value};
use thicket_graph::{Frame, Graph};
use thicket_learn::{kmeans, silhouette_score, KMeansConfig, StandardScaler};
use thicket_perfsim::marbl::time_per_cycle;
use thicket_perfsim::{
    simulate_gpu_run, GpuRunConfig, MarblCluster, MarblConfig, Profile,
};
use thicket_query::{pred, Query};
use thicket_viz::{
    heatmap_chart, histogram_chart, line_chart, parallel_coordinates, scatter_chart,
    stacked_bars, AxisScale, BarStack, ChartOptions, PcpAxis, Series,
};

/// One regenerated artifact.
#[derive(Debug, Clone)]
pub struct FigureReport {
    /// Experiment id (`fig04`, ...).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The regenerated table/series, as text.
    pub text: String,
    /// Named SVG artifacts.
    pub svgs: Vec<(String, String)>,
}

/// Regenerate every figure, in paper order.
pub fn all_figures() -> Vec<FigureReport> {
    vec![
        fig02(),
        fig03(),
        fig04(),
        fig05(),
        fig06(),
        fig07(),
        fig08(),
        fig09(),
        fig10(),
        fig11(),
        fig12(),
        fig13(),
        fig14(),
        fig15(),
        fig16(),
        fig17(),
        fig18(),
    ]
}

/// Figure 2: the relation between call-tree nodes and performance-data /
/// metadata / statistics rows, on the paper's toy MAIN/FOO/BAR/BAZ code.
pub fn fig02() -> FigureReport {
    let make_profile = |run: i64| {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("MAIN"));
        let region_a = g.add_child(main, Frame::named("FOO"));
        let region_b = g.add_child(main, Frame::named("BAR"));
        let leaf = g.add_child(region_a, Frame::named("BAZ"));
        let mut p = Profile::new(g);
        p.set_metadata("user", if run == 1 { "John" } else { "Jane" });
        p.set_metadata("run", run);
        for (i, id) in [main, region_a, region_b, leaf].into_iter().enumerate() {
            p.set_metric(id, "time", (4 - i) as f64 * run as f64 * 0.5);
            p.set_metric(id, "L1 cache misses", (i as f64 + 1.0) * 1000.0 * run as f64);
        }
        p
    };
    let mut tk = Thicket::loader(&[make_profile(1), make_profile(2)])
        .profile_ids(&[Value::Int(1), Value::Int(2)])
        .load()
        .expect("toy thicket")
        .0;
    tk.compute_stats_all(AggFn::Mean).expect("stats");

    let mut text = String::new();
    text.push_str("(A) call tree:\n");
    text.push_str(&thicket_viz::render_tree(tk.graph(), |_| None));
    text.push_str("\n(C) multi-profile performance data (two rows per node):\n");
    text.push_str(&render(&tk.perf_data_named()));
    text.push_str("\n(D) metadata (one row per profile):\n");
    text.push_str(&render(tk.metadata()));
    text.push_str("\n(E) aggregated statistics (one row per node):\n");
    text.push_str(&render(&tk.statsframe_named()));
    FigureReport {
        id: "fig02",
        title: "Call tree vs thicket component rows",
        text,
        svgs: vec![],
    }
}

/// Figure 3: the entity-relationship keys linking the three components.
pub fn fig03() -> FigureReport {
    let tk = Thicket::loader(&data::quartz_runs(2, 1_048_576)).load().expect("thicket").0;
    let mut text = String::new();
    text.push_str("component keys (bold/fixed in the paper's ER diagram):\n");
    text.push_str(&format!(
        "  performance data : primary key ({})\n",
        tk.perf_data().index().names().join(", ")
    ));
    text.push_str(&format!(
        "  metadata         : primary key ({})\n",
        tk.metadata().index().names().join(", ")
    ));
    text.push_str("  statsframe       : primary key (node)\n");
    text.push_str("relations:\n");
    text.push_str("  metadata.profile   1 -> N  perf_data.(node, profile)\n");
    text.push_str("  statsframe.node    1 -> N  perf_data.(node, profile)\n");
    FigureReport {
        id: "fig03",
        title: "Thicket component entity relationships",
        text,
        svgs: vec![],
    }
}

/// Figure 4: CPU and GPU thickets composed on a (kernel, problem size)
/// hierarchical index with a two-level (CPU | GPU) column header.
pub fn fig04() -> FigureReport {
    let sizes = [1_048_576i64, 4_194_304];
    let cpu = data::cpu_by_size_thicket()
        .filter_profiles(&sizes.iter().map(|&s| Value::Int(s)).collect::<Vec<_>>());
    let gpu = data::gpu_by_size_thicket()
        .filter_profiles(&sizes.iter().map(|&s| Value::Int(s)).collect::<Vec<_>>());
    let composed =
        concat_thickets(&[("CPU", &cpu), ("GPU", &gpu)], NodeMatch::Name).expect("compose");
    let view = composed
        .perf_data()
        .select(&[
            ColKey::grouped("CPU", "time (exc)"),
            ColKey::grouped("CPU", "Reps"),
            ColKey::grouped("CPU", "Retiring"),
            ColKey::grouped("CPU", "Backend bound"),
            ColKey::grouped("GPU", "time (gpu)"),
            ColKey::grouped("GPU", "gpu__compute_memory_throughput"),
            ColKey::grouped("GPU", "gpu__dram_throughput"),
            ColKey::grouped("GPU", "sm__throughput"),
        ])
        .expect("columns")
        .filter(|r| {
            matches!(
                r.level("node").as_str(),
                Some("Apps_NODAL_ACCUMULATION_3D")
                    | Some("Apps_VOL3D")
                    | Some("Lcals_HYDRO_1D")
                    | Some("Stream_DOT")
            )
        });
    FigureReport {
        id: "fig04",
        title: "Composed CPU/GPU performance data, problem-size secondary index",
        text: render(&view),
        svgs: vec![],
    }
}

fn figure5_thicket() -> Thicket {
    use thicket_perfsim::{simulate_cpu_run, Compiler, CpuRunConfig};
    let mut profiles = Vec::new();
    let specs = [
        (Compiler::clang9(), 1_048_576u64, "John", "2022-11-30 02:09:27"),
        (Compiler::xl16(), 4_194_304, "John", "2022-11-16 00:53:01"),
        (Compiler::xl16(), 1_048_576, "Jane", "2022-11-16 00:45:08"),
        (Compiler::clang9(), 4_194_304, "John", "2022-11-30 02:17:27"),
    ];
    for (i, (compiler, size, user, date)) in specs.into_iter().enumerate() {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.compiler = compiler;
        cfg.problem_size = size;
        cfg.user = user.into();
        cfg.launchdate = date.into();
        cfg.seed = i as u64;
        profiles.push(simulate_cpu_run(&cfg));
    }
    Thicket::loader(&profiles).load().expect("figure 5 thicket").0
}

/// Figure 5: the metadata table of four RAJA profiles on two clusters.
pub fn fig05() -> FigureReport {
    let tk = figure5_thicket();
    let view = tk
        .metadata()
        .select(&[
            ColKey::new("problem size"),
            ColKey::new("compiler"),
            ColKey::new("raja version"),
            ColKey::new("cluster"),
            ColKey::new("launchdate"),
            ColKey::new("user"),
        ])
        .expect("metadata columns");
    FigureReport {
        id: "fig05",
        title: "Metadata table of four RAJA Performance Suite profiles",
        text: render(&view),
        svgs: vec![],
    }
}

/// Figure 6: `filter_metadata(compiler == clang-9.0.0)`.
pub fn fig06() -> FigureReport {
    let tk = figure5_thicket();
    let filtered = tk.filter_metadata(|r| r.str("compiler").as_deref() == Some("clang-9.0.0"));
    let view = filtered
        .metadata()
        .select(&[
            ColKey::new("problem size"),
            ColKey::new("compiler"),
            ColKey::new("cluster"),
            ColKey::new("user"),
        ])
        .expect("metadata columns");
    let mut text = String::from(
        "t_obj.filter_metadata(lambda x: x[\"compiler\"] == \"clang-9.0.0\")\n\n",
    );
    text.push_str(&render(&view));
    FigureReport {
        id: "fig06",
        title: "Metadata after filtering on the compiler column",
        text,
        svgs: vec![],
    }
}

/// Figure 7: `groupby([compiler, problem size])` → four thickets.
pub fn fig07() -> FigureReport {
    let tk = figure5_thicket();
    let groups = tk
        .groupby(&[ColKey::new("compiler"), ColKey::new("problem size")])
        .expect("groupby");
    let mut text = format!("{} thickets created...\n", groups.len());
    let keys: Vec<String> = groups
        .iter()
        .map(|(k, _)| format!("('{}', {})", k[0], k[1]))
        .collect();
    text.push_str(&format!("[{}]\n\n", keys.join(", ")));
    for (_, sub) in &groups {
        let view = sub
            .metadata()
            .select(&[
                ColKey::new("problem size"),
                ColKey::new("compiler"),
                ColKey::new("cluster"),
                ColKey::new("user"),
            ])
            .expect("metadata columns");
        text.push_str(&render(&view));
        text.push('\n');
    }
    FigureReport {
        id: "fig07",
        title: "Grouping profiles by unique (compiler, problem size)",
        text,
        svgs: vec![],
    }
}

/// Figure 8: the call-path query for `*.block_128` leaves, before/after.
pub fn fig08() -> FigureReport {
    let mut b128 = GpuRunConfig::lassen_default();
    b128.block_size = 128;
    let mut b256 = GpuRunConfig::lassen_default();
    b256.block_size = 256;
    let tk = Thicket::loader(&[simulate_gpu_run(&b128), simulate_gpu_run(&b256)])
        .profile_ids(&[Value::Int(128), Value::Int(256)])
        .load()
        .expect("CUDA thicket")
        .0;

    let query = Query::builder()
        .node(".", pred::name_eq("Base_CUDA"))
        .any("*")
        .node(".", pred::name_ends_with("block_128"))
        .build();
    let filtered = tk.query(&query).expect("query");

    let mut text = String::from("before:\n");
    text.push_str(&tk.tree(&ColKey::new("time (gpu)"), &Value::Int(128)));
    text.push_str("\nquery = QueryMatcher().match('.', name == 'Base_CUDA')\n");
    text.push_str("                      .rel('*')\n");
    text.push_str("                      .rel('.', name.endswith('block_128'))\n\nafter:\n");
    text.push_str(&filtered.tree(&ColKey::new("time (gpu)"), &Value::Int(128)));
    FigureReport {
        id: "fig08",
        title: "Call Path Query Language: block_128 paths",
        text,
        svgs: vec![],
    }
}

/// Figure 9: aggregated std statistics and `filter_stats`.
pub fn fig09() -> FigureReport {
    let mut tk = Thicket::loader(&data::quartz_runs(10, 4_194_304)).load().expect("ensemble").0;
    tk.compute_stats(&[
        (ColKey::new("Retiring"), vec![AggFn::Std]),
        (ColKey::new("Backend bound"), vec![AggFn::Std]),
        (ColKey::new("time (exc)"), vec![AggFn::Std]),
    ])
    .expect("stats");
    let interesting = [
        "Apps_NODAL_ACCUMULATION_3D",
        "Apps_VOL3D",
        "Lcals_HYDRO_1D",
        "Polybench_GESUMMV",
        "Stream_DOT",
    ];
    let shown = tk.filter_stats(|r| {
        interesting.contains(&tk.node_name(&r.level("node")).as_str())
    });
    let mut text = String::from("aggregated statistics (std over 10 profiles):\n");
    text.push_str(&render(&shown.statsframe_named()));
    let filtered = shown.filter_stats(|r| {
        matches!(
            tk.node_name(&r.level("node")).as_str(),
            "Apps_NODAL_ACCUMULATION_3D" | "Apps_VOL3D"
        )
    });
    text.push_str("\nt_obj.filter_stats(node in [Apps_NODAL_ACCUMULATION_3D, Apps_VOL3D]):\n");
    text.push_str(&render(&filtered.statsframe_named()));
    FigureReport {
        id: "fig09",
        title: "Aggregated statistics before/after filter_stats",
        text,
        svgs: vec![],
    }
}

/// Figure 10: k-means clusters of Stream kernels over optimization
/// levels, in (speedup, retiring/backend) space.
pub fn fig10() -> FigureReport {
    use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};
    let mut profiles = Vec::new();
    for opt in 0..=3u32 {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.problem_size = 8_388_608;
        cfg.opt_level = opt;
        cfg.seed = 90 + opt as u64;
        profiles.push(simulate_cpu_run(&cfg));
    }
    let tk = Thicket::loader(&profiles)
        .profile_ids(&(0..4i64).map(Value::Int).collect::<Vec<_>>())
        .load()
        .expect("opt thicket")
        .0;

    let kernels = ["Stream_ADD", "Stream_COPY", "Stream_DOT", "Stream_MUL", "Stream_TRIAD"];
    let mut rows = Vec::new();
    for kernel in kernels {
        let node = tk.find_node(kernel).expect("kernel");
        let t0 = tk
            .metric_at(node, &Value::Int(0), &ColKey::new("time (exc)"))
            .expect("baseline");
        for opt in 0..4i64 {
            let p = Value::Int(opt);
            let t = tk.metric_at(node, &p, &ColKey::new("time (exc)")).unwrap();
            let ret = tk.metric_at(node, &p, &ColKey::new("Retiring")).unwrap();
            let be = tk.metric_at(node, &p, &ColKey::new("Backend bound")).unwrap();
            rows.push((kernel, opt, t0 / t, ret, be));
        }
    }
    let features: Vec<Vec<f64>> = rows
        .iter()
        .map(|&(_, _, s, r, b)| vec![s, r, b])
        .collect();
    let (_, scaled) = StandardScaler::fit_transform(&features);
    let mut best = (2usize, f64::MIN);
    for k in 2..=6 {
        let km = kmeans(&scaled, &KMeansConfig::new(k).with_seed(17));
        if let Some(s) = silhouette_score(&scaled, &km.labels) {
            if s > best.1 {
                best = (k, s);
            }
        }
    }
    let km = kmeans(&scaled, &KMeansConfig::new(best.0).with_seed(17));

    let mut text = format!(
        "silhouette analysis selects k = {} (score {:.3})\n\n",
        best.0, best.1
    );
    text.push_str(&format!(
        "{:<14} {:>4} {:>9} {:>9} {:>9}  cluster\n",
        "kernel", "opt", "speedup", "retiring", "backend"
    ));
    for (&(kernel, opt, s, r, b), &label) in rows.iter().zip(km.labels.iter()) {
        text.push_str(&format!(
            "{kernel:<14} -O{opt} {s:>9.3} {r:>9.3} {b:>9.3}  {label}\n"
        ));
    }

    // Scatter: speedup vs retiring, one series per cluster.
    let mut svgs = Vec::new();
    for (metric_name, metric_idx) in [("retiring", 3usize), ("backend_bound", 4)] {
        let mut series = Vec::new();
        for c in 0..best.0 {
            let pts: Vec<(f64, f64)> = rows
                .iter()
                .zip(km.labels.iter())
                .filter(|(_, &l)| l == c)
                .map(|(&(_, _, s, r, b), _)| (s, if metric_idx == 3 { r } else { b }))
                .collect();
            series.push(Series::new(format!("cluster {c}"), pts));
        }
        let svg = scatter_chart(
            &series,
            &ChartOptions {
                title: format!("K-means clusters: {metric_name} vs speedup (rel. -O0)"),
                x_label: "Speedup".into(),
                y_label: metric_name.replace('_', " "),
                ..ChartOptions::default()
            },
        );
        svgs.push((format!("fig10_{metric_name}.svg"), svg));
    }
    FigureReport {
        id: "fig10",
        title: "K-means clustering of Stream kernels over -O levels",
        text,
        svgs,
    }
}

/// Figure 11: Extra-P models of `M_solver->Mult` on CTS and AWS.
pub fn fig11() -> FigureReport {
    let profiles = data::marbl_study();
    let tk = Thicket::loader(&profiles).load().expect("marbl thicket").0;
    let mut text = String::new();
    let mut svgs = Vec::new();
    for (arch, label) in [("CTS1", "CTS"), ("C5n.18xlarge", "AWS")] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let models = model_metric(
            &sub,
            &ColKey::new("avg#inclusive#sum#time.duration"),
            &ColKey::new("mpi.world.size"),
        )
        .expect("models");
        let solver = models
            .iter()
            .find(|m| m.name == "M_solver->Mult")
            .expect("solver model");
        text.push_str(&format!(
            "{label} Extra-P model: {}\n  (SMAPE {:.2} %, adjusted R2 {:.4})\n",
            solver.model.formula(),
            solver.model.smape,
            solver.model.adjusted_r2
        ));
        let measured = Series::new("M_solver->Mult", solver.points.clone());
        let curve: Vec<(f64, f64)> = (1..=35)
            .map(|i| {
                let p = 36.0 * 100.0 * i as f64 / 35.0;
                (p, solver.model.eval(p))
            })
            .collect();
        let model_series = Series::dashed("model", curve);
        let svg = line_chart(
            &[model_series, measured],
            &ChartOptions {
                title: format!("{label} Extra-P model: {}", solver.model.formula()),
                x_label: "nprocs".into(),
                y_label: "Avg time/rank_mean (s)".into(),
                ..ChartOptions::default()
            },
        );
        svgs.push((format!("fig11_{}.svg", label.to_lowercase()), svg));
    }
    FigureReport {
        id: "fig11",
        title: "Extra-P models of a MARBL function on CTS and AWS",
        text,
        svgs,
    }
}

/// Figure 12: heatmap of std metrics plus histograms of the outliers.
pub fn fig12() -> FigureReport {
    let mut tk = Thicket::loader(&data::quartz_runs(10, 4_194_304)).load().expect("ensemble").0;
    tk.compute_stats(&[
        (ColKey::new("Retiring"), vec![AggFn::Std]),
        (ColKey::new("Backend bound"), vec![AggFn::Std]),
        (ColKey::new("time (exc)"), vec![AggFn::Std]),
    ])
    .expect("stats");

    let kernels = [
        "Apps_NODAL_ACCUMULATION_3D",
        "Apps_VOL3D",
        "Lcals_HYDRO_1D",
        "Polybench_GESUMMV",
        "Stream_DOT",
    ];
    let cols = ["Retiring_std", "Backend bound_std", "time (exc)_std"];
    let mut values = Vec::new();
    for kernel in kernels {
        let node = tk.find_node(kernel).unwrap();
        let node_v = tk.value_of_node(node);
        let row = tk
            .statsframe()
            .index()
            .keys()
            .iter()
            .position(|k| k[0] == node_v)
            .unwrap();
        values.push(
            cols.iter()
                .map(|c| {
                    tk.statsframe()
                        .column(&ColKey::new(*c))
                        .unwrap()
                        .get_f64(row)
                        .unwrap()
                })
                .collect::<Vec<f64>>(),
        );
    }
    let row_labels: Vec<String> = kernels.iter().map(|s| s.to_string()).collect();
    let col_labels: Vec<String> = cols.iter().map(|s| s.to_string()).collect();
    let mut text = String::from("std heatmap (text form):\n");
    text.push_str(&thicket_viz::text_heatmap(&row_labels, &col_labels, &values));
    let mut svgs = vec![(
        "fig12_heatmap.svg".to_string(),
        heatmap_chart(&row_labels, &col_labels, &values, "std of metrics across 10 runs"),
    )];

    // Histograms of the two highlighted nodes.
    for kernel in ["Polybench_GESUMMV", "Lcals_HYDRO_1D"] {
        let node = tk.find_node(kernel).unwrap();
        let times: Vec<f64> = tk
            .metric_series(node, &ColKey::new("time (exc)"))
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        let hist = thicket_stats::histogram(&times, 5).unwrap();
        text.push_str(&format!("\nhistogram of time (exc) for {kernel}:\n"));
        text.push_str(&thicket_viz::text_histogram(&hist, 30));
        svgs.push((
            format!("fig12_hist_{kernel}.svg"),
            histogram_chart(&hist, kernel, "time (exc)"),
        ));
    }
    FigureReport {
        id: "fig12",
        title: "Heatmap and histograms for outlier identification",
        text,
        svgs,
    }
}

/// Figure 13: the RAJA Performance Suite configuration table.
pub fn fig13() -> FigureReport {
    let rows = data::figure13_configs();
    let mut text = format!(
        "{:<8} {:<22} {:<14} {:<14} {:<16} {:<4} {:<14} {:<20} {:<10} {:>9}\n",
        "cluster", "systype", "problem sizes", "compiler", "optimizations", "omp",
        "cuda compiler", "block sizes", "variant", "#profiles"
    );
    for r in &rows {
        text.push_str(&format!(
            "{:<8} {:<22} {:<14} {:<14} {:<16} {:<4} {:<14} {:<20} {:<10} {:>9}\n",
            r.cluster,
            r.systype,
            format!("{} sizes", r.problem_sizes.len()),
            r.compiler,
            format!("{:?}", r.optimizations.iter().map(|o| format!("-O{o}")).collect::<Vec<_>>()),
            r.omp_threads,
            r.cuda_compiler.clone().unwrap_or_else(|| "N/A".into()),
            if r.block_sizes.is_empty() { "N/A".to_string() } else { format!("{:?}", r.block_sizes) },
            r.variant,
            r.profiles,
        ));
    }
    let total: usize = rows.iter().map(|r| r.profiles).sum();
    text.push_str(&format!("total profiles: {total}\n"));

    // Actually generate the full ensemble and verify it composes.
    let profiles = data::figure13_profiles();
    let by_variant = |v: &str| {
        profiles
            .iter()
            .filter(|p| p.metadata("variant").unwrap().as_str() == Some(v))
            .count()
    };
    text.push_str(&format!(
        "generated: {} profiles (Sequential {}, OpenMP {}, CUDA {})\n",
        profiles.len(),
        by_variant("Sequential"),
        by_variant("OpenMP"),
        by_variant("CUDA"),
    ));
    FigureReport {
        id: "fig13",
        title: "RAJA Performance Suite configurations (560 profiles)",
        text,
        svgs: vec![],
    }
}

/// Figure 14: the top-down visualization — stacked boundedness bars per
/// kernel, grouped by problem size (10 profiles each, averaged).
pub fn fig14() -> FigureReport {
    use thicket_perfsim::{simulate_cpu_run, CpuRunConfig};
    let kernels = [
        "Apps_NODAL_ACCUMULATION_3D",
        "Apps_VOL3D",
        "Lcals_HYDRO_1D",
        "Stream_DOT",
    ];
    let categories: Vec<String> = [
        "Retiring",
        "Frontend bound",
        "Backend bound",
        "Bad speculation",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let mut text = format!(
        "{:<28} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "kernel", "size", "retiring", "frontend", "backend", "badspec"
    );
    let mut groups: Vec<(String, Vec<BarStack>)> = Vec::new();
    for kernel in kernels {
        let mut bars = Vec::new();
        for &size in &data::SIZES {
            // Ten profiles per configuration, averaged (the paper's bars).
            let mut sums = [0.0f64; 4];
            for run in 0..10 {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.problem_size = size;
                cfg.seed = size ^ run;
                let p = simulate_cpu_run(&cfg);
                let node = p.graph().find_by_name(kernel).unwrap();
                for (acc, metric) in sums.iter_mut().zip(categories.iter()) {
                    *acc += p.metric(node, metric).unwrap();
                }
            }
            let avg: Vec<f64> = sums.iter().map(|v| v / 10.0).collect();
            text.push_str(&format!(
                "{kernel:<28} {size:>9} {:>9.3} {:>9.3} {:>9.3} {:>9.3}\n",
                avg[0], avg[1], avg[2], avg[3]
            ));
            bars.push(BarStack {
                label: format!("{}", size / 1_048_576),
                segments: avg,
            });
        }
        groups.push((kernel.to_string(), bars));
    }
    let svg = stacked_bars(
        &categories,
        &groups,
        "Top-down boundedness by kernel and problem size (×2^20 elements)",
    );
    FigureReport {
        id: "fig14",
        title: "Top-down analysis visualization",
        text,
        svgs: vec![("fig14_topdown.svg".into(), svg)],
    }
}

/// Figure 15: the composed CPU/GPU table with the derived speedup column.
pub fn fig15() -> FigureReport {
    let size = Value::Int(8_388_608);
    let cpu = data::cpu_by_size_thicket().filter_profiles(std::slice::from_ref(&size));
    let gpu = data::gpu_by_size_thicket().filter_profiles(std::slice::from_ref(&size));
    let mut composed =
        concat_thickets(&[("CPU", &cpu), ("GPU", &gpu)], NodeMatch::Name).expect("compose");
    composed
        .add_derived_column(ColKey::grouped("Derived", "speedup"), |r| {
            match (
                r.f64(ColKey::grouped("CPU", "time (exc)")),
                r.f64(ColKey::grouped("GPU", "time (gpu)")),
            ) {
                (Some(c), Some(g)) if g > 0.0 => Value::Float(c / g),
                _ => Value::Null,
            }
        })
        .expect("derived");
    let view = composed
        .perf_data()
        .select(&[
            ColKey::grouped("CPU", "time (exc)"),
            ColKey::grouped("CPU", "Bytes/Rep"),
            ColKey::grouped("CPU", "Flops/Rep"),
            ColKey::grouped("CPU", "Retiring"),
            ColKey::grouped("CPU", "Backend bound"),
            ColKey::grouped("GPU", "time (gpu)"),
            ColKey::grouped("GPU", "gpu__compute_memory_throughput"),
            ColKey::grouped("GPU", "gpu__dram_throughput"),
            ColKey::grouped("GPU", "sm__throughput"),
            ColKey::grouped("GPU", "sm__warps_active"),
            ColKey::grouped("Derived", "speedup"),
        ])
        .expect("columns")
        .filter(|r| {
            matches!(
                r.level("node").as_str(),
                Some("Apps_VOL3D") | Some("Lcals_HYDRO_1D")
            )
        });
    FigureReport {
        id: "fig15",
        title: "Multi-architecture table with derived CPU→GPU speedup",
        text: render(&view),
        svgs: vec![],
    }
}

/// Figure 16: the MARBL configuration table.
pub fn fig16() -> FigureReport {
    let profiles = data::marbl_study();
    let tk = Thicket::loader(&profiles).load().expect("marbl thicket").0;
    let mut text = format!(
        "{:<14} {:<40} {:<8} {:<22} {:<22} {:<28} {:>9}\n",
        "cluster", "ccompiler", "mpi", "version", "numhosts", "mpi.world.size", "#profiles"
    );
    for arch in ["C5n.18xlarge", "CTS1"] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let meta = sub.metadata();
        let hosts = sub_unique(meta, "numhosts");
        let ranks = sub_unique(meta, "mpi.world.size");
        let row0 = meta.row(0);
        text.push_str(&format!(
            "{:<14} {:<40} {:<8} {:<22} {:<22} {:<28} {:>9}\n",
            row0.str("cluster").unwrap_or_default(),
            row0.str("ccompiler").unwrap_or_default(),
            row0.str("mpi").unwrap_or_default(),
            row0.str("version").unwrap_or_default(),
            format!("{hosts:?}"),
            format!("{ranks:?}"),
            meta.len(),
        ));
    }
    FigureReport {
        id: "fig16",
        title: "MARBL configurations (two clusters, 30 profiles each)",
        text,
        svgs: vec![],
    }
}

fn sub_unique(meta: &thicket_dataframe::DataFrame, col: &str) -> Vec<i64> {
    let mut v: Vec<i64> = meta
        .unique(&ColKey::new(col))
        .unwrap_or_default()
        .into_iter()
        .filter_map(|x| x.as_i64())
        .collect();
    v.sort_unstable();
    v
}

/// Figure 17: MARBL node-to-node strong scaling with ideal lines.
pub fn fig17() -> FigureReport {
    let profiles = data::marbl_study();
    let tk = Thicket::loader(&profiles).load().expect("marbl thicket").0;
    let nodes = [1u32, 2, 4, 8, 16, 32];
    let mut text = format!(
        "{:<26} {:>6} {:>14} {:>12}\n",
        "series", "nodes", "time/cycle(s)", "std"
    );
    let mut series = Vec::new();
    for (arch, label, mpi) in [
        ("C5n.18xlarge", "C5n.18xlarge-IntelMPI", "impi"),
        ("CTS1", "CTS1-OpenMPI", "openmpi"),
    ] {
        let sub = tk.filter_metadata(|r| r.str("arch").as_deref() == Some(arch));
        let step = sub.find_node("timeStepLoop").expect("timeStepLoop");
        let hosts = sub.metadata_column(&ColKey::new("numhosts")).unwrap();
        let mut pts = Vec::new();
        for &n in &nodes {
            let samples: Vec<f64> = sub
                .metric_series(step, &ColKey::new("time per cycle"))
                .into_iter()
                .filter(|(p, _)| hosts.get(p).and_then(|v| v.as_i64()) == Some(n as i64))
                .map(|(_, v)| v)
                .collect();
            let mean = thicket_stats::mean(&samples).unwrap();
            let std = thicket_stats::std_dev(&samples).unwrap_or(0.0);
            text.push_str(&format!(
                "{label:<26} {n:>6} {mean:>14.4} {std:>12.4}\n"
            ));
            pts.push((n as f64, mean));
        }
        // Ideal line anchored at the single-node mean.
        let t1 = pts[0].1;
        let ideal: Vec<(f64, f64)> = nodes.iter().map(|&n| (n as f64, t1 / n as f64)).collect();
        series.push(Series::dashed(format!("{label}-ideal"), ideal));
        series.push(Series::new(label, pts));
        let _ = mpi;
    }
    let svg = line_chart(
        &series,
        &ChartOptions {
            title: "MARBL (lag) -- Triple-Pt-3D -- node-to-node strong scaling: timeStepLoop"
                .into(),
            x_label: "compute nodes [log2]".into(),
            y_label: "time per cycle (s) [log2]".into(),
            x_scale: AxisScale::Log2,
            y_scale: AxisScale::Log2,
            ..ChartOptions::default()
        },
    );
    FigureReport {
        id: "fig17",
        title: "MARBL strong scaling",
        text,
        svgs: vec![("fig17_scaling.svg".into(), svg)],
    }
}

/// Figure 18: the metadata scatter plots and parallel coordinate plot.
pub fn fig18() -> FigureReport {
    let profiles = data::marbl_study();
    let tk = Thicket::loader(&profiles).load().expect("marbl thicket").0;
    let meta = tk.metadata();
    let step = tk.find_node("timeStepLoop").expect("timeStepLoop");

    // Per-profile vectors aligned with the metadata index.
    let series_by_profile: std::collections::HashMap<Value, f64> = tk
        .metric_series(step, &ColKey::new("min#inclusive#sum#time.duration"))
        .into_iter()
        .collect();
    let mut num_elems = Vec::new();
    let mut ranks = Vec::new();
    let mut walltime = Vec::new();
    let mut steploop = Vec::new();
    let mut arch_class = Vec::new();
    for row in 0..meta.len() {
        let r = meta.row(row);
        num_elems.push(r.f64("num_elems_max_per_rank").unwrap());
        ranks.push(r.f64("mpi.world.size").unwrap());
        walltime.push(r.f64("walltime").unwrap());
        let profile = meta.index().key(row)[0].clone();
        steploop.push(*series_by_profile.get(&profile).expect("profile series"));
        arch_class.push(if r.str("arch").as_deref() == Some("CTS1") { 0 } else { 1 });
    }

    #[allow(clippy::type_complexity)]
    let split = |vals: &[f64]| -> (Vec<(f64, f64)>, Vec<(f64, f64)>) {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for ((x, y), &c) in num_elems.iter().zip(vals.iter()).zip(arch_class.iter()) {
            if c == 0 {
                a.push((*x, *y));
            } else {
                b.push((*x, *y));
            }
        }
        (a, b)
    };
    let (cts_pts, aws_pts) = split(&steploop);
    let left = scatter_chart(
        &[
            Series::new("CTS1", cts_pts),
            Series::new("C5n.18xlarge", aws_pts),
        ],
        &ChartOptions {
            title: "timeStepLoop time vs elements per rank".into(),
            x_label: "num_elems_max_per_rank".into(),
            y_label: "min#inclusive#sum#time.duration".into(),
            ..ChartOptions::default()
        },
    );
    // Right scatter: two performance-data variables against each other.
    let mut cts2 = Vec::new();
    let mut aws2 = Vec::new();
    for ((x, y), &c) in steploop.iter().zip(walltime.iter()).zip(arch_class.iter()) {
        if c == 0 {
            cts2.push((*x, *y));
        } else {
            aws2.push((*x, *y));
        }
    }
    let right = scatter_chart(
        &[Series::new("CTS1", cts2), Series::new("C5n.18xlarge", aws2)],
        &ChartOptions {
            title: "timeStepLoop time vs walltime".into(),
            x_label: "min#inclusive#sum#time.duration".into(),
            y_label: "walltime".into(),
            ..ChartOptions::default()
        },
    );
    let pcp = parallel_coordinates(
        &[
            PcpAxis {
                name: "num_elems_max_per_rank".into(),
                values: num_elems.clone(),
            },
            PcpAxis {
                name: "mpi.world.size".into(),
                values: ranks.clone(),
            },
            PcpAxis {
                name: "walltime".into(),
                values: walltime.clone(),
            },
        ],
        &arch_class,
        "MARBL metadata parallel coordinates (color = architecture)",
    );

    let rho_ranks_wall = thicket_stats::spearman(&ranks, &walltime).unwrap();
    let rho_elems_wall = thicket_stats::spearman(&num_elems, &walltime).unwrap();
    let text = format!(
        "spearman(mpi.world.size, walltime)       = {rho_ranks_wall:.3}  (criss-crossing PCP lines)\n\
         spearman(num_elems/rank, walltime)       = {rho_elems_wall:.3}  (parallel PCP lines)\n",
    );
    FigureReport {
        id: "fig18",
        title: "MARBL metadata PCP and scatter plots",
        text,
        svgs: vec![
            ("fig18_scatter_left.svg".into(), left),
            ("fig18_scatter_right.svg".into(), right),
            ("fig18_pcp.svg".into(), pcp),
        ],
    }
}

/// The single-node time-per-cycle figures used by EXPERIMENTS.md to
/// compare clusters at a glance.
pub fn scaling_summary() -> String {
    let mut out = String::new();
    for cluster in [MarblCluster::RzTopaz, MarblCluster::AwsParallelCluster] {
        for nodes in [1u32, 16] {
            let t = time_per_cycle(&MarblConfig::triple_point(cluster, nodes, 0));
            out.push_str(&format!("{cluster:?} @ {nodes} nodes: {t:.3} s/cycle\n"));
        }
    }
    out
}
