//! # thicket-graph
//!
//! Call-graph substrate for the Thicket reproduction — the Hatchet stand-in.
//!
//! A [`Graph`] is an arena of [`Node`]s identified by [`Frame`]s (ordered
//! attribute maps, at minimum `name`). Profiles produced by the collector
//! each carry one call tree; [`GraphUnion`] structurally unifies an
//! ensemble of them into a single graph with per-input node mappings,
//! which is how the thicket constructor aligns metric rows from many runs
//! onto shared `(node, profile)` keys (paper §3.2).
//!
//! ```
//! use thicket_graph::{Frame, Graph, GraphUnion};
//!
//! let mut a = Graph::new();
//! let main = a.add_root(Frame::named("MAIN"));
//! a.add_child(main, Frame::named("FOO"));
//!
//! let mut b = Graph::new();
//! let main_b = b.add_root(Frame::named("MAIN"));
//! b.add_child(main_b, Frame::named("BAR"));
//!
//! let u = GraphUnion::build(&[&a, &b]);
//! assert_eq!(u.graph.len(), 3);           // MAIN, FOO, BAR
//! assert_eq!(u.intersection().len(), 1);  // only MAIN is shared
//! ```

#![warn(missing_docs)]

mod diff;
mod frame;
#[allow(clippy::module_inception)]
mod graph;
mod union;

pub use diff::GraphDiff;
pub use frame::Frame;
pub use graph::{Graph, Node, NodeId};
pub use union::GraphUnion;
