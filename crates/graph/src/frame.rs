//! Node identity frames.
//!
//! Following Hatchet, every call-tree node carries a *frame*: a small
//! ordered map of identifying attributes (at minimum `name`, usually also
//! `type`). Two nodes in different profiles represent the same source
//! construct exactly when their frames are equal — frame equality is what
//! drives the call-tree matching ("graph isomorphism") when composing
//! profiles (paper §3.2).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use thicket_dataframe::{intern, Value};

/// An ordered attribute map identifying a call-tree node.
///
/// Keys are interner-shared `Arc<str>`: attribute names repeat across
/// every node of every profile in an ensemble ("name", "type", …), so
/// frames hold refcounts into the global intern table instead of one
/// owned `String` per node. Ordering and lookup are by string contents,
/// exactly as with owned keys.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Frame {
    attrs: BTreeMap<Arc<str>, Value>,
}

impl Frame {
    /// Frame with just a `name` attribute (the common case for annotated
    /// source regions).
    pub fn named(name: impl AsRef<str>) -> Self {
        let mut attrs = BTreeMap::new();
        attrs.insert(intern("name"), Value::from(name.as_ref()));
        Frame { attrs }
    }

    /// Frame with `name` and `type` attributes (e.g. `function`, `region`,
    /// `loop`, `kernel`).
    pub fn with_type(name: impl AsRef<str>, node_type: impl AsRef<str>) -> Self {
        let mut f = Frame::named(name);
        f.attrs
            .insert(intern("type"), Value::from(node_type.as_ref()));
        f
    }

    /// Build from arbitrary attributes. Pre-interned `Arc<str>` keys
    /// are adopted as-is (the profile-decode hot path); `String` /
    /// `&str` keys convert per entry.
    pub fn from_attrs<K: Into<Arc<str>>>(attrs: impl IntoIterator<Item = (K, Value)>) -> Self {
        Frame {
            attrs: attrs.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }

    /// Attribute lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.attrs.get(key)
    }

    /// Set (or replace) an attribute, returning self for chaining.
    pub fn set(mut self, key: impl Into<Arc<str>>, value: impl Into<Value>) -> Self {
        self.attrs.insert(key.into(), value.into());
        self
    }

    /// The `name` attribute, or `"<unknown>"`.
    pub fn name(&self) -> &str {
        self.attrs
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or("<unknown>")
    }

    /// The `type` attribute, if present.
    pub fn node_type(&self) -> Option<&str> {
        self.attrs.get("type").and_then(Value::as_str)
    }

    /// Iterate attributes in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.attrs.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// `true` if the frame has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_frame() {
        let f = Frame::named("MAIN");
        assert_eq!(f.name(), "MAIN");
        assert_eq!(f.node_type(), None);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn typed_frame_and_chaining() {
        let f = Frame::with_type("foo", "function").set("file", "a.c");
        assert_eq!(f.node_type(), Some("function"));
        assert_eq!(f.get("file"), Some(&Value::from("a.c")));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn equality_is_attribute_equality() {
        assert_eq!(Frame::named("x"), Frame::named("x"));
        assert_ne!(Frame::named("x"), Frame::named("y"));
        assert_ne!(Frame::named("x"), Frame::with_type("x", "function"));
    }

    #[test]
    fn display_is_ordered() {
        let f = Frame::with_type("foo", "loop");
        assert_eq!(f.to_string(), "{name: foo, type: loop}");
    }

    #[test]
    fn unknown_name_fallback() {
        let f = Frame::from_attrs(vec![("file".to_string(), Value::from("a.c"))]);
        assert_eq!(f.name(), "<unknown>");
    }
}
