//! Structural diff between call graphs: which call paths appeared,
//! disappeared, or persist between two runs — useful when an ensemble's
//! trees are *not* identical (new code paths after a change, dynamic
//! features toggled by configuration).

use crate::graph::{Graph, NodeId};
use crate::union::GraphUnion;
use std::collections::HashSet;

/// The outcome of diffing two graphs.
#[derive(Debug, Clone)]
pub struct GraphDiff {
    /// The union graph both sides were mapped into.
    pub union: Graph,
    /// Union node ids present in both inputs.
    pub common: Vec<NodeId>,
    /// Union node ids present only in the left input.
    pub only_left: Vec<NodeId>,
    /// Union node ids present only in the right input.
    pub only_right: Vec<NodeId>,
}

impl GraphDiff {
    /// Diff `left` against `right` by structural union.
    pub fn compute(left: &Graph, right: &Graph) -> GraphDiff {
        let u = GraphUnion::build(&[left, right]);
        let l: HashSet<NodeId> = u.mappings[0].values().copied().collect();
        let r: HashSet<NodeId> = u.mappings[1].values().copied().collect();
        let mut common: Vec<NodeId> = l.intersection(&r).copied().collect();
        let mut only_left: Vec<NodeId> = l.difference(&r).copied().collect();
        let mut only_right: Vec<NodeId> = r.difference(&l).copied().collect();
        common.sort_unstable();
        only_left.sort_unstable();
        only_right.sort_unstable();
        GraphDiff {
            union: u.graph,
            common,
            only_left,
            only_right,
        }
    }

    /// `true` when the two graphs are structurally identical.
    pub fn is_identical(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }

    /// Jaccard similarity of the two node sets (1.0 = identical).
    pub fn similarity(&self) -> f64 {
        let union_size = self.common.len() + self.only_left.len() + self.only_right.len();
        if union_size == 0 {
            return 1.0;
        }
        self.common.len() as f64 / union_size as f64
    }

    /// Render the diff as an indented tree with `=`/`<`/`>` markers per
    /// node (`=` common, `<` left-only, `>` right-only).
    pub fn render(&self) -> String {
        let l: HashSet<NodeId> = self.only_left.iter().copied().collect();
        let r: HashSet<NodeId> = self.only_right.iter().copied().collect();
        let mut out = String::new();
        for id in self.union.preorder() {
            let marker = if l.contains(&id) {
                '<'
            } else if r.contains(&id) {
                '>'
            } else {
                '='
            };
            out.push_str(&"  ".repeat(self.union.depth(id)));
            out.push(marker);
            out.push(' ');
            out.push_str(self.union.node(id).name());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;

    fn chain(names: &[&str]) -> Graph {
        let mut g = Graph::new();
        let mut cur = g.add_root(Frame::named(names[0]));
        for n in &names[1..] {
            cur = g.add_child(cur, Frame::named(*n));
        }
        g
    }

    #[test]
    fn identical_graphs() {
        let a = chain(&["main", "solve"]);
        let d = GraphDiff::compute(&a, &a.clone());
        assert!(d.is_identical());
        assert_eq!(d.similarity(), 1.0);
        assert_eq!(d.common.len(), 2);
    }

    #[test]
    fn divergent_subtrees() {
        let mut a = Graph::new();
        let m = a.add_root(Frame::named("main"));
        a.add_child(m, Frame::named("old_kernel"));
        a.add_child(m, Frame::named("shared"));
        let mut b = Graph::new();
        let m2 = b.add_root(Frame::named("main"));
        b.add_child(m2, Frame::named("new_kernel"));
        b.add_child(m2, Frame::named("shared"));
        let d = GraphDiff::compute(&a, &b);
        assert_eq!(d.common.len(), 2); // main, shared
        assert_eq!(d.only_left.len(), 1);
        assert_eq!(d.only_right.len(), 1);
        assert!((d.similarity() - 0.5).abs() < 1e-12);
        let txt = d.render();
        assert!(txt.contains("= main"));
        assert!(txt.contains("< old_kernel"));
        assert!(txt.contains("> new_kernel"));
    }

    #[test]
    fn empty_graphs_similar() {
        let d = GraphDiff::compute(&Graph::new(), &Graph::new());
        assert!(d.is_identical());
        assert_eq!(d.similarity(), 1.0);
    }

    #[test]
    fn disjoint_graphs() {
        let d = GraphDiff::compute(&chain(&["a"]), &chain(&["b"]));
        assert_eq!(d.similarity(), 0.0);
        assert!(!d.is_identical());
    }
}
