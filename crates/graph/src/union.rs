//! Structural union of call graphs.
//!
//! Composing an ensemble requires matching "the same" node across profiles
//! (the paper's call-tree matching, §3.2: executions with different build
//! settings or inputs yield similar or identical call trees). Two nodes
//! match when their frames are equal *and* their call paths match — i.e.
//! the union walks both graphs top-down, pairing children by frame.
//!
//! [`GraphUnion::build`] produces the unified graph plus, for every input
//! graph, a mapping from its node ids to unified ids; the thicket
//! constructor uses those mappings to re-key every profile's metric rows.

use crate::frame::Frame;
use crate::graph::{Graph, NodeId};
use std::collections::HashMap;

/// Result of unioning a sequence of graphs.
#[derive(Debug, Clone)]
pub struct GraphUnion {
    /// The unified graph (superset of every input's structure).
    pub graph: Graph,
    /// `mappings[i][old_id] = unified_id` for input graph `i`.
    pub mappings: Vec<HashMap<NodeId, NodeId>>,
}

impl GraphUnion {
    /// Union all `graphs` (hash-indexed child matching).
    pub fn build(graphs: &[&Graph]) -> GraphUnion {
        Self::build_impl(graphs, true)
    }

    /// Reference implementation using a linear sibling scan instead of a
    /// hash index. Same result, asymptotically slower for wide sibling
    /// sets; kept for the `ablate_union` benchmark and as an oracle in
    /// property tests.
    pub fn build_naive(graphs: &[&Graph]) -> GraphUnion {
        Self::build_impl(graphs, false)
    }

    fn build_impl(graphs: &[&Graph], indexed: bool) -> GraphUnion {
        let mut out = Graph::new();
        let mut mappings = Vec::with_capacity(graphs.len());
        // Index: (unified parent or None-for-root, frame) -> unified node.
        let mut index: HashMap<(Option<NodeId>, Frame), NodeId> = HashMap::new();
        for g in graphs {
            let mut map: HashMap<NodeId, NodeId> = HashMap::new();
            // Pre-order guarantees parents map before children.
            for id in g.preorder() {
                let frame = g.node(id).frame().clone();
                let parent_new = g
                    .node(id)
                    .parents()
                    .first()
                    .map(|p| *map.get(p).expect("parent mapped before child"));
                let existing = if indexed {
                    index.get(&(parent_new, frame.clone())).copied()
                } else {
                    match parent_new {
                        Some(p) => out.child_with_frame(p, &frame),
                        None => out.root_with_frame(&frame),
                    }
                };
                let new_id = match existing {
                    Some(n) => n,
                    None => {
                        let n = match parent_new {
                            Some(p) => out.add_child(p, frame.clone()),
                            None => out.add_root(frame.clone()),
                        };
                        if indexed {
                            index.insert((parent_new, frame), n);
                        }
                        n
                    }
                };
                map.insert(id, new_id);
            }
            // Extra parents (DAG input) become extra edges. Deferred to a
            // second pass: pre-order only guarantees the *first*-parent
            // chain is mapped before a node, not every parent.
            for id in g.preorder() {
                let new_id = map[&id];
                for p_old in g.node(id).parents().iter().skip(1) {
                    let p_new = map[p_old];
                    if p_new != new_id {
                        out.add_edge(p_new, new_id);
                    }
                }
            }
            mappings.push(map);
        }
        GraphUnion {
            graph: out,
            mappings,
        }
    }

    /// Unified node ids present in **every** input graph — the call-tree
    /// intersection the paper solves for hierarchical composition.
    pub fn intersection(&self) -> Vec<NodeId> {
        let mut counts: HashMap<NodeId, usize> = HashMap::new();
        for map in &self.mappings {
            let mut uniq: Vec<NodeId> = map.values().copied().collect();
            uniq.sort_unstable();
            uniq.dedup();
            for id in uniq {
                *counts.entry(id).or_insert(0) += 1;
            }
        }
        let n = self.mappings.len();
        let mut out: Vec<NodeId> = counts
            .into_iter()
            .filter(|&(_, c)| c == n)
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(names: &[&str]) -> Graph {
        let mut g = Graph::new();
        let mut cur = g.add_root(Frame::named(names[0]));
        for n in &names[1..] {
            cur = g.add_child(cur, Frame::named(*n));
        }
        g
    }

    #[test]
    fn identical_trees_collapse() {
        let a = chain(&["MAIN", "FOO", "BAZ"]);
        let b = chain(&["MAIN", "FOO", "BAZ"]);
        let u = GraphUnion::build(&[&a, &b]);
        assert_eq!(u.graph.len(), 3);
        assert_eq!(u.intersection().len(), 3);
    }

    #[test]
    fn divergent_subtrees_union() {
        let mut a = Graph::new();
        let m = a.add_root(Frame::named("MAIN"));
        a.add_child(m, Frame::named("FOO"));
        let mut b = Graph::new();
        let m2 = b.add_root(Frame::named("MAIN"));
        b.add_child(m2, Frame::named("BAR"));
        let u = GraphUnion::build(&[&a, &b]);
        assert_eq!(u.graph.len(), 3); // MAIN, FOO, BAR
        assert_eq!(u.intersection().len(), 1); // only MAIN shared
    }

    #[test]
    fn same_name_different_paths_stay_distinct() {
        // MPI_Send under FOO vs under BAR must remain two nodes.
        let a = chain(&["MAIN", "FOO", "MPI_Send"]);
        let b = chain(&["MAIN", "BAR", "MPI_Send"]);
        let u = GraphUnion::build(&[&a, &b]);
        assert_eq!(u.graph.len(), 5);
    }

    #[test]
    fn mapping_points_to_matching_frames() {
        let a = chain(&["MAIN", "FOO"]);
        let b = chain(&["MAIN", "FOO", "BAZ"]);
        let u = GraphUnion::build(&[&a, &b]);
        for (g, map) in [(&a, &u.mappings[0]), (&b, &u.mappings[1])] {
            for id in g.preorder() {
                let new = map[&id];
                assert_eq!(g.node(id).frame(), u.graph.node(new).frame());
            }
        }
    }

    #[test]
    fn union_is_idempotent() {
        let a = chain(&["MAIN", "FOO", "BAZ"]);
        let once = GraphUnion::build(&[&a]);
        let twice = GraphUnion::build(&[&once.graph, &a]);
        assert_eq!(once.graph.len(), twice.graph.len());
    }

    #[test]
    fn naive_matches_indexed() {
        let mut a = Graph::new();
        let m = a.add_root(Frame::named("MAIN"));
        for i in 0..20 {
            let c = a.add_child(m, Frame::named(format!("k{i}")));
            a.add_child(c, Frame::named("leaf"));
        }
        let mut b = Graph::new();
        let m2 = b.add_root(Frame::named("MAIN"));
        for i in 10..30 {
            b.add_child(m2, Frame::named(format!("k{i}")));
        }
        let fast = GraphUnion::build(&[&a, &b]);
        let slow = GraphUnion::build_naive(&[&a, &b]);
        assert_eq!(fast.graph.len(), slow.graph.len());
        assert_eq!(fast.intersection(), slow.intersection());
    }

    #[test]
    fn dag_inputs_preserve_extra_edges() {
        let mut a = Graph::new();
        let m = a.add_root(Frame::named("MAIN"));
        let f = a.add_child(m, Frame::named("FOO"));
        let b_ = a.add_child(m, Frame::named("BAR"));
        let shared = a.add_child(f, Frame::named("SHARED"));
        a.add_edge(b_, shared);
        let u = GraphUnion::build(&[&a]);
        assert_eq!(u.graph.len(), 4);
        let new_shared = u.mappings[0][&shared];
        assert_eq!(u.graph.node(new_shared).parents().len(), 2);
    }

    #[test]
    fn empty_input() {
        let u = GraphUnion::build(&[]);
        assert!(u.graph.is_empty());
        assert!(u.intersection().is_empty());
        let e = Graph::new();
        let u2 = GraphUnion::build(&[&e]);
        assert!(u2.graph.is_empty());
        assert_eq!(u2.intersection().len(), 0);
    }

    #[test]
    fn multi_root_union() {
        let a = chain(&["A"]);
        let b = chain(&["B"]);
        let u = GraphUnion::build(&[&a, &b]);
        assert_eq!(u.graph.roots().len(), 2);
        assert!(u.intersection().is_empty());
    }
}
