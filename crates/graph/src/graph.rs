//! The call graph: an arena of frame-identified nodes with parent/child
//! edges. Call trees are the common case, but multiple parents (DAGs, as
//! produced by call-path profilers collapsing recursion) are supported.

use crate::frame::Frame;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Stable handle to a node inside one [`Graph`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One call-graph node.
#[derive(Debug, Clone)]
pub struct Node {
    frame: Frame,
    children: Vec<NodeId>,
    parents: Vec<NodeId>,
}

impl Node {
    /// The node's identity frame.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Child node ids in insertion order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Parent node ids (empty for roots).
    pub fn parents(&self) -> &[NodeId] {
        &self.parents
    }

    /// Shorthand for `frame().name()`.
    pub fn name(&self) -> &str {
        self.frame.name()
    }
}

/// A call graph (arena representation).
#[derive(Debug, Clone, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    roots: Vec<NodeId>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root node ids in insertion order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in arena order (parents always precede the children
    /// added under them, since `add_child` appends).
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Add a root node.
    pub fn add_root(&mut self, frame: Frame) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            frame,
            children: Vec::new(),
            parents: Vec::new(),
        });
        self.roots.push(id);
        id
    }

    /// Add a child under `parent`.
    pub fn add_child(&mut self, parent: NodeId, frame: Frame) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            frame,
            children: Vec::new(),
            parents: vec![parent],
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Add an extra edge `parent -> child` (turning the tree into a DAG).
    /// No-op if the edge already exists; panics on self-edges.
    pub fn add_edge(&mut self, parent: NodeId, child: NodeId) {
        assert_ne!(parent, child, "self-edges are not allowed");
        if !self.nodes[parent.index()].children.contains(&child) {
            self.nodes[parent.index()].children.push(child);
            self.nodes[child.index()].parents.push(parent);
        }
    }

    /// Find the child of `parent` with this frame, if any.
    pub fn child_with_frame(&self, parent: NodeId, frame: &Frame) -> Option<NodeId> {
        self.node(parent)
            .children
            .iter()
            .copied()
            .find(|c| self.node(*c).frame() == frame)
    }

    /// Find the root with this frame, if any.
    pub fn root_with_frame(&self, frame: &Frame) -> Option<NodeId> {
        self.roots
            .iter()
            .copied()
            .find(|r| self.node(*r).frame() == frame)
    }

    /// All node ids in depth-first pre-order from the roots. Nodes with
    /// multiple parents are visited once (first encounter).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.len());
        let mut seen = vec![false; self.len()];
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            out.push(id);
            for &c in self.node(id).children.iter().rev() {
                if !seen[c.index()] {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Depth of a node: 0 for roots, else 1 + min parent depth.
    pub fn depth(&self, id: NodeId) -> usize {
        let mut depth = 0;
        let mut cur = id;
        let mut guard = 0;
        while let Some(&p) = self.node(cur).parents.first() {
            depth += 1;
            cur = p;
            guard += 1;
            assert!(
                guard <= self.len(),
                "cycle detected while computing depth of {id}"
            );
        }
        depth
    }

    /// One root-to-node call path (via first parents).
    pub fn path_to(&self, id: NodeId) -> Vec<NodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(&p) = self.node(cur).parents.first() {
            path.push(p);
            cur = p;
            assert!(path.len() <= self.len(), "cycle detected in path_to({id})");
        }
        path.reverse();
        path
    }

    /// Every root-to-leaf path (paths enumerated over child edges; nodes
    /// with multiple parents appear on multiple paths).
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut stack: Vec<Vec<NodeId>> = self.roots.iter().map(|&r| vec![r]).collect();
        while let Some(path) = stack.pop() {
            let last = *path.last().expect("non-empty path");
            let children = self.node(last).children();
            if children.is_empty() {
                out.push(path);
            } else {
                for &c in children.iter().rev() {
                    if path.contains(&c) {
                        continue; // defensive: never loop on malformed input
                    }
                    let mut next = path.clone();
                    next.push(c);
                    stack.push(next);
                }
            }
        }
        out
    }

    /// `true` if every non-root node has exactly one parent and every node
    /// is reachable from a root.
    pub fn is_tree(&self) -> bool {
        let reach: HashSet<NodeId> = self.preorder().into_iter().collect();
        reach.len() == self.len()
            && self.nodes.iter().enumerate().all(|(i, n)| {
                let is_root = self.roots.contains(&NodeId(i as u32));
                (is_root && n.parents.is_empty()) || (!is_root && n.parents.len() == 1)
            })
    }

    /// Map from frame to all node ids carrying it (frames are unique per
    /// *sibling set*, not globally — e.g. `MPI_Allreduce` under many
    /// parents).
    pub fn nodes_by_frame(&self) -> HashMap<&Frame, Vec<NodeId>> {
        let mut m: HashMap<&Frame, Vec<NodeId>> = HashMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            m.entry(&n.frame).or_default().push(NodeId(i as u32));
        }
        m
    }

    /// First node (in pre-order) whose name equals `name`.
    pub fn find_by_name(&self, name: &str) -> Option<NodeId> {
        self.preorder()
            .into_iter()
            .find(|&id| self.node(id).name() == name)
    }

    /// All node ids whose name satisfies `pred`, in pre-order.
    pub fn find_all<F: Fn(&Node) -> bool>(&self, pred: F) -> Vec<NodeId> {
        self.preorder()
            .into_iter()
            .filter(|&id| pred(self.node(id)))
            .collect()
    }

    /// Build the subgraph induced by `keep`, preserving ancestry: a kept
    /// node's parent in the new graph is its nearest kept ancestor.
    /// Returns the new graph and the old→new id mapping. This implements
    /// the query language's "filtered call tree" result (Figure 8).
    pub fn induced_subgraph(&self, keep: &HashSet<NodeId>) -> (Graph, HashMap<NodeId, NodeId>) {
        let mut out = Graph::new();
        let mut map: HashMap<NodeId, NodeId> = HashMap::new();
        // Walk in pre-order so ancestors are mapped before descendants.
        for id in self.preorder() {
            if !keep.contains(&id) {
                continue;
            }
            // Nearest kept ancestor along first-parent chain.
            let mut anc = self.node(id).parents.first().copied();
            while let Some(a) = anc {
                if map.contains_key(&a) {
                    break;
                }
                anc = self.node(a).parents.first().copied();
            }
            let new_id = match anc.and_then(|a| map.get(&a)) {
                Some(&p) => out.add_child(p, self.node(id).frame().clone()),
                None => out.add_root(self.node(id).frame().clone()),
            };
            map.insert(id, new_id);
        }
        (out, map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// MAIN -> {FOO -> {BAZ}, BAR}
    fn sample() -> (Graph, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("MAIN"));
        let foo = g.add_child(main, Frame::named("FOO"));
        let bar = g.add_child(main, Frame::named("BAR"));
        let baz = g.add_child(foo, Frame::named("BAZ"));
        (g, main, foo, bar, baz)
    }

    #[test]
    fn construction_and_edges() {
        let (g, main, foo, bar, baz) = sample();
        assert_eq!(g.len(), 4);
        assert_eq!(g.roots(), &[main]);
        assert_eq!(g.node(main).children(), &[foo, bar]);
        assert_eq!(g.node(baz).parents(), &[foo]);
        assert!(g.is_tree());
    }

    #[test]
    fn preorder_visits_depth_first() {
        let (g, main, foo, bar, baz) = sample();
        assert_eq!(g.preorder(), vec![main, foo, baz, bar]);
    }

    #[test]
    fn depth_and_paths() {
        let (g, main, foo, _bar, baz) = sample();
        assert_eq!(g.depth(main), 0);
        assert_eq!(g.depth(baz), 2);
        assert_eq!(g.path_to(baz), vec![main, foo, baz]);
        let paths = g.root_to_leaf_paths();
        assert_eq!(paths.len(), 2);
        assert!(paths.contains(&vec![main, foo, baz]));
    }

    #[test]
    fn dag_edges() {
        let (mut g, _main, foo, bar, baz) = sample();
        g.add_edge(bar, baz);
        assert!(!g.is_tree());
        assert_eq!(g.node(baz).parents(), &[foo, bar]);
        // Duplicate edge is a no-op.
        g.add_edge(bar, baz);
        assert_eq!(g.node(bar).children().len(), 1);
        // Pre-order still visits each node once.
        assert_eq!(g.preorder().len(), 4);
    }

    #[test]
    #[should_panic(expected = "self-edges")]
    fn self_edge_panics() {
        let (mut g, main, ..) = sample();
        g.add_edge(main, main);
    }

    #[test]
    fn frame_lookup() {
        let (g, main, foo, ..) = sample();
        assert_eq!(g.child_with_frame(main, &Frame::named("FOO")), Some(foo));
        assert_eq!(g.child_with_frame(main, &Frame::named("NOPE")), None);
        assert_eq!(g.root_with_frame(&Frame::named("MAIN")), Some(main));
        assert_eq!(g.find_by_name("BAZ"), Some(NodeId(3)));
        assert_eq!(g.find_by_name("NOPE"), None);
    }

    #[test]
    fn find_all_matches() {
        let (g, ..) = sample();
        let hits = g.find_all(|n| n.name().starts_with("B"));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn induced_subgraph_bridges_gaps() {
        let (g, main, _foo, _bar, baz) = sample();
        // Keep MAIN and BAZ: BAZ's kept parent becomes MAIN (FOO dropped).
        let keep: HashSet<NodeId> = [main, baz].into_iter().collect();
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.len(), 2);
        let new_baz = map[&baz];
        assert_eq!(sub.node(new_baz).name(), "BAZ");
        assert_eq!(sub.path_to(new_baz).len(), 2);
        assert!(sub.is_tree());
    }

    #[test]
    fn induced_subgraph_orphan_becomes_root() {
        let (g, _main, foo, ..) = sample();
        let keep: HashSet<NodeId> = [foo].into_iter().collect();
        let (sub, map) = g.induced_subgraph(&keep);
        assert_eq!(sub.roots().len(), 1);
        assert_eq!(sub.node(map[&foo]).name(), "FOO");
    }

    #[test]
    fn multi_root_graphs() {
        let mut g = Graph::new();
        let a = g.add_root(Frame::named("A"));
        let b = g.add_root(Frame::named("B"));
        assert_eq!(g.roots(), &[a, b]);
        assert_eq!(g.preorder(), vec![a, b]);
        assert!(g.is_tree());
    }
}
