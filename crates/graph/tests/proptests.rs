//! Property-based tests for graph construction and union.

use proptest::prelude::*;
use thicket_graph::{Frame, Graph, GraphUnion};

/// Build a random tree from a parent-pointer vector: node i's parent is
/// `parents[i] % i` (node 0 is the root). Names are drawn from a small
/// alphabet so unions overlap.
fn tree_from(parents: &[usize], names: &[u8]) -> Graph {
    let mut g = Graph::new();
    let mut ids = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let name = format!("f{}", names[i % names.len()] % 8);
        let id = if i == 0 {
            g.add_root(Frame::named(&name))
        } else {
            g.add_child(ids[p % i], Frame::named(&name))
        };
        ids.push(id);
    }
    g
}

fn tree_strategy() -> impl Strategy<Value = Graph> {
    (
        proptest::collection::vec(any::<usize>(), 1..30),
        proptest::collection::vec(any::<u8>(), 1..8),
    )
        .prop_map(|(parents, names)| tree_from(&parents, &names))
}

/// Canonical multiset of (path-of-names) for structural comparison.
fn path_signature(g: &Graph) -> Vec<Vec<String>> {
    let mut sigs: Vec<Vec<String>> = g
        .preorder()
        .into_iter()
        .map(|id| {
            g.path_to(id)
                .into_iter()
                .map(|n| g.node(n).name().to_string())
                .collect()
        })
        .collect();
    sigs.sort();
    sigs
}

proptest! {
    /// Random trees are valid trees with a full pre-order.
    #[test]
    fn generated_trees_are_trees(g in tree_strategy()) {
        prop_assert!(g.is_tree());
        prop_assert_eq!(g.preorder().len(), g.len());
    }

    /// depth(node) == path_to(node).len() - 1 everywhere.
    #[test]
    fn depth_matches_path(g in tree_strategy()) {
        for id in g.preorder() {
            prop_assert_eq!(g.depth(id) + 1, g.path_to(id).len());
        }
    }

    /// Union with self changes nothing (idempotence).
    #[test]
    fn union_idempotent(g in tree_strategy()) {
        let u = GraphUnion::build(&[&g, &g]);
        prop_assert_eq!(u.graph.len(), GraphUnion::build(&[&g]).graph.len());
        prop_assert_eq!(path_signature(&u.graph), path_signature(&GraphUnion::build(&[&g]).graph));
    }

    /// Union is commutative up to structure (path signatures match).
    #[test]
    fn union_commutative(a in tree_strategy(), b in tree_strategy()) {
        let ab = GraphUnion::build(&[&a, &b]);
        let ba = GraphUnion::build(&[&b, &a]);
        prop_assert_eq!(path_signature(&ab.graph), path_signature(&ba.graph));
    }

    /// The indexed matcher agrees with the naive reference implementation.
    #[test]
    fn union_indexed_matches_naive(a in tree_strategy(), b in tree_strategy()) {
        let fast = GraphUnion::build(&[&a, &b]);
        let slow = GraphUnion::build_naive(&[&a, &b]);
        prop_assert_eq!(path_signature(&fast.graph), path_signature(&slow.graph));
        prop_assert_eq!(fast.intersection().len(), slow.intersection().len());
    }

    /// Every input node maps to a unified node with the same frame and the
    /// same root-to-node name path.
    #[test]
    fn union_preserves_paths(a in tree_strategy(), b in tree_strategy()) {
        let u = GraphUnion::build(&[&a, &b]);
        for (g, map) in [(&a, &u.mappings[0]), (&b, &u.mappings[1])] {
            for id in g.preorder() {
                let new = map[&id];
                let old_path: Vec<&str> =
                    g.path_to(id).into_iter().map(|n| g.node(n).name()).collect();
                let new_path: Vec<&str> =
                    u.graph.path_to(new).into_iter().map(|n| u.graph.node(n).name()).collect();
                prop_assert_eq!(old_path, new_path);
            }
        }
    }

    /// The intersection of [g, g] is all of g's unified nodes; for [a, b]
    /// it is no larger than the smaller graph.
    #[test]
    fn intersection_bounds(a in tree_strategy(), b in tree_strategy()) {
        let self_u = GraphUnion::build(&[&a, &a]);
        prop_assert_eq!(self_u.intersection().len(), self_u.graph.len());
        let u = GraphUnion::build(&[&a, &b]);
        prop_assert!(u.intersection().len() <= a.len().min(b.len()));
    }

    /// Induced subgraph over all nodes reproduces the structure.
    #[test]
    fn induced_full_subgraph_is_identity(g in tree_strategy()) {
        let keep: std::collections::HashSet<_> = g.preorder().into_iter().collect();
        let (sub, _) = g.induced_subgraph(&keep);
        prop_assert_eq!(path_signature(&sub), path_signature(&g));
    }
}
