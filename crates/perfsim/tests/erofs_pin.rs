//! Regression test for the EROFS degraded-pinning path: `open_pinned`
//! on a read-only store must fall back to held-handles-only pinning —
//! no lease file, no error — because a medium no one can write to is a
//! medium no GC can run against either.
//!
//! The read-only medium is provoked through the `THICKET_FAULT_EROFS`
//! injection seam (see `store/lease.rs`): tests run as root, so
//! permission bits cannot produce the real EROFS, and mounting a
//! filesystem inside a test is not an option. This file stays a
//! single-test binary on purpose — the env var is process-global, and
//! sibling tests in the same process would inherit it.

use std::path::PathBuf;
use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Store};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-erofs-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn open_pinned_on_read_only_store_degrades_to_handles_only() {
    let dir = tmp("pin");
    let profiles: Vec<_> = (0..3)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect();
    Store::save(&dir, &profiles).unwrap();

    // With every lease write failing EROFS, the pin must degrade, not
    // error: a handle-only snapshot that still serves complete reads.
    std::env::set_var("THICKET_FAULT_EROFS", "1");
    let snap = Store::open_pinned(&dir).expect("EROFS must degrade, not fail");
    assert!(!snap.leased(), "read-only medium cannot carry a lease");
    assert_eq!(snap.lease_file(), None);
    let (loaded, rep) = snap.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(loaded.len(), 3);
    // No pin file may have touched the directory.
    let pins = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("pin-"))
        .count();
    assert_eq!(pins, 0, "degraded pin left a lease file");
    drop(snap);

    // Seam off: the same store pins with a lease again — the
    // degradation is the *medium's* property, not the store's.
    std::env::remove_var("THICKET_FAULT_EROFS");
    let snap = Store::open_pinned(&dir).unwrap();
    assert!(snap.leased());
    assert!(dir.join(snap.lease_file().unwrap()).exists());
    drop(snap);
    std::fs::remove_dir_all(dir).ok();
}
