//! End-to-end fault-injection suite over the ensemble loader: a
//! directory of N healthy profiles plus one injected fault of every
//! kind must load exactly the healthy subset, emit one typed diagnostic
//! per fault, and produce byte-identical reports for any worker-thread
//! count. Strict mode must identify the offending path and never panic.

use std::path::PathBuf;
use thicket_perfsim::faults::{inject_all, FaultKind};
use thicket_perfsim::{
    load_dir, save_ensemble, simulate_cpu_run, CpuRunConfig, DiagKind, Store, StoreOptions,
    Strictness,
};

const HEALTHY: u64 = 8;

fn corrupted_dir(name: &str, seed: u64) -> (PathBuf, Vec<(FaultKind, PathBuf)>) {
    let dir = std::env::temp_dir().join(format!("thicket-faults-e2e-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let profiles: Vec<_> = (0..HEALTHY)
        .map(|s| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = s;
            simulate_cpu_run(&cfg)
        })
        .collect();
    save_ensemble(&dir, &profiles).unwrap();
    let faults = inject_all(&dir, seed).unwrap();
    (dir, faults)
}

#[test]
fn mixed_health_dir_loads_healthy_subset_identically_across_threads() {
    let (dir, faults) = corrupted_dir("mixed", 11);
    // 5 corrupting faults knock out 5 of the 8 originals; duplicate and
    // unreadable add 2 more unhealthy entries on top.
    let corrupted = faults
        .iter()
        .filter(|(k, _)| !matches!(k, FaultKind::DuplicateProfile | FaultKind::Unreadable))
        .count();
    let expected_profiles = HEALTHY as usize - corrupted;
    let expected_diags = faults.len();

    let mut reports = Vec::new();
    for threads in [1, 2, 8] {
        let (profiles, report) =
            load_dir(&dir, Some(threads), Strictness::lenient()).unwrap();
        assert_eq!(profiles.len(), expected_profiles, "threads={threads}");
        assert_eq!(report.dropped(), expected_diags, "threads={threads}");
        assert_eq!(report.loaded, expected_profiles);
        assert_eq!(
            report.attempted,
            HEALTHY as usize + 2,
            "originals + duplicate + unreadable"
        );
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "threads 1 vs 2");
    assert_eq!(reports[1], reports[2], "threads 2 vs 8");

    // Every injected fault kind surfaced as its own typed diagnostic at
    // the path it was injected at.
    let report = &reports[0];
    for (kind, path) in &faults {
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.source == path.display().to_string())
            .unwrap_or_else(|| panic!("{kind:?}: no diagnostic for {}", path.display()));
        assert!(
            kind.matches(&diag.kind),
            "{kind:?} surfaced as {:?}",
            diag.kind
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn strict_mode_identifies_offending_path_without_panicking() {
    let (dir, faults) = corrupted_dir("strict", 3);
    for threads in [1, 2, 8] {
        let err = load_dir(&dir, None, Strictness::FailFast).map(|_| ()).unwrap_err();
        let msg = err.to_string();
        // The failing source is named; which fault wins is path order,
        // but it must be one of the injected ones.
        assert!(
            faults.iter().any(|(_, p)| msg.contains(&p.display().to_string())),
            "threads={threads}: error does not name an injected path: {msg}"
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn fail_fast_strictness_matches_strict_loader() {
    let (dir, _) = corrupted_dir("failfast", 5);
    let strict = load_dir(&dir, None, Strictness::FailFast).map(|_| ()).unwrap_err();
    let opts = load_dir(&dir, Some(2), Strictness::FailFast)
        .map(|_| ())
        .unwrap_err();
    assert_eq!(strict.to_string(), opts.to_string());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn max_errors_budget_escalates_to_hard_error() {
    let (dir, faults) = corrupted_dir("budget", 7);
    // Budget below the fault count: hard error.
    let r = load_dir(&dir, Some(2), Strictness::Lenient { max_errors: 2 });
    assert!(r.is_err(), "{} faults must blow a budget of 2", faults.len());
    // Budget at the fault count: fine.
    let r = load_dir(
        &dir,
        Some(2),
        Strictness::Lenient {
            max_errors: faults.len(),
        },
    );
    assert!(r.is_ok());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn diagnostics_are_path_ordered() {
    let (dir, _) = corrupted_dir("order", 13);
    let (_, report) = load_dir(&dir, Some(8), Strictness::lenient()).unwrap();
    let sources: Vec<&String> = report.diagnostics.iter().map(|d| &d.source).collect();
    let mut sorted = sources.clone();
    sorted.sort();
    assert_eq!(sources, sorted);
    // And the parse diagnostics carry a usable byte offset.
    assert!(report
        .diagnostics
        .iter()
        .any(|d| matches!(d.kind, DiagKind::Parse { .. })));
    std::fs::remove_dir_all(dir).ok();
}

/// A v3 store with one record per shard: plenty of distinct victims.
fn v3_store(name: &str, n: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-faults-v3-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    let profiles: Vec<_> = (0..n)
        .map(|s| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = s;
            simulate_cpu_run(&cfg)
        })
        .collect();
    let opts = StoreOptions {
        shard_bytes: 1,
        ..StoreOptions::default()
    };
    Store::save_opts(&dir, &profiles, &opts).unwrap();
    dir
}

/// The v3 payload corruptors re-frame the record so every checksum
/// verifies; the damage must still classify under deep fsck, drop
/// exactly the poisoned record (typed) on a lenient load, and recover
/// into one clean generation holding the healthy remainder.
#[test]
fn v3_payload_faults_classify_end_to_end() {
    use thicket_perfsim::faults::inject;

    for (i, kind) in FaultKind::STORE_V3.iter().enumerate() {
        let dir = v3_store(&format!("kind-{i}"), 4);
        inject(&dir, *kind, 9).unwrap();

        // Deep fsck decodes every payload and pins the poisoned record.
        let fsck = Store::fsck(&dir).unwrap();
        assert!(!fsck.is_clean(), "{kind:?} left a clean store");
        assert!(
            fsck.findings().any(|d| kind.matches(&d.kind)),
            "{kind:?} not classified: {fsck}"
        );

        // A lenient load survives: three healthy profiles, one typed
        // diagnostic, no panic and no over-allocation.
        let (profiles, rep) = Store::open(&dir).unwrap().load_all().unwrap();
        assert_eq!(profiles.len(), 3, "{kind:?}");
        assert_eq!(rep.dropped(), 1, "{kind:?}: {rep}");
        assert!(
            rep.diagnostics.iter().any(|d| kind.matches(&d.kind)),
            "{kind:?} surfaced as {rep}"
        );

        // Recovery salvages the healthy records into a clean store.
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.salvaged, 3, "{kind:?}");
        assert!(
            rec.report.diagnostics.iter().any(|d| kind.matches(&d.kind)),
            "{kind:?} lost in recovery: {}",
            rec.report
        );
        assert!(Store::fsck(&dir).unwrap().is_clean(), "{kind:?}");
        let (reloaded, rep) = Store::open(&dir).unwrap().load_all().unwrap();
        assert_eq!(reloaded.len(), 3, "{kind:?}");
        assert!(rep.is_clean(), "{kind:?}: {rep}");
        std::fs::remove_dir_all(dir).ok();
    }
}
