//! Property tests for the sharded store: a single flipped bit anywhere
//! in any shard file is always caught — fsck reports the damage, and
//! the reader never serves a silently-wrong profile.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Store, StoreOptions};

static BASE: OnceLock<(PathBuf, Vec<i64>)> = OnceLock::new();
static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// One store, built once: four profiles, one record per shard.
fn base_store() -> &'static (PathBuf, Vec<i64>) {
    BASE.get_or_init(|| {
        let dir = std::env::temp_dir().join("thicket-storeprops-base");
        let _ = std::fs::remove_dir_all(&dir);
        let profiles: Vec<_> = (0..4)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let opts = StoreOptions {
            shard_bytes: 1,
            ..StoreOptions::default()
        };
        Store::save_opts(&dir, &profiles, &opts).unwrap();
        let hashes = profiles.iter().map(|p| p.profile_hash()).collect();
        (dir, hashes)
    })
}

/// Copy the base store into a fresh scratch directory.
fn scratch_copy(base: &PathBuf) -> PathBuf {
    let id = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("thicket-storeprops-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(base).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

proptest! {
    /// CRC32C catches every single-bit error: whatever bit of whatever
    /// shard file is flipped, fsck flags the store, and a subsequent
    /// load returns only byte-correct profiles (each dropped record is
    /// accounted for with a diagnostic — never silently wrong data).
    #[test]
    fn single_bit_flip_in_a_shard_is_always_caught(
        shard_sel in any::<u32>(),
        byte_sel in any::<u32>(),
        bit in 0u8..8,
    ) {
        let (base, original_hashes) = base_store();
        let dir = scratch_copy(base);

        let mut shards: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tks"))
            .collect();
        shards.sort();
        let victim = &shards[shard_sel as usize % shards.len()];
        let path = dir.join(victim);
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = byte_sel as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // fsck always sees the damage (the per-shard digest covers
        // every byte of the file, framing and padding included).
        let fsck = Store::fsck(&dir).unwrap();
        prop_assert!(!fsck.is_clean(), "flip {victim}[{idx}] bit {bit} undetected: {fsck}");

        // The reader never serves a wrong profile: whatever loads is
        // one of the originals, and every missing record has a typed
        // diagnostic.
        let reader = Store::open(&dir).unwrap();
        let (profiles, report) = reader.load_all().unwrap();
        prop_assert_eq!(report.attempted, original_hashes.len());
        prop_assert_eq!(
            profiles.len() + report.diagnostics.len(),
            original_hashes.len(),
            "unaccounted records: {}", report
        );
        for p in &profiles {
            prop_assert!(
                original_hashes.contains(&p.profile_hash()),
                "loaded a profile that was never stored (hash {})",
                p.profile_hash()
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

// ---------------------------------------------------------------------
// Columnar selection ≡ row selection for arbitrary predicates.

use thicket_dataframe::Value;
use thicket_perfsim::{CmpOp, MetaPred};

/// Keys that exist in the simulated profiles' metadata plus one that
/// never does (missing-key semantics must agree too).
fn key_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("seed".to_string()),
        Just("cluster".to_string()),
        Just("problem size".to_string()),
        Just("no-such-key".to_string()),
    ]
}

/// Values spanning the kinds the evaluator distinguishes: ints in and
/// out of the stored range, floats (numeric promotion), strings, bools.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1i64..6).prop_map(Value::Int),
        (-1.0f64..6.0).prop_map(Value::Float),
        prop_oneof![
            Just(Value::from("quartz")),
            Just(Value::from("lassen")),
        ],
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Arbitrary predicate ASTs: leaves over the key/value pools, combined
/// with And/Or/Not up to depth 3.
fn pred_strategy() -> impl Strategy<Value = MetaPred> {
    let leaf = prop_oneof![
        Just(MetaPred::True),
        (key_strategy(), value_strategy()).prop_map(|(k, v)| MetaPred::eq(k, v)),
        (key_strategy(), cmp_strategy(), value_strategy())
            .prop_map(|(k, op, v)| MetaPred::Cmp(k, op, v)),
        (key_strategy(), proptest::collection::vec(value_strategy(), 0..3))
            .prop_map(|(k, vs)| MetaPred::is_in(k, vs)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(MetaPred::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(MetaPred::Or),
            inner.prop_map(|p| p.not()),
        ]
    })
}

proptest! {
    /// The v2 columnar index path (`StoreReader::select`, which decodes
    /// only the key blocks the predicate names) selects exactly the
    /// rows that evaluating the predicate against each materialized
    /// manifest entry selects — for arbitrary predicate shapes.
    #[test]
    fn columnar_selection_equals_row_selection(pred in pred_strategy()) {
        let (base, _) = base_store();
        let reader = Store::open(base).unwrap();

        let columnar = reader.select(&pred).unwrap();
        let by_rows: Vec<usize> = reader
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| pred.eval_with(&mut |k| e.meta(k)))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(
            columnar, by_rows,
            "columnar and row selection disagree for {}", pred
        );
    }
}
