//! Property tests for the sharded store: a single flipped bit anywhere
//! in any shard file is always caught — fsck reports the damage, and
//! the reader never serves a silently-wrong profile. A manifest whose
//! declared record lengths/offsets are rewritten to arbitrary (possibly
//! huge) values never over-allocates or panics, and recovery always
//! restores one complete generation.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Store, StoreOptions};

static BASE: OnceLock<(PathBuf, Vec<i64>)> = OnceLock::new();
static SCRATCH: AtomicUsize = AtomicUsize::new(0);

/// One store, built once: four profiles, one record per shard.
fn base_store() -> &'static (PathBuf, Vec<i64>) {
    BASE.get_or_init(|| {
        let dir = std::env::temp_dir().join("thicket-storeprops-base");
        let _ = std::fs::remove_dir_all(&dir);
        let profiles: Vec<_> = (0..4)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let opts = StoreOptions {
            shard_bytes: 1,
            ..StoreOptions::default()
        };
        Store::save_opts(&dir, &profiles, &opts).unwrap();
        let hashes = profiles.iter().map(|p| p.profile_hash()).collect();
        (dir, hashes)
    })
}

/// Copy the base store into a fresh scratch directory.
fn scratch_copy(base: &PathBuf) -> PathBuf {
    let id = SCRATCH.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("thicket-storeprops-{id}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(base).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

proptest! {
    /// CRC32C catches every single-bit error: whatever bit of whatever
    /// shard file is flipped, fsck flags the store, and a subsequent
    /// load returns only byte-correct profiles (each dropped record is
    /// accounted for with a diagnostic — never silently wrong data).
    #[test]
    fn single_bit_flip_in_a_shard_is_always_caught(
        shard_sel in any::<u32>(),
        byte_sel in any::<u32>(),
        bit in 0u8..8,
    ) {
        let (base, original_hashes) = base_store();
        let dir = scratch_copy(base);

        let mut shards: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tks"))
            .collect();
        shards.sort();
        let victim = &shards[shard_sel as usize % shards.len()];
        let path = dir.join(victim);
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = byte_sel as usize % bytes.len();
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        // fsck always sees the damage (the per-shard digest covers
        // every byte of the file, framing and padding included).
        let fsck = Store::fsck(&dir).unwrap();
        prop_assert!(!fsck.is_clean(), "flip {victim}[{idx}] bit {bit} undetected: {fsck}");

        // The reader never serves a wrong profile: whatever loads is
        // one of the originals, and every missing record has a typed
        // diagnostic.
        let reader = Store::open(&dir).unwrap();
        let (profiles, report) = reader.load_all().unwrap();
        prop_assert_eq!(report.attempted, original_hashes.len());
        prop_assert_eq!(
            profiles.len() + report.diagnostics.len(),
            original_hashes.len(),
            "unaccounted records: {}", report
        );
        for p in &profiles {
            prop_assert!(
                original_hashes.contains(&p.profile_hash()),
                "loaded a profile that was never stored (hash {})",
                p.profile_hash()
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

// ---------------------------------------------------------------------
// Columnar selection ≡ row selection for arbitrary predicates.

use thicket_dataframe::Value;
use thicket_perfsim::{CmpOp, MetaPred};

/// Keys that exist in the simulated profiles' metadata plus one that
/// never does (missing-key semantics must agree too).
fn key_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("seed".to_string()),
        Just("cluster".to_string()),
        Just("problem size".to_string()),
        Just("no-such-key".to_string()),
    ]
}

/// Values spanning the kinds the evaluator distinguishes: ints in and
/// out of the stored range, floats (numeric promotion), strings, bools.
fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1i64..6).prop_map(Value::Int),
        (-1.0f64..6.0).prop_map(Value::Float),
        prop_oneof![
            Just(Value::from("quartz")),
            Just(Value::from("lassen")),
        ],
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Arbitrary predicate ASTs: leaves over the key/value pools, combined
/// with And/Or/Not up to depth 3.
fn pred_strategy() -> impl Strategy<Value = MetaPred> {
    let leaf = prop_oneof![
        Just(MetaPred::True),
        (key_strategy(), value_strategy()).prop_map(|(k, v)| MetaPred::eq(k, v)),
        (key_strategy(), cmp_strategy(), value_strategy())
            .prop_map(|(k, op, v)| MetaPred::Cmp(k, op, v)),
        (key_strategy(), proptest::collection::vec(value_strategy(), 0..3))
            .prop_map(|(k, vs)| MetaPred::is_in(k, vs)),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(MetaPred::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(MetaPred::Or),
            inner.prop_map(|p| p.not()),
        ]
    })
}

proptest! {
    /// The v2 columnar index path (`StoreReader::select`, which decodes
    /// only the key blocks the predicate names) selects exactly the
    /// rows that evaluating the predicate against each materialized
    /// manifest entry selects — for arbitrary predicate shapes.
    #[test]
    fn columnar_selection_equals_row_selection(pred in pred_strategy()) {
        let (base, _) = base_store();
        let reader = Store::open(base).unwrap();

        let columnar = reader.select(&pred).unwrap();
        let by_rows: Vec<usize> = reader
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| pred.eval_with(&mut |k| e.meta(k)))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(
            columnar, by_rows,
            "columnar and row selection disagree for {}", pred
        );
    }
}


// ---------------------------------------------------------------------
// Corrupt declared lengths: the headline hardening property.

use thicket_perfsim::{crc32c, Json};

/// Rewrite one numeric field of one `profiles` entry in the newest
/// manifest, recomputing the manifest's self-CRC so the reader has to
/// confront the lie instead of rejecting the file wholesale.
fn rewrite_manifest_entry(dir: &PathBuf, entry_sel: u32, field: &str, value: f64) {
    let mut manifests: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with("MANIFEST-"))
        })
        .collect();
    manifests.sort();
    let mpath = manifests.last().unwrap().clone();
    let bytes = std::fs::read(&mpath).unwrap();
    let body = std::str::from_utf8(&bytes[13..]).unwrap();
    let mut doc = Json::parse(body).unwrap();
    {
        let Json::Obj(members) = &mut doc else { panic!("manifest body not an object") };
        let profiles = members
            .iter_mut()
            .find(|(k, _)| k == "profiles")
            .map(|(_, v)| v)
            .unwrap();
        let Json::Arr(entries) = profiles else { panic!("profiles not an array") };
        let victim = entry_sel as usize % entries.len();
        let e = &mut entries[victim];
        let Json::Obj(fields) = e else { panic!("entry not an object") };
        let slot = fields
            .iter_mut()
            .find(|(k, _)| k == field)
            .map(|(_, v)| v)
            .unwrap();
        *slot = Json::Num(value);
    }
    let new_body = doc.to_string_compact();
    let mut out = Vec::with_capacity(new_body.len() + 13);
    out.extend_from_slice(&bytes[..4]);
    out.extend_from_slice(format!("{:08x}", crc32c(new_body.as_bytes())).as_bytes());
    out.push(b'\n');
    out.extend_from_slice(new_body.as_bytes());
    std::fs::write(&mpath, &out).unwrap();
}

proptest! {
    /// Whatever record length (or offset) the manifest declares —
    /// including multi-gigabyte lies the file cannot possibly hold —
    /// the reader validates it against the real file size *before*
    /// allocating or slicing: every outcome is a typed error or
    /// diagnostic, never an OOM, panic, or silently-wrong profile, and
    /// `Store::recover` always restores exactly one complete
    /// generation holding every original record.
    #[test]
    fn corrupt_declared_lengths_never_allocate_or_panic(
        entry_sel in any::<u32>(),
        lie in any::<u32>(),
        target_offset in any::<bool>(),
    ) {
        let (base, original_hashes) = base_store();
        let dir = scratch_copy(base);
        let field = if target_offset { "offset" } else { "len" };
        rewrite_manifest_entry(&dir, entry_sel, field, lie as f64);

        // Opening + loading never panics; whatever loads is one of the
        // originals and every missing record carries a diagnostic.
        match Store::open(&dir) {
            Ok(reader) => {
                let (profiles, report) = reader.load_all().unwrap();
                prop_assert_eq!(
                    profiles.len() + report.diagnostics.len(),
                    original_hashes.len(),
                    "unaccounted records: {}", report
                );
                for p in &profiles {
                    prop_assert!(original_hashes.contains(&p.profile_hash()));
                }
            }
            Err(e) => {
                // Typed rejection (the parse-time range validation).
                let msg = e.to_string();
                prop_assert!(!msg.is_empty());
            }
        }
        // fsck classifies without panicking, and recovery restores one
        // complete generation: the shard bytes were never touched, so
        // every original record comes back.
        let _ = Store::fsck(&dir).unwrap();
        let rec = Store::recover(&dir).unwrap();
        prop_assert!(Store::fsck(&dir).unwrap().is_clean(), "recover left dirt: {:?}", rec);
        let (restored, report) = Store::open(&dir).unwrap().load_all().unwrap();
        prop_assert!(report.is_clean(), "{}", report);
        let mut got: Vec<i64> = restored.iter().map(|p| p.profile_hash()).collect();
        got.sort_unstable();
        let mut want = original_hashes.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        std::fs::remove_dir_all(dir).ok();
    }
}

// ---------------------------------------------------------------------
// v2 (JSON payloads) and v3 (binary payloads) loads are bit-identical.

use thicket_perfsim::ManifestVersion;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The same ensemble saved under v2 (JSON payloads) and v3 (binary
    /// payloads) loads back bit-identically: every profile's canonical
    /// JSON rendering — metadata, frames, edges, metrics — matches
    /// byte for byte.
    #[test]
    fn v2_and_v3_payloads_decode_bit_identically(
        seeds in proptest::collection::hash_set(0u64..32, 1..5),
    ) {
        let mut seeds: Vec<u64> = seeds.into_iter().collect();
        seeds.sort_unstable();
        let profiles: Vec<_> = seeds
            .iter()
            .map(|&s| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = s;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let tag: String = seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join("-");
        let mut dirs = Vec::new();
        let mut rendered = Vec::new();
        for (name, version) in [("v2", ManifestVersion::V2), ("v3", ManifestVersion::V3)] {
            let dir = std::env::temp_dir().join(format!("thicket-storeprops-eq-{name}-{tag}"));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = StoreOptions { format: version, ..StoreOptions::default() };
            Store::save_opts(&dir, &profiles, &opts).unwrap();
            let (loaded, report) = Store::open(&dir).unwrap().load_all().unwrap();
            prop_assert!(report.is_clean(), "{name}: {report}");
            rendered.push(
                loaded.iter().map(|p| p.to_string_pretty()).collect::<Vec<_>>(),
            );
            dirs.push(dir);
        }
        prop_assert_eq!(&rendered[0], &rendered[1], "v2 and v3 loads diverge");
        for d in dirs {
            std::fs::remove_dir_all(d).ok();
        }
    }
}

// ---------------------------------------------------------------------
// Coordination files (LOCK / pin-*) under arbitrary garbage.

use std::time::Duration;
use thicket_perfsim::StoreError;

/// Backdate a file to the epoch so liveness windows see it as ancient.
fn age_to_epoch(path: &std::path::Path) {
    if let Ok(f) = std::fs::OpenOptions::new().append(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::UNIX_EPOCH);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary bytes in the coordination files never wedge a writer,
    /// never panic, and never cost a record. A *fresh* garbage `LOCK`
    /// reads as possibly-mid-write, so an impatient writer surfaces a
    /// typed [`StoreError::Busy`]; once aged past its liveness window
    /// the same garbage is classified stale and taken over. A
    /// dead-owner lease (pid 0 in the filename — the contents are
    /// irrelevant to the protocol) reads as stale immediately. fsck
    /// reports both as typed findings without touching the
    /// generations, and recovery reaps them and restores a clean,
    /// fully-loadable store.
    #[test]
    fn garbage_coordination_files_yield_typed_findings(
        lock_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        lease_bytes in proptest::collection::vec(any::<u8>(), 0..48),
        token in any::<u64>(),
    ) {
        let (base, original_hashes) = base_store();
        let dir = scratch_copy(base);

        std::fs::write(dir.join("LOCK"), &lock_bytes).unwrap();
        let impatient = StoreOptions {
            lock_timeout: Duration::from_millis(40),
            ..StoreOptions::default()
        };
        match Store::append_opts(&dir, &[], &impatient) {
            // Fresh garbage could be a lock body mid-write: waiting it
            // out and timing out with a typed error is the contract.
            Err(StoreError::Busy { .. }) => {}
            // ...unless the arbitrary bytes happened to parse as a
            // dead owner, in which case takeover is also legal.
            Ok(_) => {}
            Err(e) => prop_assert!(false, "append broke the protocol: {}", e),
        }

        // Aged garbage is stale; a dead-owner lease is stale at any age.
        age_to_epoch(&dir.join("LOCK"));
        let lease = format!("pin-000001-0-{token:016x}");
        std::fs::write(dir.join(&lease), &lease_bytes).unwrap();

        let fsck = Store::fsck(&dir).unwrap();
        prop_assert!(
            fsck.generations.iter().all(|g| g.intact),
            "coordination garbage damaged a generation: {}", fsck
        );
        prop_assert!(!fsck.is_clean(), "stale coordination files not flagged: {}", fsck);
        let labels: Vec<&str> = fsck.coordination.iter().map(|d| d.kind.label()).collect();
        prop_assert!(
            labels.iter().all(|l| *l == "stale-lock" || *l == "stale-lease"),
            "untyped coordination finding: {:?}", labels
        );
        prop_assert!(labels.contains(&"stale-lease"), "dead-owner lease not flagged: {:?}", labels);

        // Recovery reaps the garbage; the store is clean, writable
        // without waiting, and every original record survives.
        Store::recover(&dir).unwrap();
        prop_assert!(Store::fsck(&dir).unwrap().is_clean());
        Store::append_opts(&dir, &[], &impatient).unwrap();
        let (profiles, report) = Store::open(&dir).unwrap().load_all().unwrap();
        prop_assert!(report.is_clean(), "{}", report);
        let mut got: Vec<i64> = profiles.iter().map(|p| p.profile_hash()).collect();
        got.sort_unstable();
        let mut want = original_hashes.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        std::fs::remove_dir_all(dir).ok();
    }
}

proptest! {
    /// `MetaPred::to_expr` preserves semantics exactly: both engine
    /// paths — vectorized columnar selection and the scalar lookup
    /// walk — match the legacy `eval_with` row walk for arbitrary
    /// predicate shapes.
    #[test]
    fn to_expr_preserves_metapred_semantics(pred in pred_strategy()) {
        let (base, _) = base_store();
        let reader = Store::open(base).unwrap();
        let expr = pred.to_expr();

        let by_engine = reader.select_expr(&expr).unwrap();
        let legacy: Vec<usize> = reader
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| pred.eval_with(&mut |k| e.meta(k)))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(
            by_engine, legacy,
            "engine selection diverges from legacy for {}", pred
        );

        for e in reader.entries() {
            prop_assert_eq!(
                expr.eval_lookup(&mut |k| e.meta(k).cloned()),
                pred.eval_with(&mut |k| e.meta(k)),
                "scalar engine diverges from legacy for {}", pred
            );
        }
    }
}
