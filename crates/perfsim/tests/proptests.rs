//! Property tests: JSON round-trips, profile round-trips, and simulator
//! invariants.

use proptest::prelude::*;
use thicket_perfsim::json::Json;
use thicket_perfsim::{simulate_cpu_run, CpuRunConfig, Profile};
use thicket_graph::{Frame, Graph};

fn json_strategy() -> impl Strategy<Value = Json> {
    let leaf = prop_oneof![
        Just(Json::Null),
        any::<bool>().prop_map(Json::Bool),
        (-1e9f64..1e9).prop_map(|v| Json::Num((v * 1e3).round() / 1e3)),
        "[a-zA-Z0-9 _\\-\"\\\\\n\t]{0,12}".prop_map(Json::Str),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..5).prop_map(Json::Arr),
            proptest::collection::vec(("[a-z]{1,6}", inner), 0..5)
                .prop_map(|m| Json::Obj(m.into_iter().collect())),
        ]
    })
}

proptest! {
    /// Arbitrary JSON documents survive a write→parse round trip.
    #[test]
    fn json_roundtrip(v in json_strategy()) {
        let text = v.to_string_compact();
        let back = Json::parse(&text).unwrap();
        prop_assert_eq!(back, v);
    }

    /// Random trees with random metrics survive the profile round trip.
    #[test]
    fn profile_roundtrip(
        parents in proptest::collection::vec(any::<usize>(), 1..20),
        metrics in proptest::collection::vec((0usize..20, -1e6f64..1e6), 0..40),
        meta_val in -1e15f64..1e15,
    ) {
        let mut g = Graph::new();
        let mut ids = Vec::new();
        for (i, &p) in parents.iter().enumerate() {
            let id = if i == 0 {
                g.add_root(Frame::named(format!("n{i}")))
            } else {
                g.add_child(ids[p % i], Frame::named(format!("n{i}")))
            };
            ids.push(id);
        }
        let mut profile = Profile::new(g);
        profile.set_metadata("x", meta_val);
        profile.set_metadata("cluster", "prop");
        for (slot, v) in &metrics {
            let id = ids[slot % ids.len()];
            profile.set_metric(id, "m", (v * 1e3).round() / 1e3);
        }
        let text = profile.to_string_pretty();
        let back = Profile::parse(&text).unwrap();
        prop_assert_eq!(back.graph().len(), profile.graph().len());
        prop_assert_eq!(back.profile_hash(), profile.profile_hash());
        for id in profile.graph().ids() {
            prop_assert_eq!(back.metric(id, "m"), profile.metric(id, "m"));
        }
    }

    /// Simulated kernel times are positive and monotone in problem size.
    #[test]
    fn cpu_times_positive_and_monotone(scale in 1u64..16) {
        let mut small = CpuRunConfig::quartz_default();
        small.problem_size = 262_144 * scale;
        let mut big = small.clone();
        big.problem_size = small.problem_size * 4;
        let ps = simulate_cpu_run(&small);
        let pb = simulate_cpu_run(&big);
        for id in ps.graph().ids() {
            if let Some(t) = ps.metric(id, "time (exc)") {
                prop_assert!(t > 0.0);
                let name = ps.graph().node(id).name().to_string();
                let idb = pb.graph().find_by_name(&name).unwrap();
                prop_assert!(pb.metric(idb, "time (exc)").unwrap() > t * 1.5,
                    "{name}: 4x data should be well over 1.5x slower");
            }
        }
    }

    /// Top-down shares always form a distribution on every kernel.
    #[test]
    fn topdown_is_distribution(seed in any::<u64>()) {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.seed = seed;
        let p = simulate_cpu_run(&cfg);
        for id in p.graph().ids() {
            if let Some(r) = p.metric(id, "Retiring") {
                let sum = r
                    + p.metric(id, "Frontend bound").unwrap()
                    + p.metric(id, "Backend bound").unwrap()
                    + p.metric(id, "Bad speculation").unwrap();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(r > 0.0 && r < 1.0);
            }
        }
    }

    /// The parser never panics, whatever bytes it is fed — corrupt
    /// profiles must always land in a typed `Err`.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = Json::parse(&text);
        let _ = Profile::parse(&text);
    }

    /// Nor on single-byte corruptions of otherwise valid documents —
    /// the fault-injection shapes (truncation, byte flips) in bulk.
    #[test]
    fn parser_never_panics_on_mutated_documents(
        v in json_strategy(),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut text = v.to_string_compact().into_bytes();
        if !text.is_empty() {
            let i = pos % text.len();
            text[i] = byte;
            let s = String::from_utf8_lossy(&text);
            let _ = Json::parse(&s);
            // Truncation at the same point.
            let cut = String::from_utf8_lossy(&text[..i]);
            let _ = Json::parse(&cut);
        }
    }
}
