//! Live-contention suite: N readers × an appender × a compactor, one
//! process or several, against one store directory.
//!
//! The invariants under test are the concurrency model's load-bearing
//! promises (see `store/mod.rs`):
//!
//! * every reader always observes **exactly one complete generation**
//!   — a contiguous prefix of the appended profiles, never a mix of
//!   two commits, never a torn record;
//! * GC never collects a generation a live snapshot has pinned, even
//!   at `keep_generations: 0`;
//! * a writer killed with SIGKILL mid-commit leaves a store that
//!   `recover` returns to exactly one complete generation;
//! * the seeded chaos schedule (appends, compactions, injected writer
//!   crashes) linearizes: after every op the store serves either the
//!   pre-op or the post-op contents, nothing in between.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use thicket_perfsim::{
    contend, simulate_cpu_run, ChaosOp, ChaosSchedule, ContendTask, CpuRunConfig, Profile, Store,
    StoreError, StoreOptions,
};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-concurrency-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(seed: u64) -> Profile {
    let mut cfg = CpuRunConfig::quartz_default();
    cfg.seed = seed;
    simulate_cpu_run(&cfg)
}

/// Seeds observed in a loaded ensemble, sorted.
fn seeds(profiles: &[Profile]) -> Vec<i64> {
    let mut out: Vec<i64> = profiles
        .iter()
        .map(|p| match p.metadata("seed") {
            Some(v) => v.as_i64().expect("seed is an int"),
            None => panic!("profile without a seed"),
        })
        .collect();
    out.sort_unstable();
    out
}

/// Assert `profiles` are exactly the runs with seeds `0..n` for some
/// `n >= floor` — one complete generation, never a mix of two commits.
fn assert_contiguous_prefix(profiles: &[Profile], floor: usize) -> usize {
    let s = seeds(profiles);
    let expect: Vec<i64> = (0..s.len() as i64).collect();
    assert_eq!(s, expect, "observed seed set is not a contiguous prefix");
    assert!(
        s.len() >= floor,
        "observed {} profiles, store never shrinks below {floor}",
        s.len()
    );
    s.len()
}

/// The acceptance matrix: 8 reader threads loop pinned loads while an
/// appender commits 30 generations and a compactor ~25 more, all at
/// `keep_generations: 0` — the most hostile GC setting. Zero torn
/// reads, zero `NoGeneration` errors, and the final store holds every
/// appended profile.
#[test]
fn readers_never_tear_under_append_and_compact() {
    const READERS: usize = 8;
    const SEED_PROFILES: u64 = 4;
    const APPENDS: u64 = 30;
    const COMPACTS: usize = 25;

    let dir = tmp("matrix");
    let opts = StoreOptions {
        keep_generations: 0,
        ..StoreOptions::default()
    };
    let initial: Vec<Profile> = (0..SEED_PROFILES).map(run).collect();
    Store::save_opts(&dir, &initial, &opts).unwrap();

    let commits = AtomicUsize::new(1);
    let dir_ref = &dir;
    let opts_ref = &opts;
    let commits_ref = &commits;

    let appender: ContendTask<'_, usize> = Box::new(move |_: &AtomicBool| {
        for i in 0..APPENDS {
            let p = run(SEED_PROFILES + i);
            let rep = Store::append_opts(dir_ref, &[p], opts_ref).expect("append");
            assert_eq!(rep.appended, 1);
            commits_ref.fetch_add(1, Ordering::Relaxed);
        }
        APPENDS as usize
    });
    let compactor: ContendTask<'_, usize> = Box::new(move |_: &AtomicBool| {
        let mut done = 0;
        while done < COMPACTS {
            Store::compact_opts(dir_ref, opts_ref).expect("compact");
            commits_ref.fetch_add(1, Ordering::Relaxed);
            done += 1;
        }
        done
    });
    let readers: Vec<ContendTask<'_, usize>> = (0..READERS)
        .map(|_| {
            Box::new(move |stop: &AtomicBool| {
                let mut iterations = 0usize;
                let mut watermark = SEED_PROFILES as usize;
                while !stop.load(Ordering::Relaxed) {
                    // open_pinned retries the open/GC race internally;
                    // any error escaping here is a failed invariant.
                    let snap = Store::open_pinned(dir_ref).expect("open_pinned");
                    let (profiles, rep) = snap.load_all().expect("pinned load");
                    assert!(rep.is_clean(), "torn read: {rep}");
                    // Monotone within one reader: commits are ordered.
                    watermark = assert_contiguous_prefix(&profiles, watermark);
                    iterations += 1;
                }
                iterations
            }) as ContendTask<'_, usize>
        })
        .collect();

    let mut drivers = vec![appender, compactor];
    // Interleave order: drivers vec order is spawn order only.
    drivers.rotate_left(1);
    let (driver_results, reader_results) = contend(drivers, readers);

    for r in &driver_results {
        r.as_ref().expect("driver panicked");
    }
    let total_reads: usize = reader_results
        .iter()
        .map(|r| *r.as_ref().expect("reader panicked"))
        .sum();
    assert!(total_reads > 0, "readers never completed a single load");
    assert!(
        commits.load(Ordering::Relaxed) >= 50,
        "matrix did not reach 50 commits"
    );

    // Quiesced: everything appended is present, exactly once, and the
    // hostile GC left a clean single-generation store plus no leaked
    // coordination files.
    let (final_profiles, rep) = Store::open(&dir).unwrap().load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(
        assert_contiguous_prefix(&final_profiles, 0),
        (SEED_PROFILES + APPENDS) as usize
    );
    let fsck = Store::fsck(&dir).unwrap();
    assert!(fsck.is_clean(), "{fsck}");
    assert!(fsck.live_leases.is_empty(), "leaked leases: {fsck}");
    std::fs::remove_dir_all(dir).ok();
}

/// GC at `keep_generations: 0` must skip a generation a live snapshot
/// pinned — and collect it promptly once the pin drops.
#[test]
fn gc_respects_live_pins_across_many_commits() {
    let dir = tmp("pin-hold");
    let opts = StoreOptions {
        keep_generations: 0,
        ..StoreOptions::default()
    };
    let initial: Vec<Profile> = (0..3).map(run).collect();
    Store::save_opts(&dir, &initial, &opts).unwrap();
    let snap = Store::open_pinned(&dir).unwrap();
    assert!(snap.leased());
    for i in 0..10 {
        Store::append_opts(&dir, &[run(3 + i)], &opts).unwrap();
    }
    // Ten hostile commits later the pinned generation still reads.
    let (held, rep) = snap.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(assert_contiguous_prefix(&held, 3), 3);
    assert!(
        dir.join(snap.lease_file().unwrap()).exists(),
        "lease file vanished under a live pin"
    );
    drop(snap);
    // With the pin gone the next commit sweeps the old generation.
    Store::append_opts(&dir, &[run(13)], &opts).unwrap();
    let manifests = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("MANIFEST-"))
        .count();
    assert_eq!(manifests, 1, "released generations survived GC");
    std::fs::remove_dir_all(dir).ok();
}

/// A stale lease (dead owner pid) must not hold GC hostage: the next
/// commit collects the generation and reaps the lease file.
#[test]
fn dead_owner_lease_is_reaped_by_gc() {
    let dir = tmp("lease-reap");
    let opts = StoreOptions {
        keep_generations: 0,
        ..StoreOptions::default()
    };
    Store::save_opts(&dir, &[run(0)], &opts).unwrap();
    // A well-formed lease owned by pid 0 (never alive) pinning gen 1.
    let stale = dir.join("pin-000001-0-00000000deadbeef");
    std::fs::write(&stale, b"lease\n").unwrap();
    Store::append_opts(&dir, &[run(1)], &opts).unwrap();
    assert!(!stale.exists(), "stale lease survived GC");
    let manifests = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("MANIFEST-"))
        .count();
    assert_eq!(manifests, 1, "stale lease pinned a generation");
    std::fs::remove_dir_all(dir).ok();
}

/// Replay a seeded chaos schedule — appends, compactions, and writer
/// crashes at seed-chosen points — and assert linearizability: after
/// every op (plus `recover` after a crash) the store serves either the
/// pre-op or the post-op contents, and fsck comes back clean.
#[test]
fn chaos_schedule_linearizes() {
    let dir = tmp("chaos");
    let mut committed: Vec<i64> = Vec::new();
    let mut next_seed = 0u64;
    let mut fresh = |n: usize| -> Vec<Profile> {
        (0..n)
            .map(|_| {
                let p = run(next_seed);
                next_seed += 1;
                p
            })
            .collect()
    };

    let observe = |dir: &Path| -> Vec<i64> {
        let (profiles, rep) = Store::open(dir).unwrap().load_all().unwrap();
        assert!(rep.is_clean(), "{rep}");
        let mut h: Vec<i64> = profiles.iter().map(|p| p.profile_hash()).collect();
        h.sort_unstable();
        h
    };
    let sorted = |v: &[i64]| {
        let mut s = v.to_vec();
        s.sort_unstable();
        s
    };

    for (i, op) in ChaosSchedule::new(0xC0FFEE).take(40).enumerate() {
        match op {
            ChaosOp::Append { profiles } => {
                let batch = fresh(profiles);
                let rep = Store::append(&dir, &batch).expect("append");
                assert_eq!(rep.appended, batch.len(), "op {i}");
                committed.extend(batch.iter().map(|p| p.profile_hash()));
            }
            ChaosOp::Compact => {
                if committed.is_empty() {
                    continue;
                }
                Store::compact(&dir).expect("compact");
            }
            ChaosOp::CrashedAppend { point } => {
                let batch = fresh(1);
                let hash = batch[0].profile_hash();
                let opts = StoreOptions {
                    crash_after: Some(point),
                    ..StoreOptions::default()
                };
                match Store::append_opts(&dir, &batch, &opts) {
                    Ok(rep) => {
                        // Point past this write's crash count: a normal
                        // commit.
                        assert_eq!(rep.appended, 1, "op {i}");
                        committed.push(hash);
                    }
                    Err(StoreError::InjectedCrash { .. }) => {
                        Store::recover(&dir).expect("recover after crash");
                        let seen = observe(&dir);
                        let mut with = committed.clone();
                        with.push(hash);
                        let with = sorted(&with);
                        let without = sorted(&committed);
                        assert!(
                            seen == with || seen == without,
                            "op {i}: crashed append left a mixed state"
                        );
                        committed = seen;
                    }
                    Err(e) => panic!("op {i}: {e}"),
                }
            }
            ChaosOp::CrashedCompact { point } => {
                if committed.is_empty() {
                    continue;
                }
                let opts = StoreOptions {
                    crash_after: Some(point),
                    ..StoreOptions::default()
                };
                match Store::compact_opts(&dir, &opts) {
                    Ok(_) => {}
                    Err(StoreError::InjectedCrash { .. }) => {
                        Store::recover(&dir).expect("recover after crash");
                    }
                    Err(e) => panic!("op {i}: {e}"),
                }
                // Compaction never changes contents, crashed or not.
                assert_eq!(
                    observe(&dir),
                    sorted(&committed),
                    "op {i}: compact changed contents"
                );
            }
        }
        if !committed.is_empty() {
            assert_eq!(observe(&dir), sorted(&committed), "op {i}");
        }
    }
    assert!(!committed.is_empty(), "schedule never committed anything");
    // The wreckage of 40 chaotic ops still recovers to a clean store.
    Store::recover(&dir).unwrap();
    assert!(Store::fsck(&dir).unwrap().is_clean());
    std::fs::remove_dir_all(dir).ok();
}

/// Subprocess body for [`kill_nine_mid_commit_recovers`]: an unbounded
/// append loop, run only when `THICKET_CHILD_DIR` is set. The parent
/// SIGKILLs this process mid-commit.
#[test]
fn child_writer_loop() {
    let Ok(dir) = std::env::var("THICKET_CHILD_DIR") else {
        return; // Normal test runs: nothing to do.
    };
    let dir = PathBuf::from(dir);
    let mut seed = 1u64;
    loop {
        // keep_generations 1 mirrors production defaults; the parent
        // kills us long before seed wraps.
        let _ = Store::append(&dir, &[run(seed)]);
        seed += 1;
    }
}

/// Kill -9 a writer subprocess mid-commit: the survivors (`recover`,
/// then any reader) must find exactly one complete generation, a clean
/// fsck, and a contiguous prefix of the child's appends.
#[test]
fn kill_nine_mid_commit_recovers() {
    let dir = tmp("kill9");
    Store::save(&dir, &[run(0)]).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["child_writer_loop", "--exact", "--nocapture"])
        .env("THICKET_CHILD_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child writer");

    // Let the child commit a few generations, then kill it cold. The
    // deadline guards against a wedged child turning into a hung test.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let gen = Store::open(&dir).map(|r| r.generation()).unwrap_or(0);
        if gen >= 4 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "child made no progress (generation {gen})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    // The child may have died holding the LOCK or mid-shard-write;
    // recover must reap the wreckage without losing a committed record.
    let rec = Store::recover(&dir).unwrap();
    assert!(rec.generation >= 4);
    let fsck = Store::fsck(&dir).unwrap();
    assert!(fsck.is_clean(), "{fsck}");
    let (profiles, rep) = Store::open(&dir).unwrap().load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_contiguous_prefix(&profiles, 1);
    // And the store is fully writable afterwards — no zombie locks.
    let t0 = Instant::now();
    Store::append(&dir, &[run(10_000)]).unwrap();
    assert!(
        t0.elapsed() < StoreOptions::default().lock_timeout,
        "post-kill append waited out a lock timeout"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Subprocess body for [`kill_nine_pinned_server_lease_is_reaped`]: a
/// long-lived "daemon" shape — open a pinned snapshot and sit on it,
/// the way `thicketd` holds a pin for a request in flight. Run only
/// when `THICKET_PIN_DIR` is set; the parent SIGKILLs this process
/// while the pin is live.
#[test]
fn child_pinned_reader_loop() {
    let Ok(dir) = std::env::var("THICKET_PIN_DIR") else {
        return; // Normal test runs: nothing to do.
    };
    let snap = Store::open_pinned(PathBuf::from(dir)).expect("child pins");
    assert!(snap.leased());
    loop {
        // Keep the snapshot (and its lease file) alive until SIGKILL.
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Kill -9 a *pinned reader* (the daemon shape): its lease file stays
/// behind with a dead owner pid. fsck must report it as a typed
/// `StaleLease` finding, and the next commit's GC must reap it — with
/// zero records lost and exactly one complete newest generation.
#[test]
fn kill_nine_pinned_server_lease_is_reaped() {
    let dir = tmp("kill9-pin");
    let initial: Vec<Profile> = (0..3).map(run).collect();
    Store::save(&dir, &initial).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(exe)
        .args(["child_pinned_reader_loop", "--exact", "--nocapture"])
        .env("THICKET_PIN_DIR", &dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn child reader");

    // Wait until the child's lease file exists, then kill it cold.
    let pin_count = |d: &Path| {
        std::fs::read_dir(d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("pin-"))
            .count()
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while pin_count(&dir) == 0 {
        assert!(Instant::now() < deadline, "child never pinned");
        std::thread::sleep(Duration::from_millis(10));
    }
    child.kill().expect("SIGKILL child");
    child.wait().expect("reap child");

    // The orphan lease is visible and typed: not clean, exactly one
    // StaleLease coordination finding, no live leases.
    let fsck = Store::fsck(&dir).unwrap();
    assert!(!fsck.is_clean(), "orphan lease went unreported: {fsck}");
    assert!(fsck.live_leases.is_empty(), "dead pid counted as live");
    let stale_leases = fsck
        .coordination
        .iter()
        .filter(|d| matches!(d.kind, thicket_perfsim::DiagKind::StaleLease { .. }))
        .count();
    assert_eq!(stale_leases, 1, "expected one StaleLease finding: {fsck}");

    // GC rides on commits: the next append reaps the dead daemon's
    // lease. Nothing else may be lost.
    Store::append(&dir, &[run(3)]).unwrap();
    assert_eq!(pin_count(&dir), 0, "stale lease survived the commit GC");
    let fsck = Store::fsck(&dir).unwrap();
    assert!(fsck.is_clean(), "{fsck}");
    let (profiles, rep) = Store::open(&dir).unwrap().load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(assert_contiguous_prefix(&profiles, 4), 4);
    std::fs::remove_dir_all(dir).ok();
}
