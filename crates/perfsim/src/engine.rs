//! Real parallel kernel execution.
//!
//! Besides the analytic simulator, the reproduction can *actually run*
//! the Stream-class kernels on the host machine: data-parallel loops over
//! `f64` buffers executed by crossbeam scoped threads, timed with the
//! [`crate::collector::Collector`]. This proves the whole pipeline —
//! collection, composition, EDA — also works on genuine measurements,
//! not only synthetic ones.

use crate::collector::Collector;
use crate::profile::Profile;

/// Chunked data-parallel map over disjoint slices of `out`, reading `f`
/// per index. Uses crossbeam scoped threads; `threads == 1` runs inline.
pub fn parallel_for<F>(out: &mut [f64], threads: usize, f: F)
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || out.len() < 2 * threads {
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = f(i);
        }
        return;
    }
    let n = out.len();
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (t, piece) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let base = t * chunk;
                for (i, slot) in piece.iter_mut().enumerate() {
                    *slot = f(base + i);
                }
            });
        }
    })
    .expect("worker thread panicked");
}

/// Chunked parallel sum-reduction of `f(i)` over `0..n`.
pub fn parallel_reduce<F>(n: usize, threads: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || n < 2 * threads {
        return (0..n).map(&f).sum();
    }
    let chunk = n.div_ceil(threads);
    let mut partials = vec![0.0; threads];
    crossbeam::thread::scope(|scope| {
        for (t, slot) in partials.iter_mut().enumerate() {
            let f = &f;
            scope.spawn(move |_| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                *slot = (lo..hi).map(f).sum();
            });
        }
    })
    .expect("worker thread panicked");
    partials.iter().sum()
}

/// Configuration for a real Stream-kernel run.
#[derive(Debug, Clone)]
pub struct StreamRunConfig {
    /// Elements per array.
    pub n: usize,
    /// Worker threads.
    pub threads: usize,
    /// Kernel repetitions.
    pub reps: u32,
}

impl Default for StreamRunConfig {
    fn default() -> Self {
        StreamRunConfig {
            n: 1 << 20,
            threads: 4,
            reps: 5,
        }
    }
}

/// Execute the five Stream kernels (COPY, MUL, ADD, TRIAD, DOT) for real,
/// collecting wall-clock times into a profile with the familiar
/// `Base_Host → Stream → Stream_*` call tree. Returns the profile and the
/// final DOT value (so the computation cannot be optimized away and can
/// be checked).
pub fn run_stream_suite(cfg: &StreamRunConfig) -> (Profile, f64) {
    let n = cfg.n;
    let scalar = 3.0f64;
    let mut a: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.5).collect();
    let mut b: Vec<f64> = (0..n).map(|i| (i % 89) as f64 * 0.25).collect();
    let mut c: Vec<f64> = vec![0.0; n];

    let collector = Collector::new();
    collector.annotate("cluster", "localhost");
    collector.annotate("variant", "Host");
    collector.annotate("problem size", n as i64);
    collector.annotate("omp num threads", cfg.threads as i64);

    collector.begin("Base_Host");
    collector.begin("Stream");

    collector.begin("Stream_COPY");
    for _ in 0..cfg.reps {
        let src = &a;
        parallel_for(&mut c, cfg.threads, |i| src[i]);
    }
    collector.end();

    collector.begin("Stream_MUL");
    for _ in 0..cfg.reps {
        let src = &c;
        parallel_for(&mut b, cfg.threads, |i| scalar * src[i]);
    }
    collector.end();

    collector.begin("Stream_ADD");
    for _ in 0..cfg.reps {
        let (x, y) = (&a, &b);
        parallel_for(&mut c, cfg.threads, |i| x[i] + y[i]);
    }
    collector.end();

    collector.begin("Stream_TRIAD");
    for _ in 0..cfg.reps {
        let (x, y) = (&b, &c);
        parallel_for(&mut a, cfg.threads, |i| x[i] + scalar * y[i]);
    }
    collector.end();

    collector.begin("Stream_DOT");
    let mut dot = 0.0;
    for _ in 0..cfg.reps {
        let (x, y) = (&a, &b);
        dot = parallel_reduce(n, cfg.threads, |i| x[i] * y[i]);
    }
    collector.end();

    collector.end(); // Stream
    collector.end(); // Base_Host
    (collector.finish(), dot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_matches_serial() {
        let n = 10_001;
        let mut par = vec![0.0; n];
        let mut ser = vec![0.0; n];
        parallel_for(&mut par, 4, |i| (i as f64).sqrt() + 1.0);
        parallel_for(&mut ser, 1, |i| (i as f64).sqrt() + 1.0);
        assert_eq!(par, ser);
    }

    #[test]
    fn parallel_reduce_matches_serial() {
        let n = 100_003;
        let par = parallel_reduce(n, 8, |i| (i % 7) as f64);
        let ser: f64 = (0..n).map(|i| (i % 7) as f64).sum();
        assert!((par - ser).abs() < 1e-6);
    }

    #[test]
    fn reduce_small_input_inline() {
        assert_eq!(parallel_reduce(3, 16, |i| i as f64), 3.0);
        assert_eq!(parallel_reduce(0, 4, |i| i as f64), 0.0);
    }

    #[test]
    fn stream_suite_produces_real_profile() {
        let cfg = StreamRunConfig {
            n: 1 << 16,
            threads: 2,
            reps: 2,
        };
        let (p, dot) = run_stream_suite(&cfg);
        // DOT is a genuine dot product of the final arrays.
        assert!(dot.is_finite() && dot > 0.0);
        let g = p.graph();
        for name in [
            "Base_Host",
            "Stream",
            "Stream_COPY",
            "Stream_MUL",
            "Stream_ADD",
            "Stream_TRIAD",
            "Stream_DOT",
        ] {
            let id = g.find_by_name(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(p.metric(id, "time (inc)").unwrap() >= 0.0);
        }
        assert_eq!(
            p.metadata("problem size").unwrap().as_i64(),
            Some(1 << 16)
        );
    }

    #[test]
    fn stream_dot_value_is_correct() {
        // With reps=1 the arrays follow one deterministic pass; verify
        // DOT against a direct recomputation.
        let cfg = StreamRunConfig {
            n: 4096,
            threads: 3,
            reps: 1,
        };
        let (_, dot) = run_stream_suite(&cfg);
        // Recompute the same pipeline serially.
        let n = cfg.n;
        let scalar = 3.0f64;
        let mut a: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.5).collect();
        let mut b: Vec<f64> = (0..n).map(|i| (i % 89) as f64 * 0.25).collect();
        let mut c: Vec<f64> = vec![0.0; n];
        c.copy_from_slice(&a);
        for i in 0..n {
            b[i] = scalar * c[i];
        }
        for i in 0..n {
            c[i] = a[i] + b[i];
        }
        for i in 0..n {
            a[i] = b[i] + scalar * c[i];
        }
        let expect: f64 = (0..n).map(|i| a[i] * b[i]).sum();
        assert!((dot - expect).abs() / expect.abs() < 1e-12);
    }
}
