//! The MARBL multi-physics scaling simulator (paper §5.2).
//!
//! MARBL itself is closed to us, but every MARBL figure depends only on
//! the shape of its strong-scaling behaviour on two clusters:
//!
//! * Figure 17 — near-ideal node-to-node strong scaling of
//!   `timeStepLoop` up to ~16 nodes, AWS ParallelCluster consistently
//!   faster than RZTopaz;
//! * Figure 11 — the solver's average time/rank following the family
//!   `c₀ + c₁·p^(1/3)` with negative `c₁` (less per-rank work as ranks
//!   grow), AWS below CTS;
//! * Figure 18 — metadata correlations (more ranks ↔ lower walltime,
//!   fewer elements/rank).
//!
//! The simulator generates profile ensembles with exactly these
//! properties: per-rank compute ∝ zones/ranks, a 3-D surface-to-volume
//! communication term, cluster-specific rates, and seeded noise.

use crate::machine::{CpuSpec, NetworkSpec};
use crate::noise::Noise;
use crate::profile::Profile;
use thicket_graph::{Frame, Graph};

/// Which cluster a MARBL run executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MarblCluster {
    /// RZTopaz — the CTS-1 commodity cluster (Intel MPI in the study is
    /// on AWS; RZTopaz ran OpenMPI).
    RzTopaz,
    /// AWS ParallelCluster with C5n.18xlarge nodes and EFA.
    AwsParallelCluster,
}

impl MarblCluster {
    /// Metadata cluster string.
    pub fn cluster_name(self) -> &'static str {
        match self {
            MarblCluster::RzTopaz => "rztopaz",
            MarblCluster::AwsParallelCluster => "ip-10-0-0-1",
        }
    }

    /// Architecture label used for coloring in Figure 18.
    pub fn arch(self) -> &'static str {
        match self {
            MarblCluster::RzTopaz => "CTS1",
            MarblCluster::AwsParallelCluster => "C5n.18xlarge",
        }
    }

    /// MPI implementation used in the study.
    pub fn mpi(self) -> &'static str {
        match self {
            MarblCluster::RzTopaz => "openmpi",
            MarblCluster::AwsParallelCluster => "impi",
        }
    }

    /// Machine model.
    pub fn machine(self) -> CpuSpec {
        match self {
            MarblCluster::RzTopaz => crate::machine::rztopaz(),
            MarblCluster::AwsParallelCluster => crate::machine::aws_parallelcluster(),
        }
    }

    /// Network model.
    pub fn network(self) -> NetworkSpec {
        match self {
            MarblCluster::RzTopaz => crate::machine::rztopaz_network(),
            MarblCluster::AwsParallelCluster => crate::machine::aws_network(),
        }
    }

    /// Per-zone-cycle compute cost (seconds per zone per rank-cycle).
    /// Calibrated so AWS (newer Skylake cores) beats CTS-1 Broadwell —
    /// the consistent gap Figures 17/18 show.
    fn zone_cost(self) -> f64 {
        match self {
            MarblCluster::RzTopaz => 9.5e-7,
            MarblCluster::AwsParallelCluster => 7.3e-7,
        }
    }

    /// Solver model constants `(c0, c1)` for avg time/rank ≈
    /// `c0 + c1·p^(1/3)` — the family the paper's Figure 11 fits.
    fn solver_constants(self) -> (f64, f64) {
        match self {
            MarblCluster::RzTopaz => (200.231242693312, -18.278533682209932),
            MarblCluster::AwsParallelCluster => (154.8848323145599, -14.012557071778664),
        }
    }
}

/// One MARBL run configuration.
#[derive(Debug, Clone)]
pub struct MarblConfig {
    /// Target cluster.
    pub cluster: MarblCluster,
    /// Compute nodes.
    pub nodes: u32,
    /// MPI ranks per node (the study used 36).
    pub ranks_per_node: u32,
    /// Total zones of the 3-D triple-point mesh.
    pub zones: u64,
    /// Simulated time-step cycles.
    pub cycles: u32,
    /// Noise seed (vary for ensembles).
    pub seed: u64,
}

impl MarblConfig {
    /// The paper's 3-D triple-point benchmark on a given cluster and node
    /// count.
    pub fn triple_point(cluster: MarblCluster, nodes: u32, seed: u64) -> Self {
        MarblConfig {
            cluster,
            nodes,
            ranks_per_node: 36,
            zones: 13_824_000,
            cycles: 320,
            seed,
        }
    }

    /// Total MPI ranks.
    pub fn ranks(&self) -> u32 {
        self.nodes * self.ranks_per_node
    }
}

/// Per-cycle `timeStepLoop` time (seconds) under the scaling model.
pub fn time_per_cycle(cfg: &MarblConfig) -> f64 {
    let p = cfg.ranks() as f64;
    let zones_per_rank = cfg.zones as f64 / p;
    let compute = zones_per_rank * cfg.cluster.zone_cost();
    // 3-D halo exchange: surface ∝ (zones/rank)^(2/3); 8 bytes/value,
    // ~20 fields, 6 faces.
    let net = cfg.cluster.network();
    let halo_bytes = zones_per_rank.powf(2.0 / 3.0) * 8.0 * 20.0 * 6.0;
    let comm = halo_bytes / (net.bw_gbs * 1e9 / cfg.ranks_per_node as f64)
        + net.latency_s * (p.log2().max(1.0)) * 3.0;
    compute + comm
}

/// Simulate one MARBL run, producing a profile with the call tree
/// `main → timeStepLoop → {LagrangeLeapFrog → {M_solver->Mult,
/// ForceCalc}, MPI_Allreduce, Remap}` and the Caliper-style aggregate
/// metrics Thicket's MARBL study reads.
pub fn simulate_marbl_run(cfg: &MarblConfig) -> Profile {
    let mut noise = Noise::new(cfg.seed ^ (cfg.nodes as u64) << 32 ^ cfg.cluster as u64);
    let p = cfg.ranks() as f64;

    let per_cycle = time_per_cycle(cfg) * noise.lognormal(0.025);
    let loop_time = per_cycle * cfg.cycles as f64;

    // Component split inside the step loop.
    let (c0, c1) = cfg.cluster.solver_constants();
    let solver_avg_rank = (c0 + c1 * p.powf(1.0 / 3.0)).max(5.0) * noise.lognormal(0.02);
    let comm_time = loop_time * 0.12 * noise.lognormal(0.05);
    let remap_time = loop_time * 0.18 * noise.lognormal(0.04);
    let force_time = loop_time * 0.25 * noise.lognormal(0.03);
    let startup = 6.0 * noise.lognormal(0.1);
    let walltime = loop_time + startup;

    let mut g = Graph::new();
    let main = g.add_root(Frame::with_type("main", "function"));
    let step = g.add_child(main, Frame::with_type("timeStepLoop", "region"));
    let lag = g.add_child(step, Frame::with_type("LagrangeLeapFrog", "region"));
    let solver = g.add_child(lag, Frame::with_type("M_solver->Mult", "function"));
    let force = g.add_child(lag, Frame::with_type("ForceCalc", "function"));
    let allreduce = g.add_child(step, Frame::with_type("MPI_Allreduce", "mpi"));
    let remap = g.add_child(step, Frame::with_type("Remap", "region"));

    let mut profile = Profile::new(g);
    // Caliper-style aggregated inclusive duration metrics (Figure 18 uses
    // min/avg/sum variants).
    let put = |node, avg: f64, profile: &mut Profile, noise: &mut Noise| {
        let spread = noise.lognormal(0.03);
        profile.set_metric(node, "avg#inclusive#sum#time.duration", avg);
        profile.set_metric(node, "min#inclusive#sum#time.duration", avg / spread * 0.92);
        profile.set_metric(node, "max#inclusive#sum#time.duration", avg * spread * 1.08);
        profile.set_metric(node, "sum#inclusive#sum#time.duration", avg * p);
    };
    put(main, walltime, &mut profile, &mut noise);
    put(step, loop_time, &mut profile, &mut noise);
    put(
        lag,
        solver_avg_rank + force_time,
        &mut profile,
        &mut noise,
    );
    put(solver, solver_avg_rank, &mut profile, &mut noise);
    put(force, force_time, &mut profile, &mut noise);
    put(allreduce, comm_time, &mut profile, &mut noise);
    put(remap, remap_time, &mut profile, &mut noise);
    // Per-cycle figure-of-merit for the scaling plot.
    profile.set_metric(step, "time per cycle", per_cycle);

    let machine = cfg.cluster.machine();
    profile.set_metadata("cluster", cfg.cluster.cluster_name());
    profile.set_metadata("arch", cfg.cluster.arch());
    profile.set_metadata(
        "ccompiler",
        "/usr/tce/packages/clang/clang-9.0.0",
    );
    profile.set_metadata("mpi", cfg.cluster.mpi());
    profile.set_metadata(
        "version",
        match cfg.cluster {
            MarblCluster::RzTopaz => "v1.1.0-201-g891eaf1",
            MarblCluster::AwsParallelCluster => "v1.1.0-203-gcb0efb3",
        },
    );
    profile.set_metadata("numhosts", cfg.nodes as i64);
    profile.set_metadata("mpi.world.size", cfg.ranks() as i64);
    profile.set_metadata("systype", machine.systype.as_str());
    profile.set_metadata("walltime", walltime);
    profile.set_metadata("num_elems_max_per_rank", (cfg.zones as f64 / p * 1.04) as i64);
    profile.set_metadata("problem", "Triple-Pt-3D");
    profile.set_metadata("seed", cfg.seed as i64);
    profile
}

/// Generate the paper's full MARBL study ensemble: both clusters × the
/// given node counts × `runs` repetitions (Figure 16: 1–32 nodes,
/// 5 runs each → 30 profiles per cluster).
pub fn marbl_ensemble(node_counts: &[u32], runs: u32) -> Vec<Profile> {
    let mut out = Vec::new();
    for cluster in [MarblCluster::RzTopaz, MarblCluster::AwsParallelCluster] {
        for &nodes in node_counts {
            for run in 0..runs {
                let cfg = MarblConfig::triple_point(cluster, nodes, run as u64 * 7919 + 13);
                out.push(simulate_marbl_run(&cfg));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_structure() {
        let p = simulate_marbl_run(&MarblConfig::triple_point(MarblCluster::RzTopaz, 4, 0));
        let g = p.graph();
        assert!(g.find_by_name("timeStepLoop").is_some());
        let solver = g.find_by_name("M_solver->Mult").unwrap();
        assert!(p.metric(solver, "avg#inclusive#sum#time.duration").unwrap() > 0.0);
        assert_eq!(p.metadata("mpi.world.size").unwrap().as_i64(), Some(144));
        assert_eq!(p.metadata("numhosts").unwrap().as_i64(), Some(4));
    }

    #[test]
    fn strong_scaling_near_ideal_to_16_nodes() {
        for cluster in [MarblCluster::RzTopaz, MarblCluster::AwsParallelCluster] {
            let t1 = time_per_cycle(&MarblConfig::triple_point(cluster, 1, 0));
            let t16 = time_per_cycle(&MarblConfig::triple_point(cluster, 16, 0));
            let speedup = t1 / t16;
            assert!(
                speedup > 10.0 && speedup <= 16.5,
                "{cluster:?}: 16-node speedup {speedup}"
            );
        }
    }

    #[test]
    fn aws_faster_than_cts() {
        for nodes in [1, 4, 16, 32] {
            let cts = time_per_cycle(&MarblConfig::triple_point(MarblCluster::RzTopaz, nodes, 0));
            let aws = time_per_cycle(&MarblConfig::triple_point(
                MarblCluster::AwsParallelCluster,
                nodes,
                0,
            ));
            assert!(aws < cts, "AWS should be faster at {nodes} nodes");
        }
    }

    #[test]
    fn solver_follows_cube_root_family() {
        // Generating function is c0 + c1 p^(1/3): check monotone decrease.
        let mut prev = f64::INFINITY;
        for nodes in [1u32, 2, 4, 8, 16, 32] {
            let cfg = MarblConfig::triple_point(MarblCluster::RzTopaz, nodes, 0);
            let p = simulate_marbl_run(&cfg);
            let solver = p.graph().find_by_name("M_solver->Mult").unwrap();
            let t = p.metric(solver, "avg#inclusive#sum#time.duration").unwrap();
            assert!(t < prev, "solver time/rank should fall with ranks");
            prev = t;
        }
    }

    #[test]
    fn walltime_inverse_to_ranks() {
        let few = simulate_marbl_run(&MarblConfig::triple_point(MarblCluster::RzTopaz, 1, 0));
        let many = simulate_marbl_run(&MarblConfig::triple_point(MarblCluster::RzTopaz, 32, 0));
        let wf = few.metadata("walltime").unwrap().as_f64().unwrap();
        let wm = many.metadata("walltime").unwrap().as_f64().unwrap();
        assert!(wf > wm * 5.0);
    }

    #[test]
    fn ensemble_shape() {
        let e = marbl_ensemble(&[1, 2, 4, 8, 16, 32], 5);
        assert_eq!(e.len(), 60);
        // 30 profiles per cluster (Figure 16).
        let cts = e
            .iter()
            .filter(|p| p.metadata("arch").unwrap().as_str() == Some("CTS1"))
            .count();
        assert_eq!(cts, 30);
        // Distinct hashes.
        let mut hashes: Vec<i64> = e.iter().map(|p| p.profile_hash()).collect();
        hashes.sort_unstable();
        hashes.dedup();
        assert_eq!(hashes.len(), 60);
    }

    #[test]
    fn runs_vary_with_seed() {
        let a = simulate_marbl_run(&MarblConfig::triple_point(MarblCluster::RzTopaz, 4, 1));
        let b = simulate_marbl_run(&MarblConfig::triple_point(MarblCluster::RzTopaz, 4, 2));
        let sa = a.graph().find_by_name("timeStepLoop").unwrap();
        let sb = b.graph().find_by_name("timeStepLoop").unwrap();
        assert_ne!(
            a.metric(sa, "time per cycle"),
            b.metric(sb, "time per cycle")
        );
    }
}
