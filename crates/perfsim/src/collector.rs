//! A Caliper-like annotation collector (paper §2, step 1).
//!
//! Code under measurement brackets regions with [`Collector::begin`] /
//! [`Collector::end`] (or the RAII [`Collector::region`] guard); the
//! collector builds the call tree on the fly and records wall-clock
//! inclusive/exclusive durations per node. Adiak-style run metadata is
//! attached with [`Collector::annotate`]. [`Collector::finish`] produces
//! a [`Profile`] identical in shape to the simulator's output, so real
//! measurements and simulated ones flow through the same pipeline.

use crate::profile::Profile;
use parking_lot::Mutex;
use std::time::Instant;
use thicket_dataframe::Value;
use thicket_graph::{Frame, Graph, NodeId};

#[derive(Debug)]
struct Inner {
    graph: Graph,
    /// (node, start time, child-time accumulated so far).
    stack: Vec<(NodeId, Instant, f64)>,
    /// Per-node accumulated (inclusive, exclusive, visits).
    times: Vec<(f64, f64, u64)>,
    metadata: Vec<(String, Value)>,
}

/// Thread-safe region-annotation collector.
///
/// Regions must nest properly per collector; the collector is typically
/// owned by the orchestrating thread while worker threads execute the
/// kernel bodies (the engine's model).
#[derive(Debug)]
pub struct Collector {
    inner: Mutex<Inner>,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// New empty collector.
    pub fn new() -> Self {
        Collector {
            inner: Mutex::new(Inner {
                graph: Graph::new(),
                stack: Vec::new(),
                times: Vec::new(),
                metadata: Vec::new(),
            }),
        }
    }

    /// Attach a metadata attribute (Adiak-style).
    pub fn annotate(&self, key: impl Into<String>, value: impl Into<Value>) {
        let mut inner = self.inner.lock();
        let key = key.into();
        let value = value.into();
        if let Some(slot) = inner.metadata.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            inner.metadata.push((key, value));
        }
    }

    /// Open a region named `name`; nested under the current region.
    pub fn begin(&self, name: &str) {
        let mut inner = self.inner.lock();
        let frame = Frame::with_type(name, "region");
        let node = match inner.stack.last() {
            Some(&(parent, _, _)) => inner
                .graph
                .child_with_frame(parent, &frame)
                .unwrap_or_else(|| inner.graph.add_child(parent, frame)),
            None => inner
                .graph
                .root_with_frame(&frame)
                .unwrap_or_else(|| inner.graph.add_root(frame)),
        };
        while inner.times.len() < inner.graph.len() {
            inner.times.push((0.0, 0.0, 0));
        }
        inner.stack.push((node, Instant::now(), 0.0));
    }

    /// Close the current region. Panics if no region is open.
    pub fn end(&self) {
        let mut inner = self.inner.lock();
        let (node, start, child_time) = inner
            .stack
            .pop()
            .expect("Collector::end without matching begin");
        let elapsed = start.elapsed().as_secs_f64();
        let slot = &mut inner.times[node.index()];
        slot.0 += elapsed;
        slot.1 += (elapsed - child_time).max(0.0);
        slot.2 += 1;
        if let Some(parent) = inner.stack.last_mut() {
            parent.2 += elapsed;
        }
    }

    /// RAII guard: the region closes when the guard drops.
    pub fn region<'c>(&'c self, name: &str) -> RegionGuard<'c> {
        self.begin(name);
        RegionGuard { collector: self }
    }

    /// Finish collection and emit the profile. Panics if regions are
    /// still open.
    pub fn finish(self) -> Profile {
        let inner = self.inner.into_inner();
        assert!(
            inner.stack.is_empty(),
            "Collector::finish with {} open region(s)",
            inner.stack.len()
        );
        let times = inner.times;
        let mut profile = Profile::new(inner.graph);
        for (i, (inc, exc, visits)) in times.iter().enumerate() {
            if *visits == 0 {
                continue;
            }
            let id = profile
                .graph()
                .ids()
                .nth(i)
                .expect("times align with arena");
            profile.set_metric(id, "time (inc)", *inc);
            profile.set_metric(id, "time (exc)", *exc);
            profile.set_metric(id, "visits", *visits as f64);
        }
        for (k, v) in inner.metadata {
            profile.set_metadata(k, v);
        }
        profile
    }
}

/// Guard returned by [`Collector::region`].
pub struct RegionGuard<'c> {
    collector: &'c Collector,
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        self.collector.end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn builds_call_tree_with_times() {
        let c = Collector::new();
        c.annotate("cluster", "localhost");
        c.begin("main");
        c.begin("foo");
        std::thread::sleep(Duration::from_millis(5));
        c.end();
        c.begin("bar");
        std::thread::sleep(Duration::from_millis(2));
        c.end();
        c.end();
        let p = c.finish();
        let g = p.graph();
        assert_eq!(g.len(), 3);
        let main = g.find_by_name("main").unwrap();
        let foo = g.find_by_name("foo").unwrap();
        assert!(p.metric(foo, "time (inc)").unwrap() >= 0.005);
        // main inclusive covers both children.
        assert!(
            p.metric(main, "time (inc)").unwrap() >= p.metric(foo, "time (inc)").unwrap()
        );
        // main exclusive is small.
        assert!(p.metric(main, "time (exc)").unwrap() < p.metric(main, "time (inc)").unwrap());
        assert_eq!(p.metadata("cluster"), Some(&Value::from("localhost")));
    }

    #[test]
    fn repeated_regions_merge_and_count() {
        let c = Collector::new();
        c.begin("main");
        for _ in 0..3 {
            c.begin("kernel");
            c.end();
        }
        c.end();
        let p = c.finish();
        assert_eq!(p.graph().len(), 2);
        let k = p.graph().find_by_name("kernel").unwrap();
        assert_eq!(p.metric(k, "visits"), Some(3.0));
    }

    #[test]
    fn raii_guard_closes() {
        let c = Collector::new();
        {
            let _g = c.region("outer");
            let _h = c.region("inner");
        }
        let p = c.finish();
        assert_eq!(p.graph().len(), 2);
    }

    #[test]
    #[should_panic(expected = "open region")]
    fn unclosed_region_panics() {
        let c = Collector::new();
        c.begin("main");
        let _ = c.finish();
    }

    #[test]
    #[should_panic(expected = "without matching begin")]
    fn unmatched_end_panics() {
        let c = Collector::new();
        c.end();
    }

    #[test]
    fn same_name_different_paths_distinct_nodes() {
        let c = Collector::new();
        c.begin("main");
        c.begin("a");
        c.begin("shared");
        c.end();
        c.end();
        c.begin("b");
        c.begin("shared");
        c.end();
        c.end();
        c.end();
        let p = c.finish();
        // main, a, b, shared×2.
        assert_eq!(p.graph().len(), 5);
    }
}
