//! Deterministic fault injection for ensemble directories and sharded
//! stores.
//!
//! Robustness claims are only as good as the faults they were tested
//! against, so this module provides seed-driven corruptors that mimic
//! what real collection campaigns produce: truncated files (node died
//! mid-write), mangled bytes (storage rot), schema drift (a collector
//! that stopped emitting a member), duplicated profiles (a re-run job
//! double-copied its output), non-finite metrics (counter overflow), and
//! empty call trees (instrumentation produced nothing). For
//! [`crate::store`] directories there are three more: torn shards
//! (crash mid-append), bit rot inside a shard record, and a stale
//! (unverifiable) newest manifest. v3 stores add four *payload*
//! corruptors ([`FaultKind::STORE_V3`]) that re-frame the record after
//! corrupting it — frame CRC, manifest entry, shard digest, and
//! manifest self-CRC all recomputed — so every checksum verifies and
//! the damage reaches the binary payload decoder itself: a truncation
//! mid-metric-column, a flipped column CRC, a mismatched column entry
//! count, and an out-of-range name-table index.
//!
//! Coordination files get their own pair
//! ([`FaultKind::COORDINATION`]): a garbage-bodied commit `LOCK` and an
//! abandoned `pin-*` reader lease, both aged past every ttl — the
//! droppings of processes that died mid-commit or mid-read. They harm
//! liveness, not data, and must classify as
//! [`DiagKind::StaleLock`] / [`DiagKind::StaleLease`].
//!
//! Every corruptor is a pure function of `(directory contents, seed)`:
//! the same seed always corrupts the same victim the same way, so tests
//! exercising the lenient-ingest paths are reproducible. Each
//! [`FaultKind`] maps onto the typed diagnostic it must surface as
//! ([`FaultKind::matches`]) — the integration suites drive every
//! ensemble kind through [`crate::ensemble::load_dir`] and every
//! store kind through [`crate::Store::fsck`] and assert the mapping.
//!
//! The service layer gets a *wire* family ([`FaultKind::WIRE`]): torn
//! frames, oversized declared lengths, slow-loris writers, mid-request
//! connection kills, and a SIGKILL of the daemon itself. These are live
//! faults — misbehaving clients and dying processes, not bytes on disk
//! — so [`inject`] rejects them; the `thicket-serve` chaos suite drives
//! each against a running server.
//!
//! For *live* contention (not just post-mortem wreckage),
//! [`ChaosSchedule`] turns a seed into a deterministic infinite stream
//! of writer operations — appends, compactions, and writer crashes at
//! seed-chosen crash points — that the concurrency suites replay
//! against a store while readers hammer it.

use crate::ingest::DiagKind;
use crate::json::Json;
use std::io;
use std::path::{Path, PathBuf};

/// One way an ensemble directory can go bad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cut the file off at a seed-chosen byte (mid-write crash).
    Truncate,
    /// Mangle a byte inside the JSON text (storage corruption).
    FlipByte,
    /// Remove the `metrics` member from a node (schema drift).
    DropMetrics,
    /// Replace a metric value with an overflowing literal that parses
    /// to `+inf` (counter overflow).
    NonFinite,
    /// Empty the call tree (`nodes`/`roots` both `[]`).
    EmptyCallTree,
    /// Copy a healthy profile to a second file with the same hash
    /// (double-copied job output).
    DuplicateProfile,
    /// Create an unreadable directory entry with a `.json` name.
    Unreadable,
    /// Truncate a store shard mid-record (crash mid-append). Store
    /// directories only.
    TornShard,
    /// Flip one bit inside a store shard record's payload (storage
    /// rot). Store directories only.
    BitRot,
    /// Corrupt the newest store manifest so it no longer verifies
    /// (torn or rotted commit record). Store directories only.
    StaleManifest,
    /// Truncate a v3 record's payload in the middle of a metric
    /// column's data block, re-framing the record so every checksum
    /// still verifies. v3 store directories only.
    TruncatedColumn,
    /// Flip one bit in the CRC32C a v3 payload stores for one metric
    /// column (re-framed). v3 store directories only.
    ColumnCrcRot,
    /// Bump a v3 metric column's declared entry count so the declared
    /// and actual data lengths disagree (re-framed). v3 store
    /// directories only.
    ColumnCountMismatch,
    /// Point a v3 metric column's name at a name-table slot past the
    /// end of the table (re-framed). v3 store directories only.
    NameIndexOutOfRange,
    /// Fill the store's commit `LOCK` file with garbage and age it past
    /// any takeover ttl (a writer that died mid-lock-write long ago).
    /// Store directories only.
    LockGarbage,
    /// Plant a well-formed `pin-*` lease name owned by pid 0 (never
    /// alive) with a garbage body and an epoch-old heartbeat — the
    /// abandoned pin of a long-dead reader. Store directories only.
    LeaseGarbage,
    /// Wire: a frame whose header promises more payload bytes than the
    /// sender ever writes (client died mid-request). The service must
    /// end the connection cleanly — never block forever, never leak a
    /// pin lease. Live-connection fault: driven by the `thicket-serve`
    /// chaos suite, not by [`inject`].
    TornFrame,
    /// Wire: a frame header declaring a length past the server's
    /// configured cap. Must be rejected *before* any allocation with a
    /// typed `FrameTooLarge` response. Live-connection fault.
    OversizedFrame,
    /// Wire: a client that trickles its request one byte at a time,
    /// slower than the per-request deadline (slow-loris). The server
    /// must time the read out and free the worker. Live-connection
    /// fault.
    SlowLoris,
    /// Wire: the client vanishes (socket killed) after sending a valid
    /// request but before reading the response. The server's response
    /// write fails; the request's pin must still be released.
    /// Live-connection fault.
    ConnectionKill,
    /// Wire: the daemon itself is killed with SIGKILL while a request
    /// holds a pin lease. The lease file survives with a dead owner
    /// pid; fsck must classify it [`DiagKind::StaleLease`] and the next
    /// commit's GC must reap it with zero records lost. Subprocess
    /// fault: driven by the `thicket-serve` chaos suite.
    DaemonKill,
    /// Cut a `*.trace` file off in the middle of an event line (a
    /// tracing process that died mid-write). Trace files only.
    TornTrace,
    /// Swap the timestamps of two consecutive events on one rank so
    /// that rank's clock regresses (events reordered in flight). Trace
    /// files only.
    ShuffledEvents,
    /// Delete one region-leave line so a rank's enter/leave events no
    /// longer balance (a dropped event record). Trace files only.
    UnbalancedTrace,
}

impl FaultKind {
    /// Every fault kind: ensemble-directory kinds first, then the
    /// store-directory kinds, then the live wire kinds, then the trace
    /// kinds.
    pub const ALL: [FaultKind; 24] = [
        FaultKind::Truncate,
        FaultKind::FlipByte,
        FaultKind::DropMetrics,
        FaultKind::NonFinite,
        FaultKind::EmptyCallTree,
        FaultKind::DuplicateProfile,
        FaultKind::Unreadable,
        FaultKind::TornShard,
        FaultKind::BitRot,
        FaultKind::StaleManifest,
        FaultKind::TruncatedColumn,
        FaultKind::ColumnCrcRot,
        FaultKind::ColumnCountMismatch,
        FaultKind::NameIndexOutOfRange,
        FaultKind::LockGarbage,
        FaultKind::LeaseGarbage,
        FaultKind::TornFrame,
        FaultKind::OversizedFrame,
        FaultKind::SlowLoris,
        FaultKind::ConnectionKill,
        FaultKind::DaemonKill,
        FaultKind::TornTrace,
        FaultKind::ShuffledEvents,
        FaultKind::UnbalancedTrace,
    ];

    /// The kinds that apply to a loose-JSON ensemble directory, in the
    /// order [`inject_all`] applies them there.
    pub const ENSEMBLE: [FaultKind; 7] = [
        FaultKind::Truncate,
        FaultKind::FlipByte,
        FaultKind::DropMetrics,
        FaultKind::NonFinite,
        FaultKind::EmptyCallTree,
        FaultKind::DuplicateProfile,
        FaultKind::Unreadable,
    ];

    /// The kinds that apply to a [`crate::store`] directory, in the
    /// order [`inject_all`] applies them there.
    pub const STORE: [FaultKind; 3] = [
        FaultKind::TornShard,
        FaultKind::BitRot,
        FaultKind::StaleManifest,
    ];

    /// The kinds that corrupt a v3 record's *payload* and re-frame it
    /// (every checksum recomputed), so the damage is only detectable by
    /// actually decoding — the deep half of `Store::fsck` and the load
    /// path's decoder hardening.
    pub const STORE_V3: [FaultKind; 4] = [
        FaultKind::TruncatedColumn,
        FaultKind::ColumnCrcRot,
        FaultKind::ColumnCountMismatch,
        FaultKind::NameIndexOutOfRange,
    ];

    /// The kinds that plant abandoned *coordination* files (commit
    /// locks, reader leases) in a store directory — they never damage
    /// data, only liveness, so they are classified by
    /// [`crate::Store::fsck`] and reaped by [`crate::Store::recover`]
    /// without any salvage. Not part of [`FaultKind::STORE`]: the
    /// store-damage suites zip against that array's exact contents.
    pub const COORDINATION: [FaultKind; 2] =
        [FaultKind::LockGarbage, FaultKind::LeaseGarbage];

    /// The kinds that attack the *service* over its wire protocol
    /// rather than the directory: torn and oversized frames, a
    /// slow-loris writer, a mid-request connection kill, and a SIGKILL
    /// of the daemon itself. They are live faults — a misbehaving
    /// client or a dying process, not bytes on disk — so [`inject`]
    /// rejects them; the `thicket-serve` chaos suite drives each one
    /// against a running server and asserts the documented outcome
    /// (typed response or clean disconnect, zero leaked pin leases,
    /// one complete generation after recovery).
    pub const WIRE: [FaultKind; 5] = [
        FaultKind::TornFrame,
        FaultKind::OversizedFrame,
        FaultKind::SlowLoris,
        FaultKind::ConnectionKill,
        FaultKind::DaemonKill,
    ];

    /// The kinds that corrupt a `*.trace` event stream: a torn tail
    /// (crash mid-write), a per-rank clock regression (events
    /// reordered), and a dropped leave (unbalanced nesting). They must
    /// surface from the streaming aggregator as
    /// [`DiagKind::TornTrace`] / [`DiagKind::OutOfOrderEvent`] /
    /// [`DiagKind::UnbalancedStream`] — never a panic.
    pub const TRACE: [FaultKind; 3] = [
        FaultKind::TornTrace,
        FaultKind::ShuffledEvents,
        FaultKind::UnbalancedTrace,
    ];

    /// True for the kinds that corrupt a sharded store rather than a
    /// loose-JSON directory.
    pub fn is_store_fault(&self) -> bool {
        matches!(
            self,
            FaultKind::TornShard | FaultKind::BitRot | FaultKind::StaleManifest
        ) || self.is_v3_payload_fault()
            || self.is_coordination_fault()
    }

    /// True for the [`FaultKind::COORDINATION`] kinds.
    pub fn is_coordination_fault(&self) -> bool {
        FaultKind::COORDINATION.contains(self)
    }

    /// True for the [`FaultKind::WIRE`] live service faults.
    pub fn is_wire_fault(&self) -> bool {
        FaultKind::WIRE.contains(self)
    }

    /// True for the [`FaultKind::STORE_V3`] payload corruptors.
    pub fn is_v3_payload_fault(&self) -> bool {
        FaultKind::STORE_V3.contains(self)
    }

    /// True for the [`FaultKind::TRACE`] event-stream corruptors.
    pub fn is_trace_fault(&self) -> bool {
        FaultKind::TRACE.contains(self)
    }

    /// Does `diag` have the type this fault must surface as?
    pub fn matches(&self, diag: &DiagKind) -> bool {
        match (self, diag) {
            (FaultKind::Truncate, DiagKind::Parse { .. }) => true,
            (FaultKind::FlipByte, DiagKind::Parse { .. }) => true,
            (FaultKind::DropMetrics, DiagKind::Schema(m)) => m.contains("missing metrics"),
            (FaultKind::NonFinite, DiagKind::NonFiniteMetric { .. }) => true,
            (FaultKind::EmptyCallTree, DiagKind::Schema(m)) => m.contains("empty call tree"),
            (FaultKind::DuplicateProfile, DiagKind::DuplicateProfile { .. }) => true,
            (FaultKind::Unreadable, DiagKind::Io(_)) => true,
            (FaultKind::TornShard, DiagKind::TornShard { .. }) => true,
            (FaultKind::BitRot, DiagKind::ChecksumMismatch { .. }) => true,
            (FaultKind::StaleManifest, DiagKind::StaleManifest { .. }) => true,
            (FaultKind::LockGarbage, DiagKind::StaleLock { .. }) => true,
            (FaultKind::LeaseGarbage, DiagKind::StaleLease { .. }) => true,
            // The payload corruptors surface from the binary decoder.
            (FaultKind::TruncatedColumn, DiagKind::Schema(m)) => {
                m.contains("metric column") || m.contains("truncated")
            }
            (FaultKind::ColumnCrcRot, DiagKind::Schema(m)) => m.contains("checksum mismatch"),
            (FaultKind::ColumnCountMismatch, DiagKind::Schema(m)) => {
                m.contains("metric column") || m.contains("trailing")
            }
            (FaultKind::NameIndexOutOfRange, DiagKind::Schema(m)) => {
                m.contains("name index") && m.contains("out of range")
            }
            // A kill-9'd daemon's only on-disk dropping is the pin
            // lease its in-flight request held. The other wire faults
            // never reach the disk at all — their contract is a typed
            // wire response or a clean disconnect, asserted by the
            // serve chaos suite, so no DiagKind matches them.
            (FaultKind::DaemonKill, DiagKind::StaleLease { .. }) => true,
            (FaultKind::TornTrace, DiagKind::TornTrace { .. }) => true,
            (FaultKind::ShuffledEvents, DiagKind::OutOfOrderEvent { .. }) => true,
            (FaultKind::UnbalancedTrace, DiagKind::UnbalancedStream { .. }) => true,
            _ => false,
        }
    }
}

/// Sorted `*.json` paths of `dir` (the victim pool).
fn victim_pool(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Sorted `*.trace` paths of `dir` (the trace victim pool).
fn trace_pool(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "trace"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Sorted shard (`*.tks`) paths of a store directory.
fn shard_pool(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_file() && p.extension().is_some_and(|e| e == "tks"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Sorted manifest paths of a store directory.
fn manifest_pool(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| {
            p.is_file()
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("MANIFEST-"))
        })
        .collect();
    paths.sort();
    Ok(paths)
}

/// `(payload offset, payload len)` of each record in a shard image.
fn shard_record_ranges(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut pos = 4; // skip magic
    while bytes.len().saturating_sub(pos) >= 8 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if bytes.len() - pos - 8 < len {
            break;
        }
        out.push((pos + 8, len));
        pos += 8 + len;
    }
    out
}

fn no_victim(dir: &Path) -> io::Error {
    io::Error::other(format!(
        "no profile files to corrupt in {}",
        dir.display()
    ))
}

/// Inject one fault into `dir`, picking the victim deterministically
/// from the seed (sorted filename order). Returns the path the fault
/// lives at: the corrupted victim, or the newly created file for
/// [`FaultKind::DuplicateProfile`] / [`FaultKind::Unreadable`].
///
/// Ensemble kinds pick their victim among the `*.json` profiles; store
/// kinds ([`FaultKind::is_store_fault`]) pick among the `*.tks` shards
/// ([`FaultKind::StaleManifest`] targets the newest manifest).
pub fn inject(dir: impl AsRef<Path>, kind: FaultKind, seed: u64) -> io::Result<PathBuf> {
    let dir = dir.as_ref();
    if kind == FaultKind::Unreadable {
        let path = dir.join(format!("zz-unreadable-{seed}.json"));
        std::fs::create_dir_all(&path)?;
        return Ok(path);
    }
    if kind.is_v3_payload_fault() {
        return corrupt_v3_record(dir, kind, seed);
    }
    if kind.is_coordination_fault() {
        return corrupt_coordination(dir, kind, seed);
    }
    if kind.is_trace_fault() {
        let pool = trace_pool(dir)?;
        if pool.is_empty() {
            return Err(io::Error::other(format!(
                "no trace files to corrupt in {}",
                dir.display()
            )));
        }
        let victim = &pool[(seed % pool.len() as u64) as usize];
        return apply(victim, kind, seed);
    }
    if kind.is_wire_fault() {
        return Err(io::Error::other(format!(
            "{kind:?} is a live wire fault (driven against a running \
             thicketd by the serve chaos suite, not injectable on disk)"
        )));
    }
    if kind == FaultKind::StaleManifest {
        let pool = manifest_pool(dir)?;
        let Some(newest) = pool.last() else {
            return Err(io::Error::other(format!(
                "no manifest to corrupt in {}",
                dir.display()
            )));
        };
        return apply(newest, kind, seed);
    }
    let pool = if kind.is_store_fault() {
        shard_pool(dir)?
    } else {
        victim_pool(dir)?
    };
    if pool.is_empty() {
        return Err(no_victim(dir));
    }
    let victim = &pool[(seed % pool.len() as u64) as usize];
    apply(victim, kind, seed)
}

/// Apply every fault kind that fits the directory, each to a
/// *distinct* victim.
///
/// For a store directory (it contains a `MANIFEST-*` file) the
/// [`FaultKind::STORE`] kinds are applied: [`FaultKind::BitRot`] and
/// [`FaultKind::TornShard`] to two *different* shards (≥ 2 shards
/// required so each classifies unambiguously) and
/// [`FaultKind::StaleManifest`] to the newest manifest. Returns pairs
/// in [`FaultKind::STORE`] order.
///
/// For a loose-JSON ensemble directory the [`FaultKind::ENSEMBLE`]
/// kinds are applied as before, with [`FaultKind::DuplicateProfile`]
/// duplicating a file no other fault touched (so the duplicate's
/// diagnostic is unambiguously "duplicate", not "parse error");
/// requires at least 6 healthy profiles. Returns pairs in
/// [`FaultKind::ENSEMBLE`] order.
pub fn inject_all(dir: impl AsRef<Path>, seed: u64) -> io::Result<Vec<(FaultKind, PathBuf)>> {
    let dir = dir.as_ref();
    if !manifest_pool(dir)?.is_empty() {
        return inject_all_store(dir, seed);
    }
    let pool = victim_pool(dir)?;
    let corrupting: Vec<FaultKind> = FaultKind::ENSEMBLE
        .iter()
        .copied()
        .filter(|k| !matches!(k, FaultKind::DuplicateProfile | FaultKind::Unreadable))
        .collect();
    if pool.len() < corrupting.len() + 1 {
        return Err(io::Error::other(format!(
            "need at least {} profiles in {}, found {}",
            corrupting.len() + 1,
            dir.display(),
            pool.len()
        )));
    }
    let offset = (seed % pool.len() as u64) as usize;
    let mut out = Vec::with_capacity(FaultKind::ALL.len());
    let mut used: Vec<usize> = Vec::new();
    for (i, kind) in corrupting.iter().enumerate() {
        let v = (offset + i) % pool.len();
        used.push(v);
        out.push((*kind, apply(&pool[v], *kind, seed)?));
    }
    // Duplicate a file untouched by the corruptors above.
    let healthy = (0..pool.len())
        .find(|i| !used.contains(i))
        .expect("pool larger than corruptor count");
    out.push((
        FaultKind::DuplicateProfile,
        apply(&pool[healthy], FaultKind::DuplicateProfile, seed)?,
    ));
    out.push((FaultKind::Unreadable, inject(dir, FaultKind::Unreadable, seed)?));
    // Report in ENSEMBLE order for callers that zip against it.
    out.sort_by_key(|(k, _)| FaultKind::ENSEMBLE.iter().position(|a| a == k));
    Ok(out)
}

/// [`inject_all`] for a store directory: bit rot and a torn shard on
/// two distinct shards, plus a stale newest manifest.
fn inject_all_store(dir: &Path, seed: u64) -> io::Result<Vec<(FaultKind, PathBuf)>> {
    let pool = shard_pool(dir)?;
    if pool.len() < 2 {
        return Err(io::Error::other(format!(
            "need at least 2 shards in {}, found {} (save with a smaller shard_bytes)",
            dir.display(),
            pool.len()
        )));
    }
    let rot = (seed % pool.len() as u64) as usize;
    let torn = (rot + 1) % pool.len();
    Ok(vec![
        (
            FaultKind::TornShard,
            apply(&pool[torn], FaultKind::TornShard, seed)?,
        ),
        (FaultKind::BitRot, apply(&pool[rot], FaultKind::BitRot, seed)?),
        (
            FaultKind::StaleManifest,
            inject(dir, FaultKind::StaleManifest, seed)?,
        ),
    ])
}

/// Plant an abandoned coordination file: a garbage-bodied `LOCK` or a
/// pid-0 `pin-*` lease, both with an epoch-old mtime so every ttl has
/// long expired. Writers must take the lock over, GC must reap the
/// lease, and fsck must classify both as typed findings — no salvage,
/// no panic.
fn corrupt_coordination(dir: &Path, kind: FaultKind, seed: u64) -> io::Result<PathBuf> {
    // Seed-derived garbage: not UTF-8, not the lock grammar.
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut garbage = Vec::with_capacity(24);
    for _ in 0..24 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        garbage.push((state >> 56) as u8 | 0x80);
    }
    let path = match kind {
        FaultKind::LockGarbage => dir.join("LOCK"),
        FaultKind::LeaseGarbage => {
            // Well-formed lease name, owner pid 0: pid 0 is never alive,
            // so the lease is stale no matter how the body reads.
            dir.join(format!("pin-{:06}-0-{:016x}", seed % 1_000_000, seed))
        }
        _ => unreachable!("not a coordination fault"),
    };
    std::fs::write(&path, &garbage)?;
    let f = std::fs::OpenOptions::new().append(true).open(&path)?;
    f.set_modified(std::time::UNIX_EPOCH)?;
    Ok(path)
}

/// Corrupt one v3 record's payload and re-frame it so every checksum
/// still verifies: new frame header, updated manifest entry (len +
/// CRC), shifted offsets for any record behind it, refreshed shard
/// digest, and a rewritten (self-CRC'd) manifest. The damage survives
/// every structural check and reaches the payload decoder.
fn corrupt_v3_record(dir: &Path, kind: FaultKind, seed: u64) -> io::Result<PathBuf> {
    use crate::binprofile::{metric_column_spans, PROFILE_MAGIC};
    use crate::store::{crc32c, Manifest, RECORD_HEADER_BYTES};

    let pool = manifest_pool(dir)?;
    let mpath = pool
        .last()
        .ok_or_else(|| io::Error::other(format!("no manifest in {}", dir.display())))?;
    let mut manifest = Manifest::from_file_bytes(&std::fs::read(mpath)?)
        .map_err(io::Error::other)?;
    if manifest.profiles.is_empty() {
        return Err(io::Error::other("store has no records to corrupt"));
    }
    let vi = (seed % manifest.profiles.len() as u64) as usize;
    let entry = manifest.profiles[vi].clone();
    let shard_path = dir.join(&manifest.shards[entry.shard].file);
    let bytes = std::fs::read(&shard_path)?;
    let start = entry.offset as usize;
    let end = start + entry.len as usize;
    let payload = bytes
        .get(start..end)
        .ok_or_else(|| io::Error::other("manifest entry range exceeds shard"))?;
    if !payload.starts_with(PROFILE_MAGIC) {
        return Err(io::Error::other(
            "victim record is not a v3 binary payload (TKP3)",
        ));
    }
    let spans = metric_column_spans(payload)
        .map_err(|e| io::Error::other(format!("victim payload does not walk: {e}")))?;
    if spans.is_empty() {
        return Err(io::Error::other("victim record has no metric columns"));
    }
    let span = &spans[(seed % spans.len() as u64) as usize];
    let mut poisoned = payload.to_vec();
    match kind {
        FaultKind::TruncatedColumn => {
            poisoned.truncate(span.data.start + span.data.len() / 2);
        }
        FaultKind::ColumnCrcRot => {
            poisoned[span.crc_at] ^= 1 << (seed % 8);
        }
        FaultKind::ColumnCountMismatch => {
            // Bump the *last* column's count: with nothing behind it,
            // the declared entries cannot fit the remaining bytes.
            let last = spans.last().unwrap();
            let at = last.count_at;
            let m = u32::from_le_bytes(poisoned[at..at + 4].try_into().unwrap());
            poisoned[at..at + 4].copy_from_slice(&(m + 1).to_le_bytes());
        }
        FaultKind::NameIndexOutOfRange => {
            poisoned[span.name_idx_at..span.name_idx_at + 4]
                .copy_from_slice(&u32::MAX.to_le_bytes());
        }
        _ => return Err(io::Error::other(format!("{kind:?} is not a v3 payload fault"))),
    }

    // Re-frame: splice the poisoned payload in with a fresh header.
    let mut out = Vec::with_capacity(bytes.len());
    out.extend_from_slice(&bytes[..start - RECORD_HEADER_BYTES]);
    out.extend_from_slice(&(poisoned.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&poisoned).to_le_bytes());
    out.extend_from_slice(&poisoned);
    out.extend_from_slice(&bytes[end..]);

    // Manifest fixups: the entry itself, offsets of records behind it
    // in the same shard, and the shard digest.
    let delta = poisoned.len() as i64 - entry.len as i64;
    manifest.profiles[vi].len = poisoned.len() as u32;
    manifest.profiles[vi].crc = crc32c(&poisoned);
    for e in manifest.profiles.iter_mut() {
        if e.shard == entry.shard && e.offset > entry.offset {
            e.offset = (e.offset as i64 + delta) as u64;
        }
    }
    let info = &mut manifest.shards[entry.shard];
    info.bytes = out.len() as u64;
    info.crc = crc32c(&out);
    std::fs::write(&shard_path, &out)?;
    std::fs::write(mpath, manifest.to_file_bytes())?;
    Ok(shard_path)
}

/// Corrupt one file in place (or derive a sibling file for
/// [`FaultKind::DuplicateProfile`]).
fn apply(victim: &Path, kind: FaultKind, seed: u64) -> io::Result<PathBuf> {
    match kind {
        FaultKind::Truncate => {
            let bytes = std::fs::read(victim)?;
            if bytes.len() < 2 {
                return Err(io::Error::other("file too small to truncate"));
            }
            // Any proper prefix of a compact `{…}` document is invalid.
            let cut = 1 + (seed % (bytes.len() as u64 - 1)) as usize;
            std::fs::write(victim, &bytes[..cut])?;
            Ok(victim.to_path_buf())
        }
        FaultKind::FlipByte => {
            let mut bytes = std::fs::read(victim)?;
            let quotes: Vec<usize> = bytes
                .iter()
                .enumerate()
                .filter(|(_, b)| **b == b'"')
                .map(|(i, _)| i)
                .collect();
            if quotes.is_empty() {
                return Err(io::Error::other("no string delimiters to mangle"));
            }
            // Knocking out a string delimiter guarantees a parse error
            // while keeping the bytes valid UTF-8 (so the failure is a
            // *parse* diagnostic, not an I/O decode error).
            bytes[quotes[(seed % quotes.len() as u64) as usize]] = b'#';
            std::fs::write(victim, &bytes)?;
            Ok(victim.to_path_buf())
        }
        FaultKind::DropMetrics => edit_json(victim, |doc| {
            let nodes = member_mut(doc, "nodes")?;
            let Json::Arr(items) = nodes else {
                return Err("nodes is not an array".into());
            };
            if items.is_empty() {
                return Err("no nodes to strip".into());
            }
            let i = (seed % items.len() as u64) as usize;
            let Json::Obj(members) = &mut items[i] else {
                return Err("node is not an object".into());
            };
            members.retain(|(k, _)| k != "metrics");
            Ok(())
        }),
        FaultKind::NonFinite => {
            const MARKER: &str = "__THICKET_INF__";
            edit_json(victim, |doc| {
                let nodes = member_mut(doc, "nodes")?;
                let Json::Arr(items) = nodes else {
                    return Err("nodes is not an array".into());
                };
                // Nodes that actually carry a metric to poison.
                let candidates: Vec<usize> = items
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| {
                        n.get("metrics")
                            .and_then(Json::as_obj)
                            .is_some_and(|m| !m.is_empty())
                    })
                    .map(|(i, _)| i)
                    .collect();
                if candidates.is_empty() {
                    return Err("no measured nodes to poison".into());
                }
                let i = candidates[(seed % candidates.len() as u64) as usize];
                let metrics = member_mut(&mut items[i], "metrics")?;
                let Json::Obj(members) = metrics else {
                    return Err("metrics is not an object".into());
                };
                members[0].1 = Json::Str(MARKER.into());
                Ok(())
            })?;
            // `1e999` overflows to +inf on parse; no finite Json::Num can
            // express that, so splice the literal in textually.
            let text = std::fs::read_to_string(victim)?;
            std::fs::write(victim, text.replace(&format!("\"{MARKER}\""), "1e999"))?;
            Ok(victim.to_path_buf())
        }
        FaultKind::EmptyCallTree => edit_json(victim, |doc| {
            *member_mut(doc, "nodes")? = Json::Arr(Vec::new());
            *member_mut(doc, "roots")? = Json::Arr(Vec::new());
            Ok(())
        }),
        FaultKind::DuplicateProfile => {
            let name = victim
                .file_name()
                .ok_or_else(|| io::Error::other("victim has no file name"))?
                .to_string_lossy()
                .into_owned();
            // `zz-` sorts after `profile-*`, so the *copy* is the one the
            // lenient loader reports as the duplicate.
            let dup = victim.with_file_name(format!("zz-duplicate-{name}"));
            std::fs::copy(victim, &dup)?;
            Ok(dup)
        }
        FaultKind::Unreadable => {
            let dup = victim.with_file_name(format!("zz-unreadable-{seed}.json"));
            std::fs::create_dir_all(&dup)?;
            Ok(dup)
        }
        FaultKind::TornShard => {
            let bytes = std::fs::read(victim)?;
            let ranges = shard_record_ranges(&bytes);
            if ranges.is_empty() {
                return Err(io::Error::other("shard has no records to tear"));
            }
            // Cut inside a seed-chosen record's payload, so the frame
            // promises more bytes than the file holds.
            let (start, len) = ranges[(seed % ranges.len() as u64) as usize];
            let cut = start + len / 2;
            std::fs::write(victim, &bytes[..cut])?;
            Ok(victim.to_path_buf())
        }
        FaultKind::BitRot => {
            let mut bytes = std::fs::read(victim)?;
            let ranges = shard_record_ranges(&bytes);
            if ranges.is_empty() {
                return Err(io::Error::other("shard has no records to rot"));
            }
            // Flip one payload bit; CRC32C catches any single-bit flip.
            let (start, len) = ranges[(seed % ranges.len() as u64) as usize];
            if len == 0 {
                return Err(io::Error::other("record payload is empty"));
            }
            let byte = start + (seed as usize / 8) % len;
            bytes[byte] ^= 1 << (seed % 8);
            std::fs::write(victim, &bytes)?;
            Ok(victim.to_path_buf())
        }
        FaultKind::StaleManifest => {
            // Tear the commit record in half: the self-CRC no longer
            // verifies, so readers must fall back a generation.
            let bytes = std::fs::read(victim)?;
            if bytes.len() < 2 {
                return Err(io::Error::other("manifest too small to tear"));
            }
            std::fs::write(victim, &bytes[..bytes.len() / 2])?;
            Ok(victim.to_path_buf())
        }
        FaultKind::TruncatedColumn
        | FaultKind::ColumnCrcRot
        | FaultKind::ColumnCountMismatch
        | FaultKind::NameIndexOutOfRange => {
            Err(io::Error::other("v3 payload faults are store-level (use inject)"))
        }
        FaultKind::LockGarbage | FaultKind::LeaseGarbage => {
            Err(io::Error::other("coordination faults are store-level (use inject)"))
        }
        FaultKind::TornFrame
        | FaultKind::OversizedFrame
        | FaultKind::SlowLoris
        | FaultKind::ConnectionKill
        | FaultKind::DaemonKill => {
            Err(io::Error::other("wire faults are live (serve chaos suite)"))
        }
        FaultKind::TornTrace => {
            // Cut inside a seed-chosen event line: the file ends with a
            // partial line and no newline, like a tracer killed
            // mid-write.
            let text = std::fs::read_to_string(victim)?;
            let lines = event_line_spans(&text);
            if lines.is_empty() {
                return Err(io::Error::other("trace has no event lines to tear"));
            }
            let (start, end) = lines[(seed % lines.len() as u64) as usize];
            // At least one byte into the line, strictly before its
            // newline, so the tail is a recognizably partial line.
            let cut = start + 1 + (seed as usize) % (end - start - 1).max(1);
            std::fs::write(victim, &text.as_bytes()[..cut])?;
            Ok(victim.to_path_buf())
        }
        FaultKind::ShuffledEvents => {
            // Swap the timestamps of two consecutive events on one
            // rank: its clock regresses at the second one.
            let text = std::fs::read_to_string(victim)?;
            let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
            let events: Vec<(usize, u32, u64)> = lines
                .iter()
                .enumerate()
                .filter_map(|(i, l)| parse_event_line(l).map(|(r, t)| (i, r, t)))
                .collect();
            // Consecutive same-rank pairs with strictly increasing time.
            let pairs: Vec<(usize, usize)> = events
                .iter()
                .enumerate()
                .filter_map(|(k, &(i, r, t))| {
                    events[k + 1..]
                        .iter()
                        .find(|&&(_, r2, _)| r2 == r)
                        .filter(|&&(_, _, t2)| t2 > t)
                        .map(|&(j, _, _)| (i, j))
                })
                .collect();
            if pairs.is_empty() {
                return Err(io::Error::other(
                    "trace has no increasing same-rank event pair to shuffle",
                ));
            }
            let (i, j) = pairs[(seed % pairs.len() as u64) as usize];
            let ti = parse_event_line(&lines[i]).unwrap().1;
            let tj = parse_event_line(&lines[j]).unwrap().1;
            lines[i] = swap_event_time(&lines[i], tj);
            lines[j] = swap_event_time(&lines[j], ti);
            std::fs::write(victim, lines.join("\n") + "\n")?;
            Ok(victim.to_path_buf())
        }
        FaultKind::UnbalancedTrace => {
            // Drop one leave line: that rank ends with an open region.
            let text = std::fs::read_to_string(victim)?;
            let lines: Vec<&str> = text.lines().collect();
            let leaves: Vec<usize> = lines
                .iter()
                .enumerate()
                .filter(|(_, l)| l.starts_with("L "))
                .map(|(i, _)| i)
                .collect();
            if leaves.is_empty() {
                return Err(io::Error::other("trace has no leave lines to drop"));
            }
            let drop = leaves[(seed % leaves.len() as u64) as usize];
            let kept: Vec<&str> = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, l)| *l)
                .collect();
            std::fs::write(victim, kept.join("\n") + "\n")?;
            Ok(victim.to_path_buf())
        }
    }
}

/// `(start, end-with-newline)` byte spans of every `E `/`L ` line.
fn event_line_spans(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0;
    for line in text.split_inclusive('\n') {
        let end = start + line.len();
        if line.starts_with("E ") || line.starts_with("L ") {
            spans.push((start, end));
        }
        start = end;
    }
    spans
}

/// `(rank, time_ns)` of an event line, if it is one.
fn parse_event_line(line: &str) -> Option<(u32, u64)> {
    let rest = line
        .strip_prefix("E ")
        .or_else(|| line.strip_prefix("L "))?;
    let mut fields = rest.splitn(3, ' ');
    let rank = fields.next()?.parse().ok()?;
    let time = fields.next()?.parse().ok()?;
    Some((rank, time))
}

/// Rewrite an event line's timestamp field.
fn swap_event_time(line: &str, time_ns: u64) -> String {
    let mut parts: Vec<&str> = line.splitn(4, ' ').collect();
    let new = time_ns.to_string();
    parts[2] = &new;
    parts.join(" ")
}

/// Parse → mutate → rewrite one JSON file.
fn edit_json(
    path: &Path,
    mutate: impl FnOnce(&mut Json) -> Result<(), String>,
) -> io::Result<PathBuf> {
    let text = std::fs::read_to_string(path)?;
    let mut doc = Json::parse(&text)
        .map_err(|e| io::Error::other(format!("victim is not valid JSON: {e}")))?;
    mutate(&mut doc).map_err(io::Error::other)?;
    std::fs::write(path, doc.to_string_compact())?;
    Ok(path.to_path_buf())
}

/// Mutable access to an object member.
fn member_mut<'a>(doc: &'a mut Json, key: &str) -> Result<&'a mut Json, String> {
    let Json::Obj(members) = doc else {
        return Err("document is not an object".into());
    };
    members
        .iter_mut()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing member {key:?}"))
}

// ---------------------------------------------------------------------
// Live-contention chaos schedules.
// ---------------------------------------------------------------------

/// One writer operation in a [`ChaosSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOp {
    /// Append a batch of this many fresh profiles.
    Append {
        /// Batch size (1..=3).
        profiles: usize,
    },
    /// Compact the store.
    Compact,
    /// Append with [`crate::StoreOptions::crash_after`] set to `point`
    /// — the writer dies at that crash point (or commits normally when
    /// `point` exceeds the write's crash-point count, which is itself a
    /// useful case: a "crash" that turns out to be a success).
    CrashedAppend {
        /// Crash point index to inject.
        point: usize,
    },
    /// Compact with a crash injected at `point` (same semantics as
    /// [`ChaosOp::CrashedAppend`]).
    CrashedCompact {
        /// Crash point index to inject.
        point: usize,
    },
}

/// A deterministic, infinite, seed-driven stream of [`ChaosOp`]s —
/// the writer half of a live-contention test. Roughly: 45% appends,
/// 20% compactions, 25% crashed appends, 10% crashed compactions,
/// crash points spread over `0..12` (clamp or mod by the write's
/// actual [`crate::WriteReport::crash_points`] if exactness matters).
///
/// The same seed yields the same schedule on every platform: the
/// generator is the xorshift64* PRNG used elsewhere in this crate.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    state: u64,
}

impl ChaosSchedule {
    /// Schedule for `seed` (any value; 0 is remapped internally).
    pub fn new(seed: u64) -> ChaosSchedule {
        // SplitMix64 finalizer: whiten the seed, never zero.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        ChaosSchedule { state: (z ^ (z >> 31)) | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Iterator for ChaosSchedule {
    type Item = ChaosOp;

    fn next(&mut self) -> Option<ChaosOp> {
        let r = self.next_u64();
        let roll = r % 100;
        let point = ((r >> 32) % 12) as usize;
        let profiles = ((r >> 16) % 3) as usize + 1;
        Some(match roll {
            0..=44 => ChaosOp::Append { profiles },
            45..=64 => ChaosOp::Compact,
            65..=89 => ChaosOp::CrashedAppend { point },
            _ => ChaosOp::CrashedCompact { point },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ensemble::{load_dir, save_ensemble};
    use crate::ingest::Strictness;
    use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};

    fn fresh_dir(name: &str, n: u64) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thicket-faults-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let profiles: Vec<_> = (0..n)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        save_ensemble(&dir, &profiles).unwrap();
        dir
    }

    #[test]
    fn injection_is_deterministic() {
        let a = fresh_dir("det-a", 8);
        let b = fresh_dir("det-b", 8);
        let fa = inject_all(&a, 42).unwrap();
        let fb = inject_all(&b, 42).unwrap();
        let names = |v: &[(FaultKind, PathBuf)]| {
            v.iter()
                .map(|(k, p)| (*k, p.file_name().unwrap().to_string_lossy().into_owned()))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&fa), names(&fb));
        // And the corrupted bytes themselves match.
        for ((_, pa), (_, pb)) in fa.iter().zip(fb.iter()) {
            if pa.is_file() {
                assert_eq!(std::fs::read(pa).unwrap(), std::fs::read(pb).unwrap());
            }
        }
        std::fs::remove_dir_all(a).ok();
        std::fs::remove_dir_all(b).ok();
    }

    #[test]
    fn each_fault_surfaces_as_its_typed_diagnostic() {
        for (i, kind) in FaultKind::ENSEMBLE.iter().enumerate() {
            let dir = fresh_dir(&format!("kind-{i}"), 6);
            let path = inject(&dir, *kind, 7).unwrap();
            let (profiles, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
            assert_eq!(
                report.diagnostics.len(),
                1,
                "{kind:?}: expected exactly one diagnostic, got {report}"
            );
            let diag = &report.diagnostics[0];
            assert!(
                kind.matches(&diag.kind),
                "{kind:?} produced mismatched diagnostic {:?}",
                diag.kind
            );
            assert_eq!(diag.source, path.display().to_string(), "{kind:?}");
            // Duplicate/unreadable faults add a file; the original
            // profiles all survive. Corruptors knock one out.
            let expected = match kind {
                FaultKind::DuplicateProfile | FaultKind::Unreadable => 6,
                _ => 5,
            };
            assert_eq!(profiles.len(), expected, "{kind:?}");
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn inject_all_requires_enough_victims() {
        let dir = fresh_dir("small", 3);
        assert!(inject_all(&dir, 0).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    fn fresh_store(name: &str, n: u64) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thicket-faults-store-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        let profiles: Vec<_> = (0..n)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let opts = crate::StoreOptions {
            shard_bytes: 1, // one record per shard: plenty of victims
            ..crate::StoreOptions::default()
        };
        crate::Store::save_opts(&dir, &profiles, &opts).unwrap();
        dir
    }

    #[test]
    fn store_faults_classify_under_fsck() {
        for (i, kind) in FaultKind::STORE.iter().enumerate() {
            let dir = fresh_store(&format!("kind-{i}"), 4);
            inject(&dir, *kind, 11).unwrap();
            let fsck = crate::Store::fsck(&dir).unwrap();
            assert!(!fsck.is_clean(), "{kind:?} left a clean store");
            let findings: Vec<_> = fsck.findings().collect();
            assert!(
                findings.iter().any(|d| kind.matches(&d.kind)),
                "{kind:?} produced findings {findings:?}"
            );
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn store_inject_all_hits_distinct_victims() {
        let dir = fresh_store("all", 5);
        let faults = inject_all(&dir, 3).unwrap();
        let kinds: Vec<FaultKind> = faults.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, FaultKind::STORE.to_vec());
        // Torn shard and bit rot land on different files.
        assert_ne!(faults[0].1, faults[1].1);
        // With all three at once the manifest is stale, so fsck can
        // only say that much; recover's salvage walk classifies the
        // per-shard damage. Together every fault is accounted for.
        let fsck = crate::Store::fsck(&dir).unwrap();
        assert!(!fsck.is_clean());
        let rec = crate::Store::recover(&dir).unwrap();
        assert_eq!(rec.salvaged, 3, "two records lost to torn + rot");
        for (kind, _) in &faults {
            let classified = fsck.findings().any(|d| kind.matches(&d.kind))
                || rec.report.diagnostics.iter().any(|d| kind.matches(&d.kind));
            assert!(classified, "{kind:?} classified nowhere: {}", rec.report);
        }
        // The recovered store reloads clean.
        let (loaded, rep) = crate::Store::open(&dir).unwrap().load_all().unwrap();
        assert_eq!(loaded.len(), 3);
        assert!(rep.is_clean());
        assert!(crate::Store::fsck(&dir).unwrap().is_clean());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn v3_payload_faults_pass_structural_checks_but_fail_deep_fsck() {
        for (i, kind) in FaultKind::STORE_V3.iter().enumerate() {
            let dir = fresh_store(&format!("v3-{i}"), 4);
            inject(&dir, *kind, 11).unwrap();
            // Every digest was recomputed, so the store still opens and
            // the manifest verifies...
            let reader = crate::Store::open(&dir).unwrap();
            assert_eq!(reader.entries().len(), 4, "{kind:?}");
            // ...but deep fsck runs each payload through the decoder
            // and classifies the damage at the poisoned record.
            let fsck = crate::Store::fsck(&dir).unwrap();
            assert!(!fsck.is_clean(), "{kind:?} left a clean store");
            let findings: Vec<_> = fsck.findings().collect();
            assert!(
                findings.iter().any(|d| kind.matches(&d.kind)),
                "{kind:?} produced findings {findings:?}"
            );
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn store_inject_all_requires_two_shards() {
        let dir = std::env::temp_dir().join("thicket-faults-store-oneshard");
        let _ = std::fs::remove_dir_all(&dir);
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        crate::Store::save(&dir, &[p]).unwrap();
        assert!(inject_all(&dir, 0).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn coordination_faults_classify_and_reap() {
        for (i, kind) in FaultKind::COORDINATION.iter().enumerate() {
            let dir = fresh_store(&format!("coord-{i}"), 3);
            inject(&dir, *kind, 29).unwrap();
            // Every generation is still intact — the damage is pure
            // coordination wreckage...
            let fsck = crate::Store::fsck(&dir).unwrap();
            assert!(!fsck.is_clean(), "{kind:?} left a clean store");
            assert!(fsck.generations.iter().all(|g| g.intact), "{kind:?}");
            assert!(
                fsck.coordination.iter().any(|d| kind.matches(&d.kind)),
                "{kind:?} produced {:?}",
                fsck.coordination
            );
            // ...which readers shrug off, writers take over, and
            // recover reaps without touching a single record.
            let before = crate::Store::open(&dir).unwrap().entries().len();
            let rec = crate::Store::recover(&dir).unwrap();
            assert_eq!(rec.salvaged, 0, "{kind:?}");
            assert!(!rec.removed.is_empty(), "{kind:?} reaped nothing");
            assert!(crate::Store::fsck(&dir).unwrap().is_clean(), "{kind:?}");
            let after = crate::Store::open(&dir).unwrap().entries().len();
            assert_eq!(before, after, "{kind:?} lost records");
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn garbage_lock_does_not_wedge_writers() {
        let dir = fresh_store("lock-takeover", 3);
        inject(&dir, FaultKind::LockGarbage, 5).unwrap();
        // The epoch-old garbage lock is past every ttl: an append takes
        // it over instead of waiting out the timeout.
        let p = simulate_cpu_run(&CpuRunConfig {
            seed: 99,
            ..CpuRunConfig::quartz_default()
        });
        let rep = crate::Store::append(&dir, &[p]).unwrap();
        assert_eq!(rep.appended, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn chaos_schedule_is_deterministic_and_mixed() {
        let a: Vec<ChaosOp> = ChaosSchedule::new(7).take(200).collect();
        let b: Vec<ChaosOp> = ChaosSchedule::new(7).take(200).collect();
        assert_eq!(a, b);
        let c: Vec<ChaosOp> = ChaosSchedule::new(8).take(200).collect();
        assert_ne!(a, c, "different seeds, same schedule");
        // All four op shapes appear in a 200-op window.
        assert!(a.iter().any(|o| matches!(o, ChaosOp::Append { .. })));
        assert!(a.iter().any(|o| matches!(o, ChaosOp::Compact)));
        assert!(a.iter().any(|o| matches!(o, ChaosOp::CrashedAppend { .. })));
        assert!(a.iter().any(|o| matches!(o, ChaosOp::CrashedCompact { .. })));
        // Batch sizes and crash points stay in their documented ranges.
        for op in &a {
            match op {
                ChaosOp::Append { profiles } => assert!((1..=3).contains(profiles)),
                ChaosOp::CrashedAppend { point } | ChaosOp::CrashedCompact { point } => {
                    assert!(*point < 12)
                }
                ChaosOp::Compact => {}
            }
        }
    }

    #[test]
    fn truncation_diagnostic_reports_offset() {
        let dir = fresh_dir("trunc", 6);
        let path = inject(&dir, FaultKind::Truncate, 3).unwrap();
        let cut_len = std::fs::read(&path).unwrap().len();
        let (_, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
        match &report.diagnostics[0].kind {
            DiagKind::Parse { offset, .. } => {
                assert!(*offset <= cut_len, "offset {offset} beyond cut {cut_len}")
            }
            other => panic!("expected parse diagnostic, got {other:?}"),
        }
        std::fs::remove_dir_all(dir).ok();
    }
}
