//! The RAJA Performance Suite simulator (paper §5.1).
//!
//! Each suite kernel is described by its arithmetic intensity (flops and
//! bytes per element per repetition); execution on a [`CpuSpec`] or
//! [`GpuSpec`] follows a roofline model with a cache-capacity bandwidth
//! transition, compiler-optimization code-quality factors, and seeded
//! multiplicative noise. The simulator emits full [`Profile`]s with the
//! same call-tree shape, metrics, and metadata the paper's Caliper + NCU
//! profiles carry.

use crate::machine::{Compiler, CpuSpec, GpuSpec};
use crate::noise::Noise;
use crate::profile::Profile;
use crate::topdown::top_down;
use thicket_graph::{Frame, Graph, NodeId};

/// RAJA Performance Suite execution variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// `Base_Seq`: sequential CPU.
    Sequential,
    /// `Base_OpenMP`: threaded CPU.
    OpenMp,
    /// `Base_CUDA`: GPU.
    Cuda,
}

impl Variant {
    /// Variant name as it appears in metadata/trees.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Sequential => "Sequential",
            Variant::OpenMp => "OpenMP",
            Variant::Cuda => "CUDA",
        }
    }

    /// Call-tree root node name (`Base_Seq`, `Base_OMP`, `Base_CUDA`).
    pub fn root_name(self) -> &'static str {
        match self {
            Variant::Sequential => "Base_Seq",
            Variant::OpenMp => "Base_OMP",
            Variant::Cuda => "Base_CUDA",
        }
    }
}

/// Static description of one suite kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpec {
    /// Kernel name (`Apps_VOL3D`).
    pub name: &'static str,
    /// Suite group (`Apps`, `Lcals`, `Stream`, `Polybench`, `Algorithm`).
    pub group: &'static str,
    /// Double-precision flops per element per rep.
    pub flops_per_elem: f64,
    /// Bytes moved per element per rep.
    pub bytes_per_elem: f64,
    /// Kernel repetitions per pass (Figure 4's `Reps` column).
    pub reps: u32,
    /// Fraction of peak vector throughput the kernel's code reaches at
    /// `-O2` (irregular kernels vectorize poorly).
    pub vec_efficiency: f64,
}

/// The simulated subset of the RAJA Performance Suite: every kernel the
/// paper's figures reference.
pub fn suite() -> Vec<KernelSpec> {
    vec![
        KernelSpec {
            name: "Apps_NODAL_ACCUMULATION_3D",
            group: "Apps",
            flops_per_elem: 9.0,
            bytes_per_elem: 96.0,
            reps: 100,
            vec_efficiency: 0.30,
        },
        KernelSpec {
            name: "Apps_VOL3D",
            group: "Apps",
            flops_per_elem: 72.0,
            bytes_per_elem: 88.0,
            reps: 100,
            vec_efficiency: 0.55,
        },
        KernelSpec {
            name: "Lcals_HYDRO_1D",
            group: "Lcals",
            flops_per_elem: 5.0,
            bytes_per_elem: 40.0,
            reps: 1000,
            vec_efficiency: 0.80,
        },
        KernelSpec {
            name: "Polybench_GESUMMV",
            group: "Polybench",
            flops_per_elem: 4.0,
            bytes_per_elem: 24.0,
            reps: 100,
            vec_efficiency: 0.70,
        },
        KernelSpec {
            name: "Stream_ADD",
            group: "Stream",
            flops_per_elem: 1.0,
            bytes_per_elem: 24.0,
            reps: 1000,
            vec_efficiency: 0.92,
        },
        KernelSpec {
            name: "Stream_COPY",
            group: "Stream",
            flops_per_elem: 0.0,
            bytes_per_elem: 16.0,
            reps: 1000,
            vec_efficiency: 0.95,
        },
        KernelSpec {
            name: "Stream_DOT",
            group: "Stream",
            // sum += a*b is one FMA per element.
            flops_per_elem: 1.0,
            bytes_per_elem: 16.0,
            reps: 2000,
            vec_efficiency: 0.85,
        },
        KernelSpec {
            name: "Stream_MUL",
            group: "Stream",
            flops_per_elem: 1.0,
            bytes_per_elem: 16.0,
            reps: 1000,
            vec_efficiency: 0.85,
        },
        KernelSpec {
            name: "Stream_TRIAD",
            group: "Stream",
            // a = b + s*c is one FMA per element.
            flops_per_elem: 1.0,
            bytes_per_elem: 24.0,
            reps: 1000,
            vec_efficiency: 0.92,
        },
        KernelSpec {
            name: "Algorithm_MEMCPY",
            group: "Algorithm",
            flops_per_elem: 0.0,
            bytes_per_elem: 16.0,
            reps: 100,
            vec_efficiency: 0.98,
        },
        KernelSpec {
            name: "Algorithm_MEMSET",
            group: "Algorithm",
            flops_per_elem: 0.0,
            bytes_per_elem: 8.0,
            reps: 100,
            vec_efficiency: 0.98,
        },
        KernelSpec {
            name: "Algorithm_REDUCE_SUM",
            group: "Algorithm",
            flops_per_elem: 1.0,
            bytes_per_elem: 8.0,
            reps: 100,
            vec_efficiency: 0.85,
        },
        KernelSpec {
            name: "Algorithm_SCAN",
            group: "Algorithm",
            flops_per_elem: 2.0,
            bytes_per_elem: 16.0,
            reps: 100,
            vec_efficiency: 0.60,
        },
    ]
}

/// Look up a kernel spec by name.
pub fn kernel(name: &str) -> Option<KernelSpec> {
    suite().into_iter().find(|k| k.name == name)
}

/// One CPU run configuration of the suite.
#[derive(Debug, Clone)]
pub struct CpuRunConfig {
    /// Target machine.
    pub machine: CpuSpec,
    /// Compiler used to build the executable.
    pub compiler: Compiler,
    /// `-O` level, 0..=3.
    pub opt_level: u32,
    /// OpenMP threads (1 == sequential variant).
    pub threads: u32,
    /// Elements per kernel.
    pub problem_size: u64,
    /// Execution variant recorded in metadata.
    pub variant: Variant,
    /// Noise seed (vary per run to get an ensemble).
    pub seed: u64,
    /// User recorded in metadata.
    pub user: String,
    /// Launch date string recorded in metadata.
    pub launchdate: String,
}

impl CpuRunConfig {
    /// A Quartz sequential clang `-O2` run — a sensible default to tweak.
    pub fn quartz_default() -> Self {
        CpuRunConfig {
            machine: crate::machine::quartz(),
            compiler: Compiler::clang9(),
            opt_level: 2,
            threads: 1,
            problem_size: 1_048_576,
            variant: Variant::Sequential,
            seed: 0,
            user: "John".into(),
            launchdate: "2022-11-30 02:09:27".into(),
        }
    }
}

/// Analytic kernel timing on a CPU (seconds, per full kernel pass).
pub fn cpu_kernel_time(spec: &KernelSpec, cfg: &CpuRunConfig) -> (f64, f64, f64) {
    let n = cfg.problem_size as f64;
    let opt = cfg.compiler.opt_factor(cfg.opt_level);
    let compute_rate = cfg.machine.peak_flops(cfg.threads) * opt * spec.vec_efficiency;
    let ws = n * spec.bytes_per_elem;
    // Unoptimized builds also waste memory traffic (spills, no unrolling).
    let traffic = ws * (1.0 + 0.4 * (1.0 - opt));
    let bw = cfg.machine.mem_bw(ws, cfg.threads);
    let t_flops = if spec.flops_per_elem > 0.0 {
        n * spec.flops_per_elem / compute_rate
    } else {
        // Pure-copy kernels still retire load/store instructions.
        n * 0.5 / compute_rate
    };
    let t_mem = traffic / bw;
    let t_pass = t_flops.max(t_mem) + 1.0e-6;
    (t_pass * spec.reps as f64, t_flops, t_mem)
}

/// Simulate one CPU run of the whole suite, producing a profile whose
/// call tree is `Base_*` → group → kernel with `time (exc)`, `Reps`,
/// `Bytes/Rep`, `Flops/Rep`, and top-down metric columns.
pub fn simulate_cpu_run(cfg: &CpuRunConfig) -> Profile {
    let kernels = suite();
    let mut graph = Graph::new();
    let root = graph.add_root(Frame::with_type(cfg.variant.root_name(), "variant"));
    let mut group_nodes: Vec<(&'static str, NodeId)> = Vec::new();
    let mut kernel_nodes: Vec<(usize, NodeId)> = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        let gnode = match group_nodes.iter().find(|(g, _)| *g == k.group) {
            Some(&(_, id)) => id,
            None => {
                let id = graph.add_child(root, Frame::with_type(k.group, "group"));
                group_nodes.push((k.group, id));
                id
            }
        };
        let id = graph.add_child(gnode, Frame::with_type(k.name, "kernel"));
        kernel_nodes.push((i, id));
    }

    let mut profile = Profile::new(graph);
    let mut noise = Noise::new(cfg.seed ^ 0x5f4dcc3b);
    let mut total = 0.0;
    for (i, id) in kernel_nodes {
        let spec = &kernels[i];
        let (t, t_flops, t_mem) = cpu_kernel_time(spec, cfg);
        let t = t * noise.lognormal(0.015);
        total += t;
        let td = top_down(t_flops, t_mem, &mut noise);
        profile.set_metric(id, "time (exc)", t);
        profile.set_metric(id, "Reps", spec.reps as f64);
        profile.set_metric(
            id,
            "Bytes/Rep",
            spec.bytes_per_elem * cfg.problem_size as f64,
        );
        profile.set_metric(
            id,
            "Flops/Rep",
            spec.flops_per_elem * cfg.problem_size as f64,
        );
        profile.set_metric(id, "Retiring", td.retiring);
        profile.set_metric(id, "Frontend bound", td.frontend_bound);
        profile.set_metric(id, "Backend bound", td.backend_bound);
        profile.set_metric(id, "Bad speculation", td.bad_speculation);
    }
    // Inclusive time on interior nodes.
    let g = profile.graph().clone();
    for id in g.preorder() {
        if !g.node(id).children().is_empty() {
            let inc: f64 = descendant_sum(&g, id, &profile);
            profile.set_metric(id, "time (inc)", inc);
        }
    }
    let _ = total;

    profile.set_metadata("cluster", cfg.machine.cluster.as_str());
    profile.set_metadata("systype", cfg.machine.systype.as_str());
    profile.set_metadata("problem size", cfg.problem_size as i64);
    profile.set_metadata("compiler", cfg.compiler.name.as_str());
    profile.set_metadata("compiler optimization", format!("-O{}", cfg.opt_level));
    profile.set_metadata("omp num threads", cfg.threads as i64);
    profile.set_metadata("raja version", "2022.03.0");
    profile.set_metadata("variant", cfg.variant.name());
    profile.set_metadata("launchdate", cfg.launchdate.as_str());
    profile.set_metadata("user", cfg.user.as_str());
    profile.set_metadata("seed", cfg.seed as i64);
    profile
}

fn descendant_sum(g: &thicket_graph::Graph, id: NodeId, p: &Profile) -> f64 {
    let mut acc = p.metric(id, "time (exc)").unwrap_or(0.0);
    for &c in g.node(id).children() {
        acc += descendant_sum(g, c, p);
    }
    acc
}

/// One GPU (CUDA) run configuration.
#[derive(Debug, Clone)]
pub struct GpuRunConfig {
    /// Host machine (Lassen).
    pub machine: CpuSpec,
    /// GPU model.
    pub gpu: GpuSpec,
    /// Host compiler.
    pub compiler: Compiler,
    /// CUDA compiler version string.
    pub cuda_compiler: String,
    /// CUDA thread-block size.
    pub block_size: u32,
    /// Elements per kernel.
    pub problem_size: u64,
    /// Noise seed.
    pub seed: u64,
    /// User recorded in metadata.
    pub user: String,
    /// Launch date string.
    pub launchdate: String,
}

impl GpuRunConfig {
    /// A Lassen CUDA block-256 run.
    pub fn lassen_default() -> Self {
        GpuRunConfig {
            machine: crate::machine::lassen_cpu(),
            gpu: crate::machine::lassen_gpu(),
            compiler: Compiler::xl16(),
            cuda_compiler: "nvcc-11.2.152".into(),
            block_size: 256,
            problem_size: 1_048_576,
            seed: 0,
            user: "Jane".into(),
            launchdate: "2022-11-16 00:45:08".into(),
        }
    }
}

/// GPU kernel timing (seconds per full pass) plus utilization shares.
pub fn gpu_kernel_time(spec: &KernelSpec, cfg: &GpuRunConfig) -> (f64, f64, f64) {
    let n = cfg.problem_size as f64;
    let eff = cfg.gpu.block_efficiency(cfg.block_size);
    let t_mem = n * spec.bytes_per_elem / (cfg.gpu.dram_bw_gbs * 1e9 * eff);
    let t_flops = n * spec.flops_per_elem / (cfg.gpu.peak_flops * eff * 0.5);
    let t_pass = t_mem.max(t_flops) + cfg.gpu.launch_overhead_s;
    (t_pass * spec.reps as f64, t_flops, t_mem)
}

/// Simulate one CUDA run of the suite: tree `Base_CUDA` → group → kernel →
/// `<kernel>.block_<N>` leaf, with `time (gpu)` and NCU-style metrics.
pub fn simulate_gpu_run(cfg: &GpuRunConfig) -> Profile {
    let kernels = suite();
    let mut graph = Graph::new();
    let root = graph.add_root(Frame::with_type("Base_CUDA", "variant"));
    let mut group_nodes: Vec<(&'static str, NodeId)> = Vec::new();
    let mut leaves: Vec<(usize, NodeId, NodeId)> = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        let gnode = match group_nodes.iter().find(|(g, _)| *g == k.group) {
            Some(&(_, id)) => id,
            None => {
                let id = graph.add_child(root, Frame::with_type(k.group, "group"));
                group_nodes.push((k.group, id));
                id
            }
        };
        let knode = graph.add_child(gnode, Frame::with_type(k.name, "kernel"));
        let leaf = graph.add_child(
            knode,
            Frame::with_type(format!("{}.block_{}", k.name, cfg.block_size), "kernel"),
        );
        leaves.push((i, knode, leaf));
    }

    let mut profile = Profile::new(graph);
    let mut noise = Noise::new(cfg.seed ^ 0x9e3779b9);
    for (i, knode, leaf) in leaves {
        let spec = &kernels[i];
        let (t, t_flops, t_mem) = gpu_kernel_time(spec, cfg);
        let t = t * noise.lognormal(0.04);
        let busy = t_mem.max(t_flops).max(1e-12);
        let mem_util = (t_mem / busy * 100.0 * 0.92).min(99.0);
        let sm_util = (t_flops / busy * 100.0 * 0.75).clamp(2.0, 99.0);
        for id in [knode, leaf] {
            profile.set_metric(id, "time (gpu)", t);
            profile.set_metric(id, "Reps", spec.reps as f64);
            profile.set_metric(
                id,
                "gpu__compute_memory_throughput",
                (mem_util * noise.lognormal(0.02)).min(99.9),
            );
            profile.set_metric(
                id,
                "gpu__dram_throughput",
                (mem_util * 0.93 * noise.lognormal(0.02)).min(99.9),
            );
            profile.set_metric(id, "sm__throughput", sm_util * noise.lognormal(0.02));
            profile.set_metric(
                id,
                "sm__warps_active",
                cfg.gpu.occupancy(cfg.block_size) * noise.lognormal(0.03),
            );
            // A few of NCU's "hundreds of detailed metrics" (§5.1.2):
            // transferred bytes, issue activity, launch geometry, raw time.
            let n = cfg.problem_size as f64;
            profile.set_metric(id, "dram__bytes.sum", n * spec.bytes_per_elem);
            profile.set_metric(
                id,
                "l1tex__t_bytes.sum",
                n * spec.bytes_per_elem * 1.18 * noise.lognormal(0.02),
            );
            profile.set_metric(
                id,
                "sm__issue_active.avg.pct_of_peak_sustained_elapsed",
                (sm_util * 1.4 * noise.lognormal(0.02)).min(99.0),
            );
            profile.set_metric(id, "launch__block_size", cfg.block_size as f64);
            profile.set_metric(
                id,
                "launch__grid_size",
                (n / cfg.block_size as f64).ceil(),
            );
            profile.set_metric(id, "gpu__time_duration.sum", t);
        }
    }

    profile.set_metadata("cluster", cfg.machine.cluster.as_str());
    profile.set_metadata("systype", cfg.machine.systype.as_str());
    profile.set_metadata("problem size", cfg.problem_size as i64);
    profile.set_metadata("compiler", cfg.compiler.name.as_str());
    profile.set_metadata("cuda compiler", cfg.cuda_compiler.as_str());
    profile.set_metadata("block size", cfg.block_size as i64);
    profile.set_metadata("raja version", "2022.03.0");
    profile.set_metadata("variant", "CUDA");
    profile.set_metadata("launchdate", cfg.launchdate.as_str());
    profile.set_metadata("user", cfg.user.as_str());
    profile.set_metadata("seed", cfg.seed as i64);
    profile
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_paper_kernels() {
        let names: Vec<&str> = suite().iter().map(|k| k.name).collect();
        for needed in [
            "Apps_NODAL_ACCUMULATION_3D",
            "Apps_VOL3D",
            "Lcals_HYDRO_1D",
            "Polybench_GESUMMV",
            "Stream_ADD",
            "Stream_COPY",
            "Stream_DOT",
            "Stream_MUL",
            "Stream_TRIAD",
            "Algorithm_MEMCPY",
        ] {
            assert!(names.contains(&needed), "missing {needed}");
        }
        assert!(kernel("Apps_VOL3D").is_some());
        assert!(kernel("nope").is_none());
    }

    #[test]
    fn cpu_profile_structure() {
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let g = p.graph();
        assert_eq!(g.roots().len(), 1);
        assert_eq!(g.node(g.roots()[0]).name(), "Base_Seq");
        let vol3d = g.find_by_name("Apps_VOL3D").unwrap();
        assert!(p.metric(vol3d, "time (exc)").unwrap() > 0.0);
        assert_eq!(p.metric(vol3d, "Reps"), Some(100.0));
        // Top-down categories sum to ~1.
        let sum = p.metric(vol3d, "Retiring").unwrap()
            + p.metric(vol3d, "Frontend bound").unwrap()
            + p.metric(vol3d, "Backend bound").unwrap()
            + p.metric(vol3d, "Bad speculation").unwrap();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let b = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let n = a.graph().find_by_name("Stream_DOT").unwrap();
        assert_eq!(a.metric(n, "time (exc)"), b.metric(n, "time (exc)"));
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.seed = 1;
        let c = simulate_cpu_run(&cfg);
        assert_ne!(a.metric(n, "time (exc)"), c.metric(n, "time (exc)"));
    }

    #[test]
    fn bigger_problems_take_longer() {
        let mut small = CpuRunConfig::quartz_default();
        small.problem_size = 1_048_576;
        let mut big = small.clone();
        big.problem_size = 8_388_608;
        let ps = simulate_cpu_run(&small);
        let pb = simulate_cpu_run(&big);
        let n = ps.graph().find_by_name("Lcals_HYDRO_1D").unwrap();
        let nb = pb.graph().find_by_name("Lcals_HYDRO_1D").unwrap();
        let ts = ps.metric(n, "time (exc)").unwrap();
        let tb = pb.metric(nb, "time (exc)").unwrap();
        assert!(tb > ts * 4.0, "8x data should be >4x slower ({ts} -> {tb})");
    }

    #[test]
    fn o0_much_slower_than_o2() {
        let mut o0 = CpuRunConfig::quartz_default();
        o0.opt_level = 0;
        let mut o2 = CpuRunConfig::quartz_default();
        o2.opt_level = 2;
        let p0 = simulate_cpu_run(&o0);
        let p2 = simulate_cpu_run(&o2);
        let k0 = p0.graph().find_by_name("Apps_VOL3D").unwrap();
        let k2 = p2.graph().find_by_name("Apps_VOL3D").unwrap();
        let speedup = p0.metric(k0, "time (exc)").unwrap() / p2.metric(k2, "time (exc)").unwrap();
        assert!(speedup > 2.0, "speedup over -O0 = {speedup}");
    }

    #[test]
    fn vol3d_more_retiring_than_hydro() {
        let mut cfg = CpuRunConfig::quartz_default();
        cfg.problem_size = 8_388_608;
        let p = simulate_cpu_run(&cfg);
        let vol = p.graph().find_by_name("Apps_VOL3D").unwrap();
        let hyd = p.graph().find_by_name("Lcals_HYDRO_1D").unwrap();
        assert!(p.metric(vol, "Retiring").unwrap() > p.metric(hyd, "Retiring").unwrap());
        assert!(p.metric(hyd, "Backend bound").unwrap() > 0.6);
    }

    #[test]
    fn backend_bound_grows_with_problem_size() {
        let mut small = CpuRunConfig::quartz_default();
        small.problem_size = 1_048_576;
        let mut big = small.clone();
        big.problem_size = 8_388_608;
        let ps = simulate_cpu_run(&small);
        let pb = simulate_cpu_run(&big);
        for name in ["Apps_NODAL_ACCUMULATION_3D", "Lcals_HYDRO_1D", "Stream_DOT"] {
            let ns = ps.graph().find_by_name(name).unwrap();
            let nb = pb.graph().find_by_name(name).unwrap();
            assert!(
                pb.metric(nb, "Backend bound").unwrap()
                    >= ps.metric(ns, "Backend bound").unwrap() - 0.02,
                "{name} backend bound should grow with size"
            );
        }
    }

    #[test]
    fn gpu_profile_structure_and_speedup() {
        let mut cpu = CpuRunConfig::quartz_default();
        cpu.problem_size = 8_388_608;
        let mut gpu = GpuRunConfig::lassen_default();
        gpu.problem_size = 8_388_608;
        let pc = simulate_cpu_run(&cpu);
        let pg = simulate_gpu_run(&gpu);
        // Tree has block-size leaves.
        assert!(pg
            .graph()
            .find_by_name("Apps_VOL3D.block_256")
            .is_some());
        // Both paper kernels are faster on the GPU, and VOL3D gains more.
        let mut speedups = Vec::new();
        for name in ["Apps_VOL3D", "Lcals_HYDRO_1D"] {
            let nc = pc.graph().find_by_name(name).unwrap();
            let ng = pg.graph().find_by_name(name).unwrap();
            let s = pc.metric(nc, "time (exc)").unwrap() / pg.metric(ng, "time (gpu)").unwrap();
            assert!(s > 1.0, "{name} should speed up on the GPU, got {s}");
            speedups.push(s);
        }
        assert!(
            speedups[0] > speedups[1],
            "VOL3D speedup {} should beat HYDRO_1D {}",
            speedups[0],
            speedups[1]
        );
        // NCU metrics present and bounded.
        let n = pg.graph().find_by_name("Lcals_HYDRO_1D.block_256").unwrap();
        let dram = pg.metric(n, "gpu__dram_throughput").unwrap();
        assert!(dram > 50.0 && dram < 100.0, "dram = {dram}");
        let sm = pg.metric(n, "sm__throughput").unwrap();
        assert!(sm < 30.0, "memory-bound kernel sm = {sm}");
    }

    #[test]
    fn block_256_beats_128() {
        let mut b128 = GpuRunConfig::lassen_default();
        b128.block_size = 128;
        let b256 = GpuRunConfig::lassen_default();
        let p1 = simulate_gpu_run(&b128);
        let p2 = simulate_gpu_run(&b256);
        let n1 = p1.graph().find_by_name("Stream_TRIAD.block_128").unwrap();
        let n2 = p2.graph().find_by_name("Stream_TRIAD.block_256").unwrap();
        assert!(p1.metric(n1, "time (gpu)").unwrap() > p2.metric(n2, "time (gpu)").unwrap());
    }

    #[test]
    fn openmp_scales_on_large_problems() {
        let mut seq = CpuRunConfig::quartz_default();
        seq.problem_size = 8_388_608;
        let mut omp = seq.clone();
        omp.threads = 36;
        omp.variant = Variant::OpenMp;
        let ps = simulate_cpu_run(&seq);
        let po = simulate_cpu_run(&omp);
        assert_eq!(po.graph().node(po.graph().roots()[0]).name(), "Base_OMP");
        for name in ["Apps_VOL3D", "Lcals_HYDRO_1D", "Stream_TRIAD"] {
            let ns = ps.graph().find_by_name(name).unwrap();
            let no = po.graph().find_by_name(name).unwrap();
            let speedup =
                ps.metric(ns, "time (exc)").unwrap() / po.metric(no, "time (exc)").unwrap();
            assert!(speedup > 1.5, "{name}: OMP speedup {speedup}");
        }
        // Compute-bound kernels scale further than bandwidth-bound ones.
        let sp = |p: &Profile, n: &str| {
            let id = p.graph().find_by_name(n).unwrap();
            p.metric(id, "time (exc)").unwrap()
        };
        let vol = sp(&ps, "Apps_VOL3D") / sp(&po, "Apps_VOL3D");
        let copy = sp(&ps, "Stream_COPY") / sp(&po, "Stream_COPY");
        assert!(vol > copy, "VOL3D {vol} should out-scale COPY {copy}");
    }

    #[test]
    fn extended_ncu_metrics_present() {
        let p = simulate_gpu_run(&GpuRunConfig::lassen_default());
        let n = p.graph().find_by_name("Stream_TRIAD.block_256").unwrap();
        for metric in [
            "dram__bytes.sum",
            "l1tex__t_bytes.sum",
            "sm__issue_active.avg.pct_of_peak_sustained_elapsed",
            "launch__block_size",
            "launch__grid_size",
            "gpu__time_duration.sum",
        ] {
            assert!(p.metric(n, metric).is_some(), "missing {metric}");
        }
        assert_eq!(p.metric(n, "launch__block_size"), Some(256.0));
        // l1tex traffic exceeds dram traffic (cache hits add up).
        assert!(
            p.metric(n, "l1tex__t_bytes.sum").unwrap()
                > p.metric(n, "dram__bytes.sum").unwrap()
        );
    }

    #[test]
    fn metadata_complete() {
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        for key in [
            "cluster",
            "systype",
            "problem size",
            "compiler",
            "raja version",
            "variant",
            "launchdate",
            "user",
        ] {
            assert!(p.metadata(key).is_some(), "missing metadata {key}");
        }
        let g = simulate_gpu_run(&GpuRunConfig::lassen_default());
        assert!(g.metadata("cuda compiler").is_some());
        assert!(g.metadata("block size").is_some());
    }

    #[test]
    fn inclusive_time_present_on_interior_nodes() {
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let root = p.graph().roots()[0];
        let inc = p.metric(root, "time (inc)").unwrap();
        // Root inclusive equals the sum of all kernel exclusive times.
        let total: f64 = p
            .graph()
            .preorder()
            .into_iter()
            .filter_map(|id| p.metric(id, "time (exc)"))
            .sum();
        assert!((inc - total).abs() < 1e-9);
    }
}
