//! The ingest failure model: strictness contracts and structured
//! per-source diagnostics.
//!
//! Production campaigns (the paper's Figure 13 study joins 560 profiles
//! collected across machines, tools, and scales) routinely contain
//! truncated, corrupt, or schema-drifted profiles. Ingest therefore
//! offers two contracts, chosen through [`Strictness`]:
//!
//! * **fail-fast** — the first unhealthy source aborts the whole load
//!   with a typed error identifying the offending path/profile. The
//!   "first" failure is deterministic (lowest source in path/input
//!   order) for any worker-thread count.
//! * **lenient** — every source is attempted; the healthy subset is
//!   returned together with an [`IngestReport`] carrying one typed
//!   [`Diagnostic`] per dropped source. The report is byte-identical
//!   across thread counts, and an optional `max_errors` budget upgrades
//!   a too-broken ensemble back into a hard error.
//!
//! Every failure path surfaces as a [`DiagKind`]; nothing panics and
//! nothing is silently dropped.

use crate::profile::ProfileError;
use std::fmt;

/// The ingest contract: what happens when a source is unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strictness {
    /// First unhealthy source aborts the load with a typed error.
    FailFast,
    /// Unhealthy sources are dropped and reported.
    Lenient {
        /// Maximum number of diagnostics tolerated before the load is
        /// aborted anyway (an ensemble that is mostly corrupt is more
        /// likely a caller bug than bit rot). `usize::MAX` ⇒ unlimited.
        max_errors: usize,
    },
}

impl Strictness {
    /// Lenient with an unlimited error budget.
    pub fn lenient() -> Strictness {
        Strictness::Lenient {
            max_errors: usize::MAX,
        }
    }
}

/// What went wrong with one source (a file path or an in-memory
/// profile), classified for programmatic handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiagKind {
    /// The source could not be read.
    Io(String),
    /// The source is not valid JSON; `offset` is the failing byte.
    Parse {
        /// Byte offset of the parse failure.
        offset: usize,
        /// Parser message.
        message: String,
    },
    /// Valid JSON that does not satisfy the profile schema (missing or
    /// mistyped members, bad tree shape, empty call tree, …).
    Schema(String),
    /// The source's profile id collides with an earlier source.
    DuplicateProfile {
        /// The earlier source that already claimed the id.
        first: String,
    },
    /// A metric value is NaN or infinite.
    NonFiniteMetric {
        /// Node index carrying the bad value.
        node: usize,
        /// Metric name.
        metric: String,
    },
    /// The worker processing this source panicked (captured, never
    /// propagated); the panic message.
    WorkerPanic(String),
    /// A store shard record's payload does not match its CRC32C
    /// checksum (bit rot, or a header corrupted into misframing).
    ChecksumMismatch {
        /// Shard file name carrying the bad record.
        shard: String,
        /// Zero-based record index within the shard.
        record: usize,
    },
    /// A store shard ends mid-record: the framing promises more bytes
    /// than the file holds (a write torn by a crash).
    TornShard {
        /// Shard file name that is torn.
        shard: String,
    },
    /// A store manifest exists but cannot be verified (torn, corrupt,
    /// or referencing shards that no longer check out).
    StaleManifest {
        /// Manifest file name that failed verification.
        manifest: String,
    },
    /// A store commit lock whose owner is gone (dead pid, or an
    /// unreadable body past its ttl) — a writer crashed mid-commit.
    StaleLock {
        /// Lock file name (always `LOCK` today).
        lock: String,
    },
    /// A reader lease whose owner died or stopped heartbeating — it no
    /// longer pins its generation against garbage collection.
    StaleLease {
        /// Lease (`pin-*`) file name.
        lease: String,
    },
    /// A trace stream ends or breaks mid-line: a malformed event line,
    /// a missing header, or a final line cut off before its newline (a
    /// write torn by a crash).
    TornTrace {
        /// 1-based line number of the damage.
        line: u64,
        /// What the parser found there.
        message: String,
    },
    /// A trace event's timestamp regresses on its rank's clock —
    /// events were reordered in flight or the stream was stitched
    /// badly. The rank is poisoned from this event on.
    OutOfOrderEvent {
        /// Rank whose clock regressed.
        rank: u32,
        /// Timestamp (ns) that moved backwards.
        time_ns: u64,
    },
    /// A rank's enter/leave events do not balance: a leave with no
    /// open region, or regions still open when the stream ends.
    UnbalancedStream {
        /// Rank with the unbalanced stream.
        rank: u32,
        /// What was unbalanced about it.
        detail: String,
    },
}

impl DiagKind {
    /// Classify a [`ProfileError`] (unwrapping file-context layers).
    pub fn from_profile_error(e: &ProfileError) -> DiagKind {
        match e.root_cause() {
            ProfileError::Io(io) => DiagKind::Io(io.to_string()),
            ProfileError::Json(j) => DiagKind::Parse {
                offset: j.offset,
                message: j.message.clone(),
            },
            ProfileError::Malformed(m) => DiagKind::Schema(m.clone()),
            ProfileError::NonFinite { node, metric } => DiagKind::NonFiniteMetric {
                node: *node,
                metric: metric.clone(),
            },
            ProfileError::Panicked(m) => DiagKind::WorkerPanic(m.clone()),
            ProfileError::InFile { .. } => unreachable!("root_cause unwraps InFile"),
        }
    }
}

impl fmt::Display for DiagKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagKind::Io(m) => write!(f, "io error: {m}"),
            DiagKind::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            DiagKind::Schema(m) => write!(f, "schema mismatch: {m}"),
            DiagKind::DuplicateProfile { first } => {
                write!(f, "duplicate profile id (first seen in {first})")
            }
            DiagKind::NonFiniteMetric { node, metric } => {
                write!(f, "non-finite metric {metric:?} on node {node}")
            }
            DiagKind::WorkerPanic(m) => write!(f, "worker panicked: {m}"),
            DiagKind::ChecksumMismatch { shard, record } => {
                write!(f, "checksum mismatch in {shard} record {record}")
            }
            DiagKind::TornShard { shard } => write!(f, "torn shard {shard}"),
            DiagKind::StaleManifest { manifest } => {
                write!(f, "stale manifest {manifest}")
            }
            DiagKind::StaleLock { lock } => write!(f, "stale lock {lock}"),
            DiagKind::StaleLease { lease } => write!(f, "stale lease {lease}"),
            DiagKind::TornTrace { line, message } => {
                write!(f, "torn trace at line {line}: {message}")
            }
            DiagKind::OutOfOrderEvent { rank, time_ns } => {
                write!(f, "out-of-order event on rank {rank} (clock regressed at {time_ns} ns)")
            }
            DiagKind::UnbalancedStream { rank, detail } => {
                write!(f, "unbalanced event stream on rank {rank}: {detail}")
            }
        }
    }
}

impl DiagKind {
    /// Short stable label for this kind (used by
    /// [`IngestReport::summary`] counts).
    pub fn label(&self) -> &'static str {
        match self {
            DiagKind::Io(_) => "io",
            DiagKind::Parse { .. } => "parse",
            DiagKind::Schema(_) => "schema",
            DiagKind::DuplicateProfile { .. } => "duplicate-profile",
            DiagKind::NonFiniteMetric { .. } => "non-finite-metric",
            DiagKind::WorkerPanic(_) => "worker-panic",
            DiagKind::ChecksumMismatch { .. } => "checksum-mismatch",
            DiagKind::TornShard { .. } => "torn-shard",
            DiagKind::StaleManifest { .. } => "stale-manifest",
            DiagKind::StaleLock { .. } => "stale-lock",
            DiagKind::StaleLease { .. } => "stale-lease",
            DiagKind::TornTrace { .. } => "torn-trace",
            DiagKind::OutOfOrderEvent { .. } => "out-of-order-event",
            DiagKind::UnbalancedStream { .. } => "unbalanced-stream",
        }
    }
}

/// One dropped source: where it came from and why it was dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The source: a file path for directory loads, a profile id for
    /// in-memory construction.
    pub source: String,
    /// The classified failure.
    pub kind: DiagKind,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.source, self.kind)
    }
}

/// How the loader's planner split a filter around the store read: which
/// conjuncts were pushed below it (evaluated on the columnar metadata
/// index, skipping shards) and which remained for post-compose
/// evaluation over the performance frame.
///
/// Conjuncts are recorded in their predicate-display form (e.g.
/// `cluster == quartz`), in original order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FilterPlan {
    /// Conjuncts evaluated below the store read (metadata-only fields).
    pub pushed: Vec<String>,
    /// Conjuncts evaluated after composition (perf-frame fields, or
    /// mixed/negated subtrees the planner cannot prove metadata-only).
    pub residual: Vec<String>,
}

impl FilterPlan {
    /// True when every conjunct was pushed below the store read.
    pub fn fully_pushed(&self) -> bool {
        self.residual.is_empty()
    }
}

impl fmt::Display for FilterPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pushdown: {} pushed [{}], {} residual [{}]",
            self.pushed.len(),
            self.pushed.join("; "),
            self.residual.len(),
            self.residual.join("; ")
        )
    }
}

/// The outcome of a lenient ingest: how many sources were attempted,
/// how many made it, and one [`Diagnostic`] per source that did not.
///
/// Diagnostics are ordered by source (path order for directory loads,
/// input order for in-memory construction) and are byte-identical for
/// any worker-thread count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestReport {
    /// Number of sources attempted.
    pub attempted: usize,
    /// Number of sources successfully ingested.
    pub loaded: usize,
    /// One entry per dropped source, in source order.
    pub diagnostics: Vec<Diagnostic>,
    /// When the load carried a predicate through the loader's planner:
    /// how it was split around the store read. `None` for unfiltered
    /// loads and legacy entry points that bypass the planner.
    pub pushdown: Option<FilterPlan>,
}

impl IngestReport {
    /// True when every attempted source was ingested.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of sources dropped.
    pub fn dropped(&self) -> usize {
        self.diagnostics.len()
    }

    /// One-line human-readable triage summary: totals plus a count per
    /// [`DiagKind`] label, e.g.
    /// `ingest: 7/10 loaded, 3 dropped (parse ×2, torn-shard ×1)`.
    ///
    /// Labels appear in first-seen diagnostic order, so the line is
    /// deterministic for a deterministic report.
    pub fn summary(&self) -> String {
        let mut line = format!(
            "ingest: {}/{} loaded, {} dropped",
            self.loaded,
            self.attempted,
            self.dropped()
        );
        if !self.diagnostics.is_empty() {
            let mut counts: Vec<(&'static str, usize)> = Vec::new();
            for d in &self.diagnostics {
                let label = d.kind.label();
                match counts.iter_mut().find(|(l, _)| *l == label) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((label, 1)),
                }
            }
            let parts: Vec<String> = counts
                .iter()
                .map(|(l, n)| format!("{l} \u{d7}{n}"))
                .collect();
            line.push_str(&format!(" ({})", parts.join(", ")));
        }
        line
    }

    /// Append another report's outcome onto this one (used when a load
    /// pipeline has multiple accounting stages, e.g. store read followed
    /// by thicket build): `attempted` stays this report's count, `loaded`
    /// takes the later stage's count, and diagnostics concatenate in
    /// stage order.
    pub fn absorb(&mut self, later: IngestReport) {
        self.loaded = later.loaded;
        self.diagnostics.extend(later.diagnostics);
        if self.pushdown.is_none() {
            self.pushdown = later.pushdown;
        }
    }
}

impl fmt::Display for IngestReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ingest: {}/{} sources loaded, {} dropped",
            self.loaded,
            self.attempted,
            self.dropped()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_unwraps_file_context() {
        let e = ProfileError::NonFinite {
            node: 3,
            metric: "time".into(),
        }
        .in_file("/tmp/x.json");
        assert_eq!(
            DiagKind::from_profile_error(&e),
            DiagKind::NonFiniteMetric {
                node: 3,
                metric: "time".into()
            }
        );
        let io = ProfileError::Io(std::io::Error::other("nope"));
        assert!(matches!(DiagKind::from_profile_error(&io), DiagKind::Io(_)));
    }

    #[test]
    fn report_display_lists_diagnostics() {
        let report = IngestReport {
            attempted: 3,
            loaded: 2,
            diagnostics: vec![Diagnostic {
                source: "a.json".into(),
                kind: DiagKind::Parse {
                    offset: 17,
                    message: "unterminated object".into(),
                },
            }],
            pushdown: None,
        };
        assert!(!report.is_clean());
        assert_eq!(report.dropped(), 1);
        let s = report.to_string();
        assert!(s.contains("2/3"));
        assert!(s.contains("a.json"));
        assert!(s.contains("byte 17"));
    }

    #[test]
    fn summary_counts_per_kind() {
        let mut report = IngestReport {
            attempted: 10,
            loaded: 7,
            diagnostics: vec![
                Diagnostic {
                    source: "a.json".into(),
                    kind: DiagKind::Parse {
                        offset: 1,
                        message: "x".into(),
                    },
                },
                Diagnostic {
                    source: "shard-000001-0000.tks#2".into(),
                    kind: DiagKind::TornShard {
                        shard: "shard-000001-0000.tks".into(),
                    },
                },
                Diagnostic {
                    source: "b.json".into(),
                    kind: DiagKind::Parse {
                        offset: 9,
                        message: "y".into(),
                    },
                },
            ],
            pushdown: None,
        };
        assert_eq!(
            report.summary(),
            "ingest: 7/10 loaded, 3 dropped (parse \u{d7}2, torn-shard \u{d7}1)"
        );
        // A clean report stays a bare one-liner.
        report.diagnostics.clear();
        report.loaded = 10;
        assert_eq!(report.summary(), "ingest: 10/10 loaded, 0 dropped");
    }

    #[test]
    fn absorb_chains_stage_accounting() {
        let mut read = IngestReport {
            attempted: 5,
            loaded: 4,
            diagnostics: vec![Diagnostic {
                source: "s#0".into(),
                kind: DiagKind::ChecksumMismatch {
                    shard: "s".into(),
                    record: 0,
                },
            }],
            pushdown: None,
        };
        let build = IngestReport {
            attempted: 4,
            loaded: 3,
            diagnostics: vec![Diagnostic {
                source: "profile 9".into(),
                kind: DiagKind::DuplicateProfile {
                    first: "profile 1".into(),
                },
            }],
            pushdown: None,
        };
        read.absorb(build);
        assert_eq!(read.attempted, 5);
        assert_eq!(read.loaded, 3);
        assert_eq!(read.dropped(), 2);
        assert_eq!(read.diagnostics[0].kind.label(), "checksum-mismatch");
        assert_eq!(read.diagnostics[1].kind.label(), "duplicate-profile");
    }

    #[test]
    fn strictness_helpers() {
        assert_eq!(
            Strictness::lenient(),
            Strictness::Lenient {
                max_errors: usize::MAX
            }
        );
        assert_ne!(Strictness::FailFast, Strictness::lenient());
    }
}
