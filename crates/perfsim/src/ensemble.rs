//! Ensemble I/O: whole directories of profiles, the unit the paper's
//! workflow moves between collection (steps 1–2) and analysis (step 3).
//!
//! [`load_dir`] is the single directory-load engine; both contracts of
//! [`crate::ingest::Strictness`] run through it (`FailFast` aborts on
//! the first unhealthy file, identified by path and deterministic for
//! any thread count; `Lenient` returns the healthy subset plus a
//! per-file [`IngestReport`]). Most code should reach ensembles
//! through `Thicket::loader` in `thicket-core`, which drives this
//! engine.

use crate::ingest::{DiagKind, Diagnostic, IngestReport, Strictness};
use crate::parallel::{parallel_map_catch, try_parallel_map, JobFailure};
use crate::profile::{Profile, ProfileError};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};

/// Write every profile to `dir` as `profile-<hash>.json`, creating the
/// directory. Returns the written paths.
///
/// The hash is metadata-derived, so profiles with identical metadata
/// collide; collisions are disambiguated with an index suffix chosen
/// from an in-memory name set (deterministic for the batch, immune to
/// the check-then-write race of probing the filesystem). Each file is
/// written to a temporary name and atomically renamed into place, so a
/// concurrent reader never observes a half-written profile; re-saving
/// an ensemble replaces its previous files instead of accumulating
/// bumped copies.
///
/// The save runs in two phases. Phase one stages every profile to a
/// temporary name; a failure there removes only this call's temps and
/// leaves the directory's existing files untouched. Phase two renames
/// the staged temps into place; a failure there removes the not-yet-
/// renamed temps but never deletes a destination file — when re-saving
/// over a previous ensemble, the destinations still hold valid copies
/// (old or freshly renamed), so an interrupted save degrades to a
/// mixed-but-loadable directory instead of losing data. (An earlier
/// revision rolled back by deleting already-renamed destinations,
/// which destroyed the previous good copies on a re-save.)
pub fn save_ensemble(
    dir: impl AsRef<Path>,
    profiles: &[Profile],
) -> Result<Vec<PathBuf>, ProfileError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut taken: HashSet<String> = HashSet::with_capacity(profiles.len());
    let mut staged: Vec<(PathBuf, PathBuf)> = Vec::with_capacity(profiles.len());
    for (i, p) in profiles.iter().enumerate() {
        let base = format!("profile-{:016x}", p.profile_hash() as u64);
        let mut name = format!("{base}.json");
        let mut bump = 0;
        while !taken.insert(name.clone()) {
            bump += 1;
            name = format!("{base}-{bump}.json");
        }
        let tmp = dir.join(format!(".{name}.tmp-{i}"));
        if let Err(e) = p.save(&tmp) {
            let _ = std::fs::remove_file(&tmp);
            for (t, _) in &staged {
                let _ = std::fs::remove_file(t);
            }
            return Err(e);
        }
        staged.push((tmp, dir.join(&name)));
    }
    let mut out = Vec::with_capacity(staged.len());
    for (idx, (tmp, path)) in staged.iter().enumerate() {
        if let Err(e) = std::fs::rename(tmp, path) {
            for (t, _) in &staged[idx..] {
                let _ = std::fs::remove_file(t);
            }
            return Err(ProfileError::from(e).in_file(path));
        }
        out.push(path.clone());
    }
    Ok(out)
}

/// The directory-load engine: every `*.json` profile in `dir`, sorted
/// by filename for determinism, parsed on `threads` workers (`None` →
/// a count fitted to the file count). Results and diagnostics are
/// byte-identical for any thread count.
///
/// Under [`Strictness::FailFast`] the first unhealthy file in filename
/// order fails the load with its path (remaining work is cancelled)
/// and the report is empty-diagnostic. Under `Lenient { max_errors }`
/// unhealthy files become typed [`Diagnostic`]s (exceeding the budget
/// aborts with a hard error), and a file whose profile *hash*
/// duplicates an earlier file's is dropped with a
/// [`DiagKind::DuplicateProfile`] diagnostic — what a downstream
/// thicket build needs (the strict contract keeps duplicates and
/// leaves the choice of profile ids to the caller).
pub fn load_dir(
    dir: impl AsRef<Path>,
    threads: Option<usize>,
    strictness: Strictness,
) -> Result<(Vec<Profile>, IngestReport), ProfileError> {
    let paths = ensemble_paths(&dir)?;
    let threads = threads.unwrap_or_else(|| crate::parallel::default_threads(paths.len()));
    match strictness {
        Strictness::FailFast => {
            let profiles = load_paths(&paths, threads)?;
            let report = IngestReport {
                attempted: paths.len(),
                loaded: profiles.len(),
                diagnostics: Vec::new(),
                pushdown: None,
            };
            Ok((profiles, report))
        }
        Strictness::Lenient { max_errors } => {
            let results = parallel_map_catch(&paths, threads, |p| Profile::load(p));
            let mut profiles = Vec::with_capacity(paths.len());
            let mut diagnostics = Vec::new();
            // Lenient output feeds straight into thicket construction,
            // where profile ids (metadata hashes) must be unique: later
            // files re-claiming a hash are dropped here with a typed
            // diagnostic instead of exploding there.
            let mut first_by_hash: HashMap<i64, &PathBuf> = HashMap::new();
            for (path, result) in paths.iter().zip(results) {
                let source = path.display().to_string();
                match result {
                    Ok(profile) => match first_by_hash.get(&profile.profile_hash()) {
                        Some(first) => diagnostics.push(Diagnostic {
                            source,
                            kind: DiagKind::DuplicateProfile {
                                first: first.display().to_string(),
                            },
                        }),
                        None => {
                            first_by_hash.insert(profile.profile_hash(), path);
                            profiles.push(profile);
                        }
                    },
                    Err(JobFailure::Error(e)) => diagnostics.push(Diagnostic {
                        source,
                        kind: DiagKind::from_profile_error(&e),
                    }),
                    Err(JobFailure::Panic(m)) => diagnostics.push(Diagnostic {
                        source,
                        kind: DiagKind::WorkerPanic(m),
                    }),
                }
            }
            if diagnostics.len() > max_errors {
                return Err(ProfileError::Malformed(format!(
                    "lenient load of {} aborted: {} unhealthy files exceed max_errors = {}",
                    dir.as_ref().display(),
                    diagnostics.len(),
                    max_errors
                )));
            }
            let report = IngestReport {
                attempted: paths.len(),
                loaded: profiles.len(),
                diagnostics,
                pushdown: None,
            };
            Ok((profiles, report))
        }
    }
}

fn ensemble_paths(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, ProfileError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    Ok(paths)
}

/// Strict load of sorted paths: the first failure in path order wins
/// (worker panics included, captured as [`ProfileError::Panicked`]) and
/// is annotated with the offending path.
fn load_paths(paths: &[PathBuf], threads: usize) -> Result<Vec<Profile>, ProfileError> {
    try_parallel_map(paths, threads, |p| Profile::load(p)).map_err(|e| {
        let path = &paths[e.index];
        match e.failure {
            JobFailure::Error(pe) => pe.in_file(path),
            JobFailure::Panic(m) => ProfileError::Panicked(m).in_file(path),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thicket-ensemble-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn load_strict(dir: impl AsRef<Path>) -> Result<Vec<Profile>, ProfileError> {
        load_dir(dir, None, Strictness::FailFast).map(|(profiles, _)| profiles)
    }

    #[test]
    fn roundtrip_preserves_profiles() {
        let dir = tmp("roundtrip");
        let profiles: Vec<Profile> = (0..4)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let paths = save_ensemble(&dir, &profiles).unwrap();
        assert_eq!(paths.len(), 4);
        let loaded = load_strict(&dir).unwrap();
        assert_eq!(loaded.len(), 4);
        let mut orig: Vec<i64> = profiles.iter().map(|p| p.profile_hash()).collect();
        let mut back: Vec<i64> = loaded.iter().map(|p| p.profile_hash()).collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_metadata_disambiguated() {
        let dir = tmp("dup");
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let paths = save_ensemble(&dir, &[p.clone(), p]).unwrap();
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
        assert_eq!(load_strict(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_file_fails_loudly() {
        let dir = tmp("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{oops").unwrap();
        assert!(load_strict(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn non_json_files_ignored() {
        let dir = tmp("mixed");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "notes").unwrap();
        save_ensemble(&dir, &[simulate_cpu_run(&CpuRunConfig::quartz_default())]).unwrap();
        assert_eq!(load_strict(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(load_strict("/nonexistent/thicket-dir").is_err());
        assert!(load_dir("/nonexistent/thicket-dir", Some(4), Strictness::FailFast).map(|(p, _)| p).is_err());
    }

    #[test]
    fn threaded_load_matches_serial() {
        let dir = tmp("threads");
        let profiles: Vec<Profile> = (0..6)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        save_ensemble(&dir, &profiles).unwrap();
        let one = load_dir(&dir, Some(1), Strictness::FailFast).map(|(p, _)| p).unwrap();
        let eight = load_dir(&dir, Some(8), Strictness::FailFast).map(|(p, _)| p).unwrap();
        let hashes = |ps: &[Profile]| ps.iter().map(|p| p.profile_hash()).collect::<Vec<_>>();
        assert_eq!(hashes(&one), hashes(&eight));
        assert_eq!(one.len(), 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn strict_error_names_offending_path() {
        let dir = tmp("strict-path");
        std::fs::create_dir_all(&dir).unwrap();
        save_ensemble(&dir, &[simulate_cpu_run(&CpuRunConfig::quartz_default())]).unwrap();
        std::fs::write(dir.join("aa-bad.json"), "{truncated").unwrap();
        for threads in [1, 2, 8] {
            let err = load_dir(&dir, Some(threads), Strictness::FailFast).map(|(p, _)| p).unwrap_err();
            assert_eq!(
                err.path().map(|p| p.to_path_buf()),
                Some(dir.join("aa-bad.json")),
                "threads={threads}: {err}"
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lenient_load_keeps_healthy_subset() {
        let dir = tmp("lenient");
        let profiles: Vec<Profile> = (0..3)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        save_ensemble(&dir, &profiles).unwrap();
        std::fs::write(dir.join("aa-corrupt.json"), "{nope").unwrap();
        let (loaded, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
        assert_eq!(loaded.len(), 3);
        assert_eq!(report.attempted, 4);
        assert_eq!(report.loaded, 3);
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.diagnostics[0].source.ends_with("aa-corrupt.json"));
        assert!(matches!(
            report.diagnostics[0].kind,
            crate::ingest::DiagKind::Parse { .. }
        ));
        // Strict load of the same dir fails.
        assert!(load_strict(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn lenient_drops_duplicate_hashes_with_diagnostic() {
        let dir = tmp("lenient-dup");
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        // Two files, identical metadata → identical hash.
        save_ensemble(&dir, &[p.clone(), p]).unwrap();
        let (loaded, report) = load_dir(&dir, None, Strictness::lenient()).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(report.diagnostics.len(), 1);
        match &report.diagnostics[0].kind {
            crate::ingest::DiagKind::DuplicateProfile { first } => {
                assert!(first.ends_with(".json"));
                assert_ne!(first, &report.diagnostics[0].source);
            }
            other => panic!("expected DuplicateProfile, got {other:?}"),
        }
        // Strict mode still tolerates duplicates (caller picks ids).
        assert_eq!(load_strict(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn max_errors_budget_aborts() {
        let dir = tmp("budget");
        std::fs::create_dir_all(&dir).unwrap();
        save_ensemble(&dir, &[simulate_cpu_run(&CpuRunConfig::quartz_default())]).unwrap();
        std::fs::write(dir.join("bad1.json"), "{").unwrap();
        std::fs::write(dir.join("bad2.json"), "[").unwrap();
        // Budget of 2 tolerates both; budget of 1 aborts.
        let ok = load_dir(&dir, Some(2), Strictness::Lenient { max_errors: 2 });
        assert_eq!(ok.unwrap().1.dropped(), 2);
        let err = load_dir(&dir, Some(2), Strictness::Lenient { max_errors: 1 });
        assert!(err.unwrap_err().to_string().contains("max_errors"));
        // FailFast through the opts entry point behaves like load_ensemble.
        assert!(load_dir(&dir, Some(2), Strictness::FailFast).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_save_rolls_back_partial_output() {
        let dir = tmp("rollback");
        let profiles: Vec<Profile> = (0..3)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        // Block the *second* profile's target name with a directory so
        // its rename fails after the first file has landed.
        let planned = save_ensemble(&dir, &profiles).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::create_dir_all(&planned[1]).unwrap();
        let err = save_ensemble(&dir, &profiles);
        assert!(err.is_err(), "rename onto a directory must fail");
        // Files renamed before the failure are complete, valid
        // profiles and stay in place; temps are cleaned up.
        let leftovers: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_file())
            .map(|e| e.path())
            .collect();
        assert_eq!(leftovers, vec![planned[0].clone()]);
        Profile::load(&leftovers[0]).expect("surviving file is a valid profile");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failed_save_never_deletes_previous_copies() {
        let dir = tmp("rollback-resave");
        let profiles: Vec<Profile> = (0..3)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let planned = save_ensemble(&dir, &profiles).unwrap();

        // Staging failure (temp name blocked by a directory): the
        // previous ensemble must come through completely untouched.
        std::fs::create_dir_all(dir.join(format!(
            ".{}.tmp-1",
            planned[1].file_name().unwrap().to_string_lossy()
        )))
        .unwrap();
        assert!(save_ensemble(&dir, &profiles).is_err());
        assert_eq!(load_strict(&dir).unwrap().len(), 3);

        // Rename failure mid-way (destination replaced by a directory
        // out from under us): the other destinations keep a valid copy
        // — old or freshly renamed — and nothing is deleted.
        std::fs::remove_dir_all(dir.join(format!(
            ".{}.tmp-1",
            planned[1].file_name().unwrap().to_string_lossy()
        )))
        .unwrap();
        std::fs::remove_file(&planned[1]).unwrap();
        std::fs::create_dir_all(&planned[1]).unwrap();
        assert!(save_ensemble(&dir, &profiles).is_err());
        for p in [&planned[0], &planned[2]] {
            Profile::load(p).expect("previous copy must survive a failed re-save");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resave_replaces_instead_of_accumulating() {
        let dir = tmp("resave");
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let first = save_ensemble(&dir, std::slice::from_ref(&p)).unwrap();
        let second = save_ensemble(&dir, &[p]).unwrap();
        assert_eq!(first, second);
        // Still exactly one profile (and no leftover temp files).
        assert_eq!(load_strict(&dir).unwrap().len(), 1);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }
}
