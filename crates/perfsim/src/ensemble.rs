//! Ensemble I/O: whole directories of profiles, the unit the paper's
//! workflow moves between collection (steps 1–2) and analysis (step 3).

use crate::profile::{Profile, ProfileError};
use std::path::{Path, PathBuf};

/// Write every profile to `dir` as `profile-<hash>.json`, creating the
/// directory. Returns the written paths.
pub fn save_ensemble(
    dir: impl AsRef<Path>,
    profiles: &[Profile],
) -> Result<Vec<PathBuf>, ProfileError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut out = Vec::with_capacity(profiles.len());
    for p in profiles {
        // The hash is metadata-derived; disambiguate identical metadata
        // with an index suffix.
        let mut path = dir.join(format!("profile-{:016x}.json", p.profile_hash() as u64));
        let mut bump = 0;
        while path.exists() {
            bump += 1;
            path = dir.join(format!(
                "profile-{:016x}-{bump}.json",
                p.profile_hash() as u64
            ));
        }
        p.save(&path)?;
        out.push(path);
    }
    Ok(out)
}

/// Load every `*.json` profile in `dir`, sorted by filename for
/// determinism. Non-profile files fail loudly (the collection directory
/// is expected to be clean).
pub fn load_ensemble(dir: impl AsRef<Path>) -> Result<Vec<Profile>, ProfileError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    paths.iter().map(Profile::load).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thicket-ensemble-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_profiles() {
        let dir = tmp("roundtrip");
        let profiles: Vec<Profile> = (0..4)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let paths = save_ensemble(&dir, &profiles).unwrap();
        assert_eq!(paths.len(), 4);
        let loaded = load_ensemble(&dir).unwrap();
        assert_eq!(loaded.len(), 4);
        let mut orig: Vec<i64> = profiles.iter().map(|p| p.profile_hash()).collect();
        let mut back: Vec<i64> = loaded.iter().map(|p| p.profile_hash()).collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_metadata_disambiguated() {
        let dir = tmp("dup");
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let paths = save_ensemble(&dir, &[p.clone(), p]).unwrap();
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
        assert_eq!(load_ensemble(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_file_fails_loudly() {
        let dir = tmp("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{oops").unwrap();
        assert!(load_ensemble(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn non_json_files_ignored() {
        let dir = tmp("mixed");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "notes").unwrap();
        save_ensemble(&dir, &[simulate_cpu_run(&CpuRunConfig::quartz_default())]).unwrap();
        assert_eq!(load_ensemble(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(load_ensemble("/nonexistent/thicket-dir").is_err());
    }
}
