//! Ensemble I/O: whole directories of profiles, the unit the paper's
//! workflow moves between collection (steps 1–2) and analysis (step 3).

use crate::profile::{Profile, ProfileError};
use std::collections::HashSet;
use std::path::{Path, PathBuf};

/// Write every profile to `dir` as `profile-<hash>.json`, creating the
/// directory. Returns the written paths.
///
/// The hash is metadata-derived, so profiles with identical metadata
/// collide; collisions are disambiguated with an index suffix chosen
/// from an in-memory name set (deterministic for the batch, immune to
/// the check-then-write race of probing the filesystem). Each file is
/// written to a temporary name and atomically renamed into place, so a
/// concurrent reader never observes a half-written profile; re-saving
/// an ensemble replaces its previous files instead of accumulating
/// bumped copies.
pub fn save_ensemble(
    dir: impl AsRef<Path>,
    profiles: &[Profile],
) -> Result<Vec<PathBuf>, ProfileError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let mut taken: HashSet<String> = HashSet::with_capacity(profiles.len());
    let mut out = Vec::with_capacity(profiles.len());
    for (i, p) in profiles.iter().enumerate() {
        let base = format!("profile-{:016x}", p.profile_hash() as u64);
        let mut name = format!("{base}.json");
        let mut bump = 0;
        while !taken.insert(name.clone()) {
            bump += 1;
            name = format!("{base}-{bump}.json");
        }
        let path = dir.join(&name);
        let tmp = dir.join(format!(".{name}.tmp-{i}"));
        p.save(&tmp)?;
        std::fs::rename(&tmp, &path)?;
        out.push(path);
    }
    Ok(out)
}

/// Load every `*.json` profile in `dir`, sorted by filename for
/// determinism. Non-profile files fail loudly (the collection directory
/// is expected to be clean).
///
/// Parsing fans out over worker threads (see [`load_ensemble_threads`]
/// to pick the count); the returned order is always filename order.
pub fn load_ensemble(dir: impl AsRef<Path>) -> Result<Vec<Profile>, ProfileError> {
    let paths = ensemble_paths(dir)?;
    load_paths(&paths, crate::parallel::default_threads(paths.len()))
}

/// [`load_ensemble`] with an explicit worker count. The result is
/// identical for any `threads ≥ 1`: paths are sorted before the fan-out
/// and errors surface in path order.
pub fn load_ensemble_threads(
    dir: impl AsRef<Path>,
    threads: usize,
) -> Result<Vec<Profile>, ProfileError> {
    let paths = ensemble_paths(dir)?;
    load_paths(&paths, threads)
}

fn ensemble_paths(dir: impl AsRef<Path>) -> Result<Vec<PathBuf>, ProfileError> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    paths.sort();
    Ok(paths)
}

fn load_paths(paths: &[PathBuf], threads: usize) -> Result<Vec<Profile>, ProfileError> {
    crate::parallel::parallel_map(paths, threads, |p| Profile::load(p))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thicket-ensemble-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_preserves_profiles() {
        let dir = tmp("roundtrip");
        let profiles: Vec<Profile> = (0..4)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        let paths = save_ensemble(&dir, &profiles).unwrap();
        assert_eq!(paths.len(), 4);
        let loaded = load_ensemble(&dir).unwrap();
        assert_eq!(loaded.len(), 4);
        let mut orig: Vec<i64> = profiles.iter().map(|p| p.profile_hash()).collect();
        let mut back: Vec<i64> = loaded.iter().map(|p| p.profile_hash()).collect();
        orig.sort_unstable();
        back.sort_unstable();
        assert_eq!(orig, back);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn identical_metadata_disambiguated() {
        let dir = tmp("dup");
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let paths = save_ensemble(&dir, &[p.clone(), p]).unwrap();
        assert_eq!(paths.len(), 2);
        assert_ne!(paths[0], paths[1]);
        assert_eq!(load_ensemble(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_file_fails_loudly() {
        let dir = tmp("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.json"), "{oops").unwrap();
        assert!(load_ensemble(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn non_json_files_ignored() {
        let dir = tmp("mixed");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("README.txt"), "notes").unwrap();
        save_ensemble(&dir, &[simulate_cpu_run(&CpuRunConfig::quartz_default())]).unwrap();
        assert_eq!(load_ensemble(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(load_ensemble("/nonexistent/thicket-dir").is_err());
        assert!(load_ensemble_threads("/nonexistent/thicket-dir", 4).is_err());
    }

    #[test]
    fn threaded_load_matches_serial() {
        let dir = tmp("threads");
        let profiles: Vec<Profile> = (0..6)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect();
        save_ensemble(&dir, &profiles).unwrap();
        let one = load_ensemble_threads(&dir, 1).unwrap();
        let eight = load_ensemble_threads(&dir, 8).unwrap();
        let hashes = |ps: &[Profile]| ps.iter().map(|p| p.profile_hash()).collect::<Vec<_>>();
        assert_eq!(hashes(&one), hashes(&eight));
        assert_eq!(one.len(), 6);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn resave_replaces_instead_of_accumulating() {
        let dir = tmp("resave");
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let first = save_ensemble(&dir, &[p.clone()]).unwrap();
        let second = save_ensemble(&dir, &[p]).unwrap();
        assert_eq!(first, second);
        // Still exactly one profile (and no leftover temp files).
        assert_eq!(load_ensemble(&dir).unwrap().len(), 1);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp-"))
            .collect();
        assert!(leftovers.is_empty());
        std::fs::remove_dir_all(dir).ok();
    }
}
