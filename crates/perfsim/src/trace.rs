//! Per-rank enter/leave event traces (the Pipit-style upstream of a
//! thicket).
//!
//! Parallel runs do not produce call-tree profiles directly: they
//! produce *traces* — timestamped region enter/leave events per rank,
//! millions of them, far larger than the profiles they aggregate into.
//! This module provides the trace side of that pipeline:
//!
//! * a line-oriented on-disk format (`TRACE1`) with run-level metadata
//!   followed by a time-merged event stream;
//! * [`TraceWriter`] / [`TraceReader`] over any `io::Write` /
//!   `io::BufRead`, the reader pulling events in bounded chunks so a
//!   trace never has to fit in memory;
//! * an emitter ([`emit`]) that synthesizes traces from the RAJA-Perf
//!   kernel models ([`crate::rajaperf`]) in O(ranks) memory: per-rank
//!   lazy timelines merged through a binary heap, with seeded
//!   per-kernel noise and per-rank imbalance.
//!
//! The streaming *aggregator* that folds these events back into
//! call-tree profiles lives in `thicket-core` (it builds on the graph
//! machinery there); the torn/out-of-order/unbalanced fault family for
//! trace files lives in [`crate::faults`].
//!
//! # Format
//!
//! ```text
//! TRACE1
//! M ["cluster","quartz"]          # run metadata, JSON-encoded pair
//! M ["problem size",1048576]
//! E 0 1200 Base_Seq               # rank 0 enters Base_Seq at t=1200ns
//! E 0 1210 Stream                 # region names may contain spaces
//! L 0 80021                       # rank 0 leaves the open region
//! ```
//!
//! Metadata lines must precede event lines. Event timestamps are
//! nanoseconds on each rank's own clock and must be non-decreasing
//! *per rank*; the file as a whole is merged in global time order by
//! the emitter but readers only rely on the per-rank ordering. Every
//! line ends with `\n` — a final line without one is a torn write.

use crate::json::Json;
use crate::noise::Noise;
use crate::profile::{json_to_value, value_to_json};
use crate::rajaperf::{cpu_kernel_time, suite, CpuRunConfig, KernelSpec};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::Path;
use thicket_dataframe::Value;

/// First line of every trace file.
pub const TRACE_HEADER: &str = "TRACE1";

/// What one event line says.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Enter a region with this name (nested under the rank's open
    /// region, if any).
    Enter(String),
    /// Leave the rank's innermost open region.
    Leave,
}

/// One parsed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Emitting rank.
    pub rank: u32,
    /// Nanoseconds on the rank's clock; non-decreasing per rank.
    pub time_ns: u64,
    /// Enter or leave.
    pub kind: TraceEventKind,
}

/// Why a trace could not be read further.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The stream is torn: a malformed line, a missing header, or a
    /// final line without its newline (a write cut off mid-line).
    Torn {
        /// 1-based line number of the damage.
        line: u64,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace io error: {e}"),
            TraceError::Torn { line, message } => {
                write!(f, "torn trace at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

// ---------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------

/// Streaming trace writer over any [`io::Write`].
///
/// Metadata lines must all be written before the first event line
/// (matching the format); the writer enforces this.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    events: u64,
    in_events: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace: writes the `TRACE1` header line.
    pub fn new(mut out: W) -> io::Result<Self> {
        writeln!(out, "{TRACE_HEADER}")?;
        Ok(TraceWriter {
            out,
            events: 0,
            in_events: false,
        })
    }

    /// Write one run-metadata pair. Must precede every event line.
    pub fn metadata(&mut self, key: &str, value: &Value) -> io::Result<()> {
        if self.in_events {
            return Err(io::Error::other(
                "trace metadata lines must precede event lines",
            ));
        }
        let pair = Json::Arr(vec![Json::Str(key.to_string()), value_to_json(value)]);
        writeln!(self.out, "M {}", pair.to_string_compact())
    }

    /// Write a region-enter event.
    pub fn enter(&mut self, rank: u32, time_ns: u64, name: &str) -> io::Result<()> {
        self.in_events = true;
        self.events += 1;
        writeln!(self.out, "E {rank} {time_ns} {name}")
    }

    /// Write a region-leave event.
    pub fn leave(&mut self, rank: u32, time_ns: u64) -> io::Result<()> {
        self.in_events = true;
        self.events += 1;
        writeln!(self.out, "L {rank} {time_ns}")
    }

    /// Write an already-built [`TraceEvent`].
    pub fn event(&mut self, ev: &TraceEvent) -> io::Result<()> {
        match &ev.kind {
            TraceEventKind::Enter(name) => self.enter(ev.rank, ev.time_ns, name),
            TraceEventKind::Leave => self.leave(ev.rank, ev.time_ns),
        }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.events
    }

    /// Flush and hand back the underlying writer.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

// ---------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------

/// Chunked trace reader over any [`io::BufRead`].
///
/// Construction parses the header and metadata block; events are then
/// pulled in bounded batches with [`TraceReader::next_events`] — the
/// whole trace is never materialized.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    input: R,
    metadata: Vec<(String, Value)>,
    /// 1-based number of the last line read.
    line: u64,
    /// First event line, read while scanning past the metadata block.
    pending: Option<String>,
    /// A tear found mid-batch, deferred so the events parsed before it
    /// are not thrown away with the error.
    pending_err: Option<TraceError>,
    eof: bool,
}

impl TraceReader<io::BufReader<std::fs::File>> {
    /// Open a trace file for chunked reading.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        TraceReader::new(io::BufReader::new(file))
    }
}

impl<R: BufRead> TraceReader<R> {
    /// Parse the header and metadata block; events remain unread.
    pub fn new(mut input: R) -> Result<Self, TraceError> {
        let mut line_no = 0u64;
        let header = read_full_line(&mut input, &mut line_no)?;
        match header {
            Some(h) if h == TRACE_HEADER => {}
            Some(h) => {
                return Err(TraceError::Torn {
                    line: 1,
                    message: format!("expected {TRACE_HEADER} header, found {h:?}"),
                })
            }
            None => {
                return Err(TraceError::Torn {
                    line: 1,
                    message: "empty trace (missing header)".into(),
                })
            }
        }
        let mut metadata = Vec::new();
        let mut pending = None;
        let mut eof = false;
        loop {
            match read_full_line(&mut input, &mut line_no)? {
                None => {
                    eof = true;
                    break;
                }
                Some(text) => {
                    if let Some(rest) = text.strip_prefix("M ") {
                        metadata.push(parse_meta_pair(rest, line_no)?);
                    } else {
                        pending = Some(text);
                        break;
                    }
                }
            }
        }
        Ok(TraceReader {
            input,
            metadata,
            line: line_no,
            pending,
            pending_err: None,
            eof,
        })
    }

    /// Run-level metadata pairs, in file order.
    pub fn metadata(&self) -> &[(String, Value)] {
        &self.metadata
    }

    /// 1-based number of the last line consumed.
    pub fn line(&self) -> u64 {
        self.line
    }

    /// Read up to `max` events. An empty vector means end of trace.
    ///
    /// A tear discovered *mid-batch* is deferred: the events parsed
    /// before it are returned normally and the error surfaces on the
    /// next call. A torn tail therefore never destroys the healthy
    /// events in front of it, regardless of where batch boundaries
    /// fall — lenient ingest salvages everything up to the cut.
    pub fn next_events(&mut self, max: usize) -> Result<Vec<TraceEvent>, TraceError> {
        if let Some(e) = self.pending_err.take() {
            return Err(e);
        }
        let mut out = Vec::with_capacity(max.min(4096));
        while out.len() < max {
            let (text, line_no) = match self.pending.take() {
                Some(text) => (text, self.line),
                None => {
                    if self.eof {
                        break;
                    }
                    match read_full_line(&mut self.input, &mut self.line) {
                        Ok(None) => {
                            self.eof = true;
                            break;
                        }
                        Ok(Some(text)) => (text, self.line),
                        Err(e) => return self.defer_err(e, out),
                    }
                }
            };
            match parse_event(&text, line_no) {
                Ok(ev) => out.push(ev),
                Err(e) => return self.defer_err(e, out),
            }
        }
        Ok(out)
    }

    /// The stream is unrecoverable past a tear: stop reading, and hand
    /// back either the error (nothing salvaged this batch) or the
    /// salvaged events with the error queued for the next call.
    fn defer_err(
        &mut self,
        e: TraceError,
        out: Vec<TraceEvent>,
    ) -> Result<Vec<TraceEvent>, TraceError> {
        self.eof = true;
        if out.is_empty() {
            Err(e)
        } else {
            self.pending_err = Some(e);
            Ok(out)
        }
    }
}

/// Read one `\n`-terminated line, stripping the terminator. A final
/// fragment without its newline is a torn write; `Ok(None)` is a clean
/// end of file.
fn read_full_line<R: BufRead>(
    input: &mut R,
    line_no: &mut u64,
) -> Result<Option<String>, TraceError> {
    let mut buf = String::new();
    let n = input.read_line(&mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    *line_no += 1;
    match buf.pop() {
        Some('\n') => Ok(Some(buf)),
        _ => Err(TraceError::Torn {
            line: *line_no,
            message: "final line is missing its newline (write cut off mid-line)".into(),
        }),
    }
}

/// Parse the JSON `["key",value]` body of a metadata line.
fn parse_meta_pair(body: &str, line: u64) -> Result<(String, Value), TraceError> {
    let torn = |message: String| TraceError::Torn { line, message };
    let doc = Json::parse(body)
        .map_err(|e| torn(format!("metadata line is not valid JSON: {e}")))?;
    let Json::Arr(items) = doc else {
        return Err(torn("metadata line is not a [key, value] pair".into()));
    };
    let [key, value] = items.as_slice() else {
        return Err(torn("metadata line is not a [key, value] pair".into()));
    };
    let Json::Str(key) = key else {
        return Err(torn("metadata key is not a string".into()));
    };
    Ok((key.clone(), json_to_value(value)))
}

/// Parse one event line (`E <rank> <t> <name>` or `L <rank> <t>`).
fn parse_event(text: &str, line: u64) -> Result<TraceEvent, TraceError> {
    let torn = |message: String| TraceError::Torn { line, message };
    let mut parts = text.splitn(2, ' ');
    let tag = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("");
    match tag {
        "E" => {
            let mut fields = rest.splitn(3, ' ');
            let rank = parse_u32(fields.next(), "rank").map_err(&torn)?;
            let time_ns = parse_u64(fields.next(), "time").map_err(&torn)?;
            let name = fields
                .next()
                .filter(|n| !n.is_empty())
                .ok_or_else(|| torn("enter event is missing its region name".into()))?;
            Ok(TraceEvent {
                rank,
                time_ns,
                kind: TraceEventKind::Enter(name.to_string()),
            })
        }
        "L" => {
            let mut fields = rest.splitn(3, ' ');
            let rank = parse_u32(fields.next(), "rank").map_err(&torn)?;
            let time_ns = parse_u64(fields.next(), "time").map_err(&torn)?;
            if fields.next().is_some() {
                return Err(torn("leave event carries trailing fields".into()));
            }
            Ok(TraceEvent {
                rank,
                time_ns,
                kind: TraceEventKind::Leave,
            })
        }
        other => Err(torn(format!("unknown line tag {other:?}"))),
    }
}

fn parse_u32(field: Option<&str>, what: &str) -> Result<u32, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("event {what} is not a u32 ({field:?})"))
}

fn parse_u64(field: Option<&str>, what: &str) -> Result<u64, String> {
    field
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| format!("event {what} is not a u64 ({field:?})"))
}

// ---------------------------------------------------------------------
// Emitter: RAJA-Perf kernel models → per-rank timelines → merged trace.
// ---------------------------------------------------------------------

/// Configuration for a synthesized trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// The run being traced: machine, compiler, problem size, seed —
    /// kernel durations come from [`cpu_kernel_time`] on this config.
    pub run: CpuRunConfig,
    /// Number of ranks (independent per-rank timelines).
    pub ranks: u32,
    /// Suite passes per rank: each pass walks root → group → kernel
    /// over the whole suite.
    pub passes: u32,
    /// Per-kernel-instance lognormal noise sigma.
    pub noise_sigma: f64,
    /// Per-rank lognormal imbalance sigma (one factor per rank,
    /// applied to every duration on that rank).
    pub imbalance_sigma: f64,
    /// Gap between consecutive regions on a rank, in ns (gives interior
    /// nodes nonzero exclusive time, like real instrumentation
    /// overhead).
    pub kernel_gap_ns: u64,
    /// Idle gap between suite passes on a rank, in ns.
    pub pass_gap_ns: u64,
}

impl TraceConfig {
    /// A Quartz sequential-variant trace with mild noise/imbalance.
    pub fn quartz(ranks: u32, passes: u32, seed: u64) -> Self {
        let mut run = CpuRunConfig::quartz_default();
        run.seed = seed;
        TraceConfig {
            run,
            ranks,
            passes,
            noise_sigma: 0.02,
            imbalance_sigma: 0.05,
            kernel_gap_ns: 2_000,
            pass_gap_ns: 50_000,
        }
    }

    /// Exact number of events [`emit`] will write for this config.
    pub fn events_total(&self) -> u64 {
        let kernels = suite();
        let mut groups: Vec<&str> = Vec::new();
        for k in &kernels {
            if !groups.contains(&k.group) {
                groups.push(k.group);
            }
        }
        2 * (1 + groups.len() as u64 + kernels.len() as u64)
            * self.passes as u64
            * self.ranks as u64
    }

    /// Run-level metadata recorded in the trace header: the same keys
    /// [`crate::rajaperf::simulate_cpu_run`] stamps on its profiles,
    /// plus the rank count.
    pub fn metadata(&self) -> Vec<(String, Value)> {
        let cfg = &self.run;
        vec![
            ("cluster".into(), Value::from(cfg.machine.cluster.as_str())),
            ("systype".into(), Value::from(cfg.machine.systype.as_str())),
            ("problem size".into(), Value::Int(cfg.problem_size as i64)),
            ("compiler".into(), Value::from(cfg.compiler.name.as_str())),
            (
                "compiler optimization".into(),
                Value::from(format!("-O{}", cfg.opt_level)),
            ),
            ("omp num threads".into(), Value::Int(cfg.threads as i64)),
            ("raja version".into(), Value::from("2022.03.0")),
            ("variant".into(), Value::from(cfg.variant.name())),
            ("launchdate".into(), Value::from(cfg.launchdate.as_str())),
            ("user".into(), Value::from(cfg.user.as_str())),
            ("seed".into(), Value::Int(cfg.seed as i64)),
            ("ranks".into(), Value::Int(self.ranks as i64)),
        ]
    }
}

/// The suite's groups in first-seen order, each with its kernel
/// indices — the same shape `simulate_cpu_run` builds its tree in.
fn group_order(kernels: &[KernelSpec]) -> Vec<(&'static str, Vec<usize>)> {
    let mut groups: Vec<(&'static str, Vec<usize>)> = Vec::new();
    for (i, k) in kernels.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| *g == k.group) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((k.group, vec![i])),
        }
    }
    groups
}

/// One rank's lazy timeline: a pass of events is generated at a time
/// (≈ 38 events), so the emitter's working set is O(ranks), not
/// O(events).
struct RankStream {
    rank: u32,
    clock_ns: u64,
    pass: u32,
    buf: VecDeque<TraceEvent>,
    noise: Noise,
    rank_factor: f64,
    /// Noiseless per-kernel duration in ns, from the roofline model.
    kernel_base_ns: Vec<f64>,
}

impl RankStream {
    fn new(cfg: &TraceConfig, rank: u32) -> RankStream {
        let kernels = suite();
        let kernel_base_ns = kernels
            .iter()
            .map(|k| cpu_kernel_time(k, &cfg.run).0 * 1e9)
            .collect();
        // Seed whitening per rank so rank streams are decorrelated but
        // the whole trace is a pure function of the config.
        let mut imbalance = Noise::new(cfg.run.seed ^ (0xace1_u64 << 32) ^ rank as u64);
        RankStream {
            rank,
            clock_ns: 0,
            pass: 0,
            buf: VecDeque::new(),
            noise: Noise::new(cfg.run.seed ^ 0x7ace_0000 ^ ((rank as u64) << 17)),
            rank_factor: imbalance.lognormal(cfg.imbalance_sigma),
            kernel_base_ns,
        }
    }

    /// Generate the next pass into the buffer (no-op once all passes
    /// are emitted).
    fn refill(
        &mut self,
        cfg: &TraceConfig,
        kernels: &[KernelSpec],
        groups: &[(&'static str, Vec<usize>)],
    ) {
        if self.pass >= cfg.passes {
            return;
        }
        let gap = cfg.kernel_gap_ns;
        let mut t = self.clock_ns;
        let rank = self.rank;
        let enter = |buf: &mut VecDeque<TraceEvent>, t: u64, name: &str| {
            buf.push_back(TraceEvent {
                rank,
                time_ns: t,
                kind: TraceEventKind::Enter(name.to_string()),
            });
        };
        let leave = |buf: &mut VecDeque<TraceEvent>, t: u64| {
            buf.push_back(TraceEvent {
                rank,
                time_ns: t,
                kind: TraceEventKind::Leave,
            });
        };
        enter(&mut self.buf, t, cfg.run.variant.root_name());
        t += gap;
        for (gname, idxs) in groups {
            enter(&mut self.buf, t, gname);
            t += gap;
            for &i in idxs {
                let dur = self.kernel_base_ns[i]
                    * self.noise.lognormal(cfg.noise_sigma)
                    * self.rank_factor;
                let dur_ns = (dur.max(1.0)) as u64;
                enter(&mut self.buf, t, kernels[i].name);
                t += dur_ns;
                leave(&mut self.buf, t);
                t += gap;
            }
            leave(&mut self.buf, t);
            t += gap;
        }
        leave(&mut self.buf, t);
        self.clock_ns = t + cfg.pass_gap_ns;
        self.pass += 1;
    }
}

/// Synthesize a trace onto `out`, merging the per-rank timelines in
/// global time order (ties break by rank). Deterministic for a given
/// config; returns the number of events written.
pub fn emit<W: Write>(cfg: &TraceConfig, out: W) -> io::Result<u64> {
    let mut w = TraceWriter::new(out)?;
    for (k, v) in cfg.metadata() {
        w.metadata(&k, &v)?;
    }
    let kernels = suite();
    let groups = group_order(&kernels);
    let mut streams: Vec<RankStream> = (0..cfg.ranks)
        .map(|rank| RankStream::new(cfg, rank))
        .collect();
    // Min-heap over (next event time, rank): only ranks with a buffered
    // event live in the heap, and each rank appears at most once.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    for s in &mut streams {
        s.refill(cfg, &kernels, &groups);
        if let Some(e) = s.buf.front() {
            heap.push(Reverse((e.time_ns, s.rank)));
        }
    }
    while let Some(Reverse((_, rank))) = heap.pop() {
        let s = &mut streams[rank as usize];
        let ev = s.buf.pop_front().expect("heap entry implies buffered event");
        w.event(&ev)?;
        if s.buf.is_empty() {
            s.refill(cfg, &kernels, &groups);
        }
        if let Some(e) = s.buf.front() {
            heap.push(Reverse((e.time_ns, s.rank)));
        }
    }
    let events = w.events_written();
    w.into_inner()?;
    Ok(events)
}

/// [`emit`] to a file path (buffered). Returns the event count.
pub fn emit_to_path(cfg: &TraceConfig, path: impl AsRef<Path>) -> io::Result<u64> {
    let file = std::fs::File::create(path)?;
    let events = emit(cfg, io::BufWriter::new(file))?;
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn small() -> TraceConfig {
        let mut cfg = TraceConfig::quartz(3, 2, 7);
        cfg.run.problem_size = 4096;
        cfg
    }

    #[test]
    fn roundtrip_preserves_events_and_metadata() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.metadata("cluster", &Value::from("quartz")).unwrap();
        w.metadata("problem size", &Value::Int(42)).unwrap();
        w.enter(0, 100, "main").unwrap();
        w.enter(0, 110, "a region with spaces").unwrap();
        w.leave(0, 250).unwrap();
        w.leave(0, 300).unwrap();
        let bytes = w.into_inner().unwrap();

        let mut r = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(
            r.metadata(),
            &[
                ("cluster".to_string(), Value::from("quartz")),
                ("problem size".to_string(), Value::Int(42)),
            ]
        );
        let events = r.next_events(10).unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[1].kind,
            TraceEventKind::Enter("a region with spaces".into())
        );
        assert_eq!(events[3], TraceEvent {
            rank: 0,
            time_ns: 300,
            kind: TraceEventKind::Leave
        });
        assert!(r.next_events(10).unwrap().is_empty());
    }

    #[test]
    fn metadata_after_events_is_refused() {
        let mut w = TraceWriter::new(Vec::new()).unwrap();
        w.enter(0, 1, "main").unwrap();
        assert!(w.metadata("cluster", &Value::from("x")).is_err());
    }

    #[test]
    fn chunked_reads_cover_the_stream_exactly() {
        let cfg = small();
        let mut bytes = Vec::new();
        let total = emit(&cfg, &mut bytes).unwrap();
        assert_eq!(total, cfg.events_total());

        let mut whole = TraceReader::new(Cursor::new(bytes.clone())).unwrap();
        let all = whole.next_events(usize::MAX).unwrap();
        assert_eq!(all.len() as u64, total);

        let mut chunked = TraceReader::new(Cursor::new(bytes)).unwrap();
        let mut seen = Vec::new();
        loop {
            let chunk = chunked.next_events(17).unwrap();
            if chunk.is_empty() {
                break;
            }
            seen.extend(chunk);
        }
        assert_eq!(seen, all);
    }

    #[test]
    fn emitter_is_deterministic_and_per_rank_monotone() {
        let cfg = small();
        let mut a = Vec::new();
        let mut b = Vec::new();
        emit(&cfg, &mut a).unwrap();
        emit(&cfg, &mut b).unwrap();
        assert_eq!(a, b);

        let mut r = TraceReader::new(Cursor::new(a)).unwrap();
        let events = r.next_events(usize::MAX).unwrap();
        // Per-rank times never regress; nesting is balanced per rank.
        let mut last = vec![0u64; cfg.ranks as usize];
        let mut depth = vec![0i64; cfg.ranks as usize];
        let mut global_last = 0u64;
        for e in &events {
            let r = e.rank as usize;
            assert!(e.time_ns >= last[r], "rank {r} time regressed");
            assert!(e.time_ns >= global_last, "global merge order broken");
            last[r] = e.time_ns;
            global_last = e.time_ns;
            match e.kind {
                TraceEventKind::Enter(_) => depth[r] += 1,
                TraceEventKind::Leave => {
                    depth[r] -= 1;
                    assert!(depth[r] >= 0, "rank {r} left more than it entered");
                }
            }
        }
        assert!(depth.iter().all(|d| *d == 0), "unbalanced rank stream");
        // Different seeds give different traces.
        let mut other = small();
        other.run.seed = 8;
        let mut c = Vec::new();
        emit(&other, &mut c).unwrap();
        let mut again = Vec::new();
        emit(&small(), &mut again).unwrap();
        assert_ne!(c, again);
    }

    #[test]
    fn torn_tail_is_a_typed_error() {
        let cfg = small();
        let mut bytes = Vec::new();
        emit(&cfg, &mut bytes).unwrap();
        // Cut mid-line: the final fragment has no newline.
        let cut = bytes.len() - 7;
        let mut r = TraceReader::new(Cursor::new(&bytes[..cut])).unwrap();
        let err = loop {
            match r.next_events(64) {
                Ok(chunk) if chunk.is_empty() => panic!("torn tail read cleanly"),
                Ok(_) => {}
                Err(e) => break e,
            }
        };
        assert!(matches!(err, TraceError::Torn { .. }), "{err}");
    }

    #[test]
    fn torn_tail_salvages_the_events_before_it() {
        let cfg = small();
        let mut bytes = Vec::new();
        let total = emit(&cfg, &mut bytes).unwrap();
        let cut = bytes.len() - 7;
        // One huge batch that runs straight into the tear: every event
        // before the cut comes back, the error arrives on the next call.
        let mut r = TraceReader::new(Cursor::new(&bytes[..cut])).unwrap();
        let salvaged = r.next_events(usize::MAX).unwrap();
        assert!(salvaged.len() as u64 >= total - 2, "salvage lost events");
        let err = r.next_events(usize::MAX).unwrap_err();
        assert!(matches!(err, TraceError::Torn { .. }), "{err}");
        // And the reader stays terminal after the deferred error.
        assert!(r.next_events(64).unwrap().is_empty());
    }

    #[test]
    fn missing_header_is_torn_at_line_one() {
        let err = TraceReader::new(Cursor::new(b"E 0 1 main\n".to_vec())).unwrap_err();
        assert!(matches!(err, TraceError::Torn { line: 1, .. }), "{err}");
    }

    #[test]
    fn emitter_metadata_round_trips_through_the_header() {
        let cfg = small();
        let mut bytes = Vec::new();
        emit(&cfg, &mut bytes).unwrap();
        let r = TraceReader::new(Cursor::new(bytes)).unwrap();
        assert_eq!(r.metadata(), cfg.metadata().as_slice());
        assert!(r
            .metadata()
            .iter()
            .any(|(k, v)| k == "ranks" && *v == Value::Int(3)));
    }
}
