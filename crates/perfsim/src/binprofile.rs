//! Binary v3 shard payload codec (`TKP3`): the store's hot-path
//! profile encoding. Where the JSON payload pays a full parse tree plus
//! a per-token allocation on every load, a v3 payload is decoded with a
//! bounds-checked cursor over the read buffer — strings are borrowed as
//! `&str` slices straight out of the buffer and only materialized once
//! (metadata/frame keys as owned `String`s, string *values* through the
//! global `Arc<str>` interner), and metric columns are bulk-copied.
//!
//! ## Layout
//!
//! All integers are little-endian. Every variable-length region is
//! length-prefixed, and every declared length or count is validated
//! against the bytes actually remaining **before** any allocation or
//! slice — a corrupt length surfaces as [`ProfileError::Malformed`]
//! (never an OOM or panic), which the store classifies as a
//! `Schema` diagnostic.
//!
//! ```text
//! magic        b"TKP3"
//! name table   u32 count, then per string: u32 byte len + UTF-8 bytes
//! metadata     u32 pair count, then per pair: u32 name idx + value
//! nodes        u32 node count, then per node:
//!                u32 attr count,  per attr:  u32 name idx + value
//!                u32 child count, per child: u32 node idx
//! roots        u32 count, then u32 node idx each
//! metrics      u32 column count, then per column (node-sorted):
//!                u32 name idx, u32 entry count m, u32 crc32c(data)
//!                data = m × u32 node idx, then m × f64 value bits
//! value        u8 tag: 0 Null · 1 false · 2 true · 3 Int + i64
//!              · 4 Float + f64 bits · 5 Str + u32 name idx
//! ```
//!
//! Metric values live in per-metric *columns* (node-index array +
//! contiguous `f64` array) rather than per-node maps, each column under
//! its own CRC32C so fault injection can target exactly one column.
//! Non-finite metric bits are rejected with the same
//! [`ProfileError::NonFinite`] the JSON decoder raises, and the
//! assembled forest goes through the exact validation path JSON uses
//! ([`assemble_profile`]) — a payload that decodes at all decodes to a
//! bit-identical [`Profile`].

use crate::profile::{assemble_profile, Profile, ProfileError, Shell};
use crate::store::crc32c;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use thicket_dataframe::{intern, Value};
use thicket_graph::Frame;

/// Magic prefix of every binary (v3) profile payload. JSON payloads
/// start with `{`, so the first byte alone distinguishes the formats —
/// shards may mix encodings record by record (appends onto a v2 store).
pub const PROFILE_MAGIC: &[u8; 4] = b"TKP3";

/// Does this payload carry the binary profile encoding?
pub(crate) fn is_binary_payload(bytes: &[u8]) -> bool {
    bytes.starts_with(PROFILE_MAGIC)
}

fn malformed(msg: impl Into<String>) -> ProfileError {
    ProfileError::Malformed(msg.into())
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

/// Deduplicating name table: every distinct string in the profile
/// (metadata keys, frame attribute keys, string values, metric names)
/// is written once, in first-use order, and referenced by index.
#[derive(Default)]
struct NameTable<'a> {
    names: Vec<&'a str>,
    index: HashMap<&'a str, u32>,
}

impl<'a> NameTable<'a> {
    fn idx(&mut self, s: &'a str) -> u32 {
        if let Some(&i) = self.index.get(s) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(s);
        self.index.insert(s, i);
        i
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_value<'a>(out: &mut Vec<u8>, names: &mut NameTable<'a>, v: &'a Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(false) => out.push(1),
        Value::Bool(true) => out.push(2),
        Value::Int(i) => {
            out.push(3);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(4);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            put_u32(out, names.idx(s));
        }
    }
}

/// Encode a profile as a v3 binary payload.
pub fn encode_profile(p: &Profile) -> Vec<u8> {
    let mut names = NameTable::default();
    let mut body = Vec::new();

    // Metadata, insertion-ordered (profile_hash depends on this order).
    let meta: Vec<(&str, &Value)> = p.metadata_iter().collect();
    put_u32(&mut body, meta.len() as u32);
    for (k, v) in meta {
        put_u32(&mut body, names.idx(k));
        put_value(&mut body, &mut names, v);
    }

    // Nodes: frame attrs (key order, as Frame::iter yields) + children.
    let graph = p.graph();
    put_u32(&mut body, graph.len() as u32);
    for id in graph.ids() {
        let node = graph.node(id);
        let frame = node.frame();
        put_u32(&mut body, frame.len() as u32);
        for (k, v) in frame.iter() {
            put_u32(&mut body, names.idx(k));
            put_value(&mut body, &mut names, v);
        }
        let children = node.children();
        put_u32(&mut body, children.len() as u32);
        for c in children {
            put_u32(&mut body, c.index() as u32);
        }
    }

    // Roots.
    let roots = graph.roots();
    put_u32(&mut body, roots.len() as u32);
    for r in roots {
        put_u32(&mut body, r.index() as u32);
    }

    // Metric columns: one per metric name (sorted), entries in node
    // order, node-index array then contiguous value bits, each column
    // under its own CRC.
    let mut metric_names: Vec<&str> = graph
        .ids()
        .flat_map(|id| p.node_metrics(id).keys().map(|s| &**s))
        .collect();
    metric_names.sort_unstable();
    metric_names.dedup();
    put_u32(&mut body, metric_names.len() as u32);
    for &m in &metric_names {
        let entries: Vec<(u32, f64)> = graph
            .ids()
            .filter_map(|id| p.metric(id, m).map(|v| (id.index() as u32, v)))
            .collect();
        put_u32(&mut body, names.idx(m));
        put_u32(&mut body, entries.len() as u32);
        let mut data = Vec::with_capacity(entries.len() * 12);
        for (ni, _) in &entries {
            put_u32(&mut data, *ni);
        }
        for (_, v) in &entries {
            data.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        put_u32(&mut body, crc32c(&data));
        body.extend_from_slice(&data);
    }

    // Assemble: magic + name table + body.
    let mut out = Vec::with_capacity(body.len() + 64);
    out.extend_from_slice(PROFILE_MAGIC);
    put_u32(&mut out, names.names.len() as u32);
    for s in &names.names {
        put_u32(&mut out, s.len() as u32);
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&body);
    out
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

/// Bounds-checked read cursor. Every `take` validates the requested
/// length against the bytes remaining *before* slicing, and every
/// `count` caps a declared element count by what the remaining bytes
/// could possibly hold *before* any `with_capacity` — a flipped length
/// byte yields a typed error, never an over-allocation or panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], ProfileError> {
        if n > self.remaining() {
            return Err(malformed(format!(
                "truncated {what}: {n} bytes declared, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, ProfileError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, ProfileError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ProfileError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    /// A declared element count, rejected up front if even `min_elem`
    /// bytes per element would run past the end of the buffer.
    fn count(&mut self, min_elem: usize, what: &str) -> Result<usize, ProfileError> {
        let c = self.u32(what)? as usize;
        if min_elem > 0 && c > self.remaining() / min_elem {
            return Err(malformed(format!(
                "{what} count {c} exceeds what {} remaining bytes can hold",
                self.remaining()
            )));
        }
        Ok(c)
    }

    /// A length-prefixed UTF-8 string, borrowed from the buffer.
    fn str(&mut self, what: &str) -> Result<&'a str, ProfileError> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| malformed(format!("{what} is not UTF-8")))
    }
}

fn name<'a>(names: &[&'a str], idx: u32, what: &str) -> Result<&'a str, ProfileError> {
    names
        .get(idx as usize)
        .copied()
        .ok_or_else(|| malformed(format!("{what}: name index {idx} out of range ({} names)", names.len())))
}

/// The interned `Arc<str>` for name-table entry `idx` — materialized
/// through the global interner once per table entry, not per
/// occurrence (the `cache` slot), so repeated names across profiles
/// share one allocation.
fn cached_arc(
    names: &[&str],
    cache: &mut [Option<Arc<str>>],
    idx: u32,
    what: &str,
) -> Result<Arc<str>, ProfileError> {
    let s = name(names, idx, what)?;
    let slot = &mut cache[idx as usize];
    if slot.is_none() {
        *slot = Some(intern(s));
    }
    Ok(slot.clone().expect("just filled"))
}

fn get_value(
    cur: &mut Cursor<'_>,
    names: &[&str],
    cache: &mut [Option<Arc<str>>],
    what: &str,
) -> Result<Value, ProfileError> {
    match cur.u8(what)? {
        0 => Ok(Value::Null),
        1 => Ok(Value::Bool(false)),
        2 => Ok(Value::Bool(true)),
        3 => Ok(Value::Int(cur.u64(what)? as i64)),
        4 => Ok(Value::Float(f64::from_bits(cur.u64(what)?))),
        5 => {
            let idx = cur.u32(what)?;
            Ok(Value::Str(cached_arc(names, cache, idx, what)?))
        }
        t => Err(malformed(format!("{what}: unknown value tag {t}"))),
    }
}

/// Decode a v3 binary payload, validating every length and count
/// against the remaining buffer before use. Structural failures are
/// [`ProfileError::Malformed`]; non-finite metric bits are
/// [`ProfileError::NonFinite`] with node/metric coordinates, exactly as
/// the JSON decoder reports them.
pub fn decode_profile(bytes: &[u8]) -> Result<Profile, ProfileError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(4, "payload magic")? != PROFILE_MAGIC {
        return Err(malformed("bad payload magic (expected TKP3)"));
    }

    // Name table. Shortest possible entry: 4 length bytes.
    let name_count = cur.count(4, "name table")?;
    let mut names: Vec<&str> = Vec::with_capacity(name_count);
    for _ in 0..name_count {
        names.push(cur.str("name table entry")?);
    }

    // Per-name-table cache of interned names, shared by the metadata,
    // frame-attr, and metric-column loops below.
    let mut interned: Vec<Option<Arc<str>>> = vec![None; names.len()];

    // Metadata. Shortest pair: 4 index bytes + 1 tag byte.
    let meta_count = cur.count(5, "metadata")?;
    let mut metadata = Vec::with_capacity(meta_count);
    for _ in 0..meta_count {
        let what = "metadata pair";
        let k = name(&names, cur.u32(what)?, what)?;
        let v = get_value(&mut cur, &names, &mut interned, what)?;
        metadata.push((k.to_string(), v));
    }

    // Nodes. Shortest node: two empty counts = 8 bytes.
    let n = cur.count(8, "nodes")?;
    if n == 0 {
        return Err(malformed("empty call tree (zero nodes)"));
    }
    let mut shells = Vec::with_capacity(n);
    for i in 0..n {
        let attr_count = cur.count(5, "frame attrs")?;
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            // A plain `&str` context: this loop runs once per frame
            // attribute across the whole ensemble, and a `format!`
            // here costs an allocation even on the success path.
            let what = "node frame attr";
            let k = cached_arc(&names, &mut interned, cur.u32(what)?, what)?;
            let v = get_value(&mut cur, &names, &mut interned, what)?;
            attrs.push((k, v));
        }
        let child_count = cur.count(4, "children")?;
        let mut children = Vec::with_capacity(child_count);
        for _ in 0..child_count {
            let c = cur.u32("child index")? as usize;
            if c >= n {
                return Err(malformed(format!("node {i}: bad child index")));
            }
            children.push(c);
        }
        shells.push(Shell {
            frame: Frame::from_attrs(attrs),
            children,
            metrics: BTreeMap::new(),
        });
    }

    // Roots.
    let root_count = cur.count(4, "roots")?;
    let mut root_idxs = Vec::with_capacity(root_count);
    for _ in 0..root_count {
        let r = cur.u32("root index")? as usize;
        if r >= n {
            return Err(malformed("bad root index"));
        }
        root_idxs.push(r);
    }

    // Metric columns. Shortest column: name idx + count + crc = 12.
    // Columns are written in ascending name order, so each node's
    // pairs accumulate already sorted and the per-node maps bulk-build
    // from sorted vecs below instead of paying a tree insert per entry
    // (out-of-order or duplicate names in a hand-crafted payload still
    // land correctly: `collect` sorts, and the last duplicate wins,
    // matching insert semantics).
    let metric_count = cur.count(12, "metric columns")?;
    let mut node_metrics: Vec<Vec<(Arc<str>, f64)>> = vec![Vec::new(); n];
    for _ in 0..metric_count {
        let mname = cached_arc(
            &names,
            &mut interned,
            cur.u32("metric column name")?,
            "metric column",
        )?;
        let m = cur.count(12, "metric column entries")?;
        let declared_crc = cur.u32("metric column crc")?;
        let data_len = m
            .checked_mul(12)
            .ok_or_else(|| malformed("metric column size overflow"))?;
        let data = cur.take(data_len, "metric column data")?;
        if crc32c(data) != declared_crc {
            return Err(malformed(format!(
                "metric column {mname:?}: checksum mismatch"
            )));
        }
        let (idx_bytes, val_bytes) = data.split_at(m * 4);
        for j in 0..m {
            let node =
                u32::from_le_bytes(idx_bytes[j * 4..j * 4 + 4].try_into().unwrap()) as usize;
            if node >= n {
                return Err(malformed(format!(
                    "metric column {mname:?}: node index {node} out of range ({n} nodes)"
                )));
            }
            let v = f64::from_bits(u64::from_le_bytes(
                val_bytes[j * 8..j * 8 + 8].try_into().unwrap(),
            ));
            if !v.is_finite() {
                return Err(ProfileError::NonFinite {
                    node,
                    metric: mname.to_string(),
                });
            }
            node_metrics[node].push((mname.clone(), v));
        }
    }
    for (shell, pairs) in shells.iter_mut().zip(node_metrics) {
        shell.metrics = pairs.into_iter().collect();
    }

    if cur.remaining() != 0 {
        return Err(malformed(format!(
            "{} trailing bytes after profile body",
            cur.remaining()
        )));
    }
    assemble_profile(shells, &root_idxs, metadata)
}

/// Decode a store payload of either encoding: binary if the `TKP3`
/// magic leads, JSON otherwise. This is the store reader's per-record
/// dispatch — shards may mix encodings (e.g. a v3 append onto v2
/// shards), and both decoders converge on identical validation.
pub fn decode_payload(bytes: &[u8]) -> Result<Profile, ProfileError> {
    if is_binary_payload(bytes) {
        decode_profile(bytes)
    } else {
        Profile::parse(
            std::str::from_utf8(bytes)
                .map_err(|_| malformed("record is neither TKP3 binary nor UTF-8 JSON"))?,
        )
    }
}

/// Absolute byte offsets of one metric column inside a v3 payload.
///
/// This is the fault-injection map for [`crate::faults`]: each field
/// locates a rewritable scalar (or the data block) so a corruptor can
/// violate exactly one structural invariant and nothing else.
#[derive(Debug, Clone)]
pub(crate) struct ColumnSpan {
    /// Offset of the column's `u32` name-table index.
    pub(crate) name_idx_at: usize,
    /// Offset of the column's `u32` entry count.
    pub(crate) count_at: usize,
    /// Offset of the column's `u32` data CRC.
    pub(crate) crc_at: usize,
    /// Byte range of the column data (node indices + value bits).
    pub(crate) data: std::ops::Range<usize>,
}

/// Skip one tagged value without materializing it.
fn skip_value(cur: &mut Cursor<'_>, what: &str) -> Result<(), ProfileError> {
    match cur.u8(what)? {
        0..=2 => Ok(()),
        3 | 4 => cur.u64(what).map(|_| ()),
        5 => cur.u32(what).map(|_| ()),
        t => Err(malformed(format!("{what}: unknown value tag {t}"))),
    }
}

/// Walk a well-formed v3 payload and return the byte layout of its
/// metric columns. Used by the fault corruptors, which must target a
/// *healthy* record — structural failures mean the victim was already
/// corrupt and are returned as errors, not skipped.
pub(crate) fn metric_column_spans(bytes: &[u8]) -> Result<Vec<ColumnSpan>, ProfileError> {
    let mut cur = Cursor::new(bytes);
    if cur.take(4, "payload magic")? != PROFILE_MAGIC {
        return Err(malformed("bad payload magic (expected TKP3)"));
    }
    let name_count = cur.count(4, "name table")?;
    for i in 0..name_count {
        cur.str(&format!("name table entry {i}"))?;
    }
    let meta_count = cur.count(5, "metadata")?;
    for i in 0..meta_count {
        let what = format!("metadata pair {i}");
        cur.u32(&what)?;
        skip_value(&mut cur, &what)?;
    }
    let n = cur.count(8, "nodes")?;
    for i in 0..n {
        let attr_count = cur.count(5, "frame attrs")?;
        for _ in 0..attr_count {
            let what = format!("node {i} frame attr");
            cur.u32(&what)?;
            skip_value(&mut cur, &what)?;
        }
        let child_count = cur.count(4, "children")?;
        cur.take(child_count * 4, "child indices")?;
    }
    let root_count = cur.count(4, "roots")?;
    cur.take(root_count * 4, "root indices")?;

    let metric_count = cur.count(12, "metric columns")?;
    let mut spans = Vec::with_capacity(metric_count);
    for _ in 0..metric_count {
        let name_idx_at = cur.pos;
        cur.u32("metric column name")?;
        let count_at = cur.pos;
        let m = cur.count(12, "metric column entries")?;
        let crc_at = cur.pos;
        cur.u32("metric column crc")?;
        let data_start = cur.pos;
        cur.take(m * 12, "metric column data")?;
        spans.push(ColumnSpan {
            name_idx_at,
            count_at,
            crc_at,
            data: data_start..cur.pos,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::Graph;

    fn sample() -> Profile {
        let mut g = Graph::new();
        let main = g.add_root(Frame::with_type("MAIN", "function"));
        let foo = g.add_child(main, Frame::named("FOO"));
        let bar = g.add_child(main, Frame::named("BAR"));
        let mut p = Profile::new(g);
        p.set_metadata("cluster", "quartz");
        p.set_metadata("problem size", 1048576i64);
        p.set_metadata("tuning", Value::Float(0.25));
        p.set_metadata("debug", Value::Bool(false));
        p.set_metadata("note", Value::Null);
        p.set_metric(main, "time (inc)", 2.0);
        p.set_metric(foo, "time (exc)", 1.5);
        p.set_metric(bar, "time (exc)", 0.5);
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let p = sample();
        let bytes = encode_profile(&p);
        assert!(is_binary_payload(&bytes));
        let q = decode_profile(&bytes).unwrap();
        assert_eq!(q.profile_hash(), p.profile_hash());
        assert_eq!(q.graph().len(), 3);
        assert_eq!(q.metadata("problem size"), Some(&Value::Int(1048576)));
        assert_eq!(q.metadata("tuning"), Some(&Value::Float(0.25)));
        assert_eq!(q.metadata("note"), Some(&Value::Null));
        let foo = q.graph().find_by_name("FOO").unwrap();
        assert_eq!(q.metric(foo, "time (exc)"), Some(1.5));
        let main = q.graph().roots()[0];
        assert_eq!(q.graph().node(main).children().len(), 2);
        // Binary and JSON decode to the same document.
        let via_json = Profile::parse(&p.to_string_pretty()).unwrap();
        assert_eq!(via_json.to_string_pretty(), q.to_string_pretty());
    }

    #[test]
    fn binary_beats_json_on_size() {
        let p = crate::rajaperf::simulate_cpu_run(&crate::rajaperf::CpuRunConfig::quartz_default());
        let bin = encode_profile(&p);
        let json = p.to_string_pretty().into_bytes();
        assert!(
            bin.len() < json.len(),
            "binary {} >= json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn dag_roundtrip() {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("MAIN"));
        let a = g.add_child(main, Frame::named("A"));
        let b = g.add_child(main, Frame::named("B"));
        let shared = g.add_child(a, Frame::named("SHARED"));
        g.add_edge(b, shared);
        let p = Profile::new(g);
        let q = decode_profile(&encode_profile(&p)).unwrap();
        let s = q.graph().find_by_name("SHARED").unwrap();
        assert_eq!(q.graph().node(s).parents().len(), 2);
    }

    #[test]
    fn huge_int_metadata_survives() {
        let mut p = sample();
        p.set_metadata("profile", -5810787656424201390i64);
        let q = decode_profile(&encode_profile(&p)).unwrap();
        assert_eq!(
            q.metadata("profile"),
            Some(&Value::Int(-5810787656424201390))
        );
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let p = sample();
        let bytes = encode_profile(&p);
        for cut in 0..bytes.len() {
            match decode_profile(&bytes[..cut]) {
                Err(ProfileError::Malformed(_)) | Err(ProfileError::NonFinite { .. }) => {}
                Ok(_) => panic!("decoded a truncated payload (cut {cut})"),
                Err(other) => panic!("unexpected error kind at cut {cut}: {other}"),
            }
        }
    }

    #[test]
    fn huge_declared_counts_do_not_allocate() {
        // A payload whose name-table count claims u32::MAX entries:
        // the cursor must reject the count against remaining bytes, not
        // try to reserve 4 billion slots.
        let mut bytes = PROFILE_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_profile(&bytes),
            Err(ProfileError::Malformed(m)) if m.contains("count")
        ));
    }

    #[test]
    fn bad_name_index_and_tag_rejected() {
        let p = sample();
        let good = encode_profile(&p);
        // Mutate each byte to a large value and confirm decoding never
        // panics — it either still decodes or fails typed.
        for i in 4..good.len() {
            let mut b = good.clone();
            b[i] = 0xff;
            let _ = decode_profile(&b);
        }
    }

    #[test]
    fn non_finite_metric_bits_rejected_with_location() {
        let p = sample();
        let mut bytes = encode_profile(&p);
        // Find the f64 bits of 1.5 ("time (exc)" on node 1) and replace
        // them with +inf, re-fixing the column CRC so the corruption
        // reaches the finiteness check.
        let needle = 1.5f64.to_bits().to_le_bytes();
        let pos = bytes
            .windows(8)
            .position(|w| w == needle)
            .expect("1.5 present");
        bytes[pos..pos + 8].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        // Recompute every column CRC by re-walking: simplest is to
        // decode-with-fixup — locate the column holding the mutated
        // value. The "time (exc)" column has 2 entries => data length
        // 24; its CRC field sits 4 bytes before the data.
        // Brute-force: try fixing the CRC at every plausible offset.
        let mut fixed = None;
        for crc_at in (4..bytes.len().saturating_sub(4)).rev() {
            for dlen in [12usize, 24, 36] {
                if crc_at + 4 + dlen > bytes.len() {
                    continue;
                }
                let span = crc_at + 4..crc_at + 4 + dlen;
                if !(span.contains(&pos)) {
                    continue;
                }
                let mut b = bytes.clone();
                let crc = crc32c(&b[span.clone()]);
                b[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
                if let Err(ProfileError::NonFinite { metric, .. }) = decode_profile(&b) {
                    fixed = Some(metric);
                    break;
                }
            }
            if fixed.is_some() {
                break;
            }
        }
        assert_eq!(fixed.as_deref(), Some("time (exc)"));
    }
}
