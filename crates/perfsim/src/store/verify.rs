// ---------------------------------------------------------------------
// Deep verification (fsck) and repair (recover).
// ---------------------------------------------------------------------

use super::crc::crc32c;
use super::layout::{
    list_dir, manifest_name, parse_manifest_name, parse_shard_name, LOCK_NAME,
};
use super::lease;
use super::lock::{classify_lock, LockState};
use super::manifest::{Manifest, ShardInfo};
use super::{
    FsckReport, GenCheck, RecoverReport, Store, StoreError, StoreOptions, RECORD_HEADER_BYTES,
    SHARD_MAGIC,
};
use crate::ingest::{DiagKind, Diagnostic, IngestReport};
use crate::profile::Profile;
use std::collections::HashSet;
use std::path::Path;

fn entry_ranges(m: &Manifest, si: usize) -> Vec<(u64, u32, u32)> {
    let mut ranges: Vec<(u64, u32, u32)> = m
        .profiles
        .iter()
        .filter(|e| e.shard == si)
        .map(|e| (e.offset, e.len, e.crc))
        .collect();
    ranges.sort_unstable_by_key(|(off, _, _)| *off);
    ranges
}

/// Walk a shard byte image, returning every CRC-intact record as
/// `(index, payload)` plus at most one classified finding for the first
/// structural problem (torn tail or checksum mismatch).
///
/// The walk is resilient: a record with a bad CRC does not stop it
/// (framing is still trusted as long as lengths stay in bounds), so
/// later intact records remain salvageable.
fn walk_shard<'a>(bytes: &'a [u8], name: &str) -> (Vec<(usize, &'a [u8])>, Option<Diagnostic>) {
    let mut out = Vec::new();
    if bytes.len() < 4 || &bytes[..4] != SHARD_MAGIC {
        return (
            out,
            Some(Diagnostic {
                source: name.to_string(),
                kind: DiagKind::ChecksumMismatch {
                    shard: name.to_string(),
                    record: 0,
                },
            }),
        );
    }
    let mut pos = SHARD_MAGIC.len();
    let mut ri = 0usize;
    let mut finding = None;
    while pos < bytes.len() {
        // The length prefix is only trusted after checking it fits in
        // the bytes that actually remain — a flipped length byte lands
        // as a torn-shard finding, never an out-of-bounds slice.
        if bytes.len() - pos < RECORD_HEADER_BYTES {
            finding = finding.or(Some(Diagnostic {
                source: format!("{name}#{ri}"),
                kind: DiagKind::TornShard {
                    shard: name.to_string(),
                },
            }));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + RECORD_HEADER_BYTES].try_into().unwrap());
        if bytes.len() - pos - RECORD_HEADER_BYTES < len {
            finding = finding.or(Some(Diagnostic {
                source: format!("{name}#{ri}"),
                kind: DiagKind::TornShard {
                    shard: name.to_string(),
                },
            }));
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + RECORD_HEADER_BYTES + len];
        if crc32c(payload) == crc {
            out.push((ri, payload));
        } else {
            finding = finding.or(Some(Diagnostic {
                source: format!("{name}#{ri}"),
                kind: DiagKind::ChecksumMismatch {
                    shard: name.to_string(),
                    record: ri,
                },
            }));
        }
        pos += RECORD_HEADER_BYTES + len;
        ri += 1;
    }
    (out, finding)
}

/// Deep-check one shard against its manifest descriptor.
fn check_shard(
    dir: &Path,
    info: &ShardInfo,
    expected: Vec<(u64, u32, u32)>,
) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let bytes = match std::fs::read(dir.join(&info.file)) {
        Ok(b) => b,
        Err(e) => {
            findings.push(Diagnostic {
                source: info.file.clone(),
                kind: DiagKind::Io(format!("{}: {e}", info.file)),
            });
            return findings;
        }
    };
    if crc32c(&bytes) == info.crc && bytes.len() as u64 == info.bytes {
        // The file digest matches what the manifest promised — but the
        // manifest's *per-record* claims can still lie (a corrupted or
        // rewritten entry range), so verify each declared byte range
        // against the shard image before trusting it.
        for (ri, &(offset, len, crc)) in expected.iter().enumerate() {
            let bad = offset
                .checked_add(len as u64)
                .is_none_or(|end| end > bytes.len() as u64)
                || crc32c(&bytes[offset as usize..(offset + len as u64) as usize]) != crc;
            if bad {
                findings.push(Diagnostic {
                    source: format!("{}#{ri}", info.file),
                    kind: DiagKind::StaleManifest {
                        manifest: format!(
                            "{}#{ri}: manifest entry range {offset}+{len} disagrees with shard bytes",
                            info.file
                        ),
                    },
                });
            }
        }
        // Every frame is bit-intact — but a corruptor that re-frames a
        // record (rewriting the frame CRC and manifest to match) keeps
        // all digests consistent while still breaking the payload, so
        // deep verification must run each record through the decoder.
        let (records, _) = walk_shard(&bytes, &info.file);
        for (ri, payload) in records {
            if let Err(e) = crate::binprofile::decode_payload(payload) {
                findings.push(Diagnostic {
                    source: format!("{}#{ri}", info.file),
                    kind: DiagKind::from_profile_error(&e),
                });
            }
        }
        return findings;
    }
    // Digest mismatch: walk the records to classify precisely.
    let (intact, finding) = walk_shard(&bytes, &info.file);
    if let Some(d) = finding {
        findings.push(d);
    }
    // A record whose payload CRC matches its *frame* but disagrees with
    // the manifest (or extra/missing records) still breaks the digest:
    // classify against the manifest's expectations.
    if findings.is_empty() {
        if intact.len() != expected.len() || bytes.len() as u64 != info.bytes {
            findings.push(Diagnostic {
                source: info.file.clone(),
                kind: DiagKind::StaleManifest {
                    manifest: format!(
                        "{}: shard holds {} intact records, manifest expects {}",
                        info.file,
                        intact.len(),
                        expected.len()
                    ),
                },
            });
        } else {
            // Same framing, different bytes → some record's content and
            // CRC were rewritten together; surface as checksum trouble.
            findings.push(Diagnostic {
                source: info.file.clone(),
                kind: DiagKind::ChecksumMismatch {
                    shard: info.file.clone(),
                    record: 0,
                },
            });
        }
    }
    findings
}

/// Deep-verify every generation and classify all corruption (see
/// [`Store::fsck`]). Coordination files — the commit `LOCK` and
/// `pin-*` reader leases — are classified too: stale ones (dead owner
/// pid, or heartbeat past its ttl) become typed findings that
/// [`Store::recover`] reaps, live ones are reported untouched.
pub(crate) fn fsck(dir: &Path, opts: &StoreOptions) -> Result<FsckReport, StoreError> {
    let names = list_dir(dir)?;
    let mut gens: Vec<u64> = names
        .iter()
        .filter_map(|n| parse_manifest_name(n))
        .collect();
    gens.sort_unstable();
    gens.reverse();

    let mut generations = Vec::with_capacity(gens.len());
    let mut referenced: HashSet<String> = HashSet::new();
    for gen in gens {
        let mname = manifest_name(gen);
        let mut findings = Vec::new();
        match std::fs::read(dir.join(&mname))
            .map_err(|e| e.to_string())
            .and_then(|b| Manifest::from_file_bytes(&b))
        {
            Err(why) => findings.push(Diagnostic {
                source: mname.clone(),
                kind: DiagKind::StaleManifest {
                    manifest: format!("{mname}: {why}"),
                },
            }),
            Ok(m) => {
                if m.generation != gen {
                    findings.push(Diagnostic {
                        source: mname.clone(),
                        kind: DiagKind::StaleManifest {
                            manifest: format!(
                                "{mname}: body claims generation {}",
                                m.generation
                            ),
                        },
                    });
                }
                for (si, info) in m.shards.iter().enumerate() {
                    referenced.insert(info.file.clone());
                    findings.extend(check_shard(dir, info, entry_ranges(&m, si)));
                }
                // Deep-verify the v2 columnar index: every block
                // must decode and agree with its presence mask.
                for b in &m.columns {
                    if let Err(why) = b.values() {
                        findings.push(Diagnostic {
                            source: mname.clone(),
                            kind: DiagKind::StaleManifest {
                                manifest: format!("{mname}: {why}"),
                            },
                        });
                    }
                }
            }
        }
        let intact = findings.is_empty();
        generations.push(GenCheck {
            generation: gen,
            manifest: mname,
            intact,
            findings,
        });
    }

    let orphan_shards: Vec<String> = names
        .iter()
        .filter(|n| parse_shard_name(n).is_some() && !referenced.contains(*n))
        .cloned()
        .collect();
    let temps: Vec<String> = names
        .iter()
        .filter(|n| n.starts_with('.') && n.ends_with(".tmp"))
        .cloned()
        .collect();

    // Coordination files: a stale lock or lease is a typed finding
    // (recover reaps it); live ones are reported but never findings —
    // a healthy concurrent store has them all the time.
    let mut coordination = Vec::new();
    let mut live_lock = None;
    if names.iter().any(|n| n == LOCK_NAME) {
        match classify_lock(dir, opts.lock_ttl) {
            LockState::Live(owner) => live_lock = Some(owner),
            LockState::Stale(why) => coordination.push(Diagnostic {
                source: LOCK_NAME.to_string(),
                kind: DiagKind::StaleLock { lock: why },
            }),
            LockState::Gone => {}
        }
    }
    let leases = lease::scan(dir, &names, opts.lease_ttl);
    for name in leases.stale {
        coordination.push(Diagnostic {
            source: name.clone(),
            kind: DiagKind::StaleLease { lease: name },
        });
    }

    let newest_intact = generations
        .iter()
        .filter(|g| g.intact)
        .map(|g| g.generation)
        .max();
    Ok(FsckReport {
        generations,
        orphan_shards,
        temps,
        coordination,
        live_lock,
        live_leases: leases.live,
        newest_intact,
    })
}

/// Repair the directory to a consistent state (see [`Store::recover`]).
pub(crate) fn recover(dir: &Path, opts: &StoreOptions) -> Result<RecoverReport, StoreError> {
    let fsck = fsck(dir, opts)?;
    let mut removed = Vec::new();
    let mut diagnostics = Vec::new();

    let remove = |d: &Path, name: &str, removed: &mut Vec<String>| {
        if std::fs::remove_file(d.join(name)).is_ok() {
            removed.push(name.to_string());
        }
    };

    for t in &fsck.temps {
        remove(dir, t, &mut removed);
    }
    // Reap stale coordination files *before* any path that re-acquires
    // the commit lock (the salvage rewrite below): a dead writer's LOCK
    // must not make its own repair wait out a takeover window.
    for d in &fsck.coordination {
        remove(dir, &d.source, &mut removed);
    }

    if let Some(keep) = fsck.newest_intact {
        // Roll back to the newest intact generation: drop every
        // broken generation's files and all orphans. Older intact
        // generations stay (they are the retention window).
        let mut kept_shards: HashSet<String> = HashSet::new();
        let mut kept_profiles = 0usize;
        for g in fsck.generations.iter().filter(|g| g.intact) {
            if let Ok(bytes) = std::fs::read(dir.join(&g.manifest)) {
                if let Ok(m) = Manifest::from_file_bytes(&bytes) {
                    if g.generation == keep {
                        kept_profiles = m.profiles.len();
                    }
                    kept_shards.extend(m.shards.iter().map(|s| s.file.clone()));
                }
            }
        }
        for g in fsck.generations.iter().filter(|g| !g.intact) {
            diagnostics.extend(g.findings.iter().cloned());
            remove(dir, &g.manifest, &mut removed);
        }
        for name in list_dir(dir)? {
            if parse_shard_name(&name).is_some() && !kept_shards.contains(&name) {
                remove(dir, &name, &mut removed);
            }
        }
        let attempted = kept_profiles + diagnostics.len();
        return Ok(RecoverReport {
            generation: keep,
            salvaged: 0,
            removed,
            report: IngestReport {
                attempted,
                loaded: kept_profiles,
                diagnostics,
                pushdown: None,
            },
        });
    }

    // No generation verifies: salvage every intact record from
    // every shard file present, newest generation's shards first so
    // its copy of a profile wins the hash dedupe.
    let mut shard_files: Vec<(u64, usize, String)> = list_dir(dir)?
        .into_iter()
        .filter_map(|n| parse_shard_name(&n).map(|(g, i)| (g, i, n)))
        .collect();
    shard_files.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut seen: HashSet<i64> = HashSet::new();
    let mut salvaged: Vec<Profile> = Vec::new();
    for (_, _, name) in &shard_files {
        let bytes = std::fs::read(dir.join(name))?;
        let (records, finding) = walk_shard(&bytes, name);
        for (ri, payload) in records {
            match crate::binprofile::decode_payload(payload) {
                Ok(p) => {
                    if seen.insert(p.profile_hash()) {
                        salvaged.push(p);
                    }
                    // A hash-duplicate across generations is the
                    // same profile's older copy, not a fault: no
                    // diagnostic.
                }
                Err(e) => diagnostics.push(Diagnostic {
                    source: format!("{name}#{ri}"),
                    kind: DiagKind::from_profile_error(&e),
                }),
            }
        }
        if let Some(d) = finding {
            diagnostics.push(d);
        }
    }
    for g in &fsck.generations {
        diagnostics.extend(
            g.findings
                .iter()
                .filter(|d| matches!(d.kind, DiagKind::StaleManifest { .. }))
                .cloned(),
        );
    }
    if salvaged.is_empty() {
        return Err(StoreError::NoGeneration(format!(
            "nothing salvageable in {}",
            dir.display()
        )));
    }

    // Rewrite the survivors as a fresh generation (default layout, but
    // the caller's coordination windows), then drop every older file.
    let old_files: Vec<String> = list_dir(dir)?
        .into_iter()
        .filter(|n| parse_shard_name(n).is_some() || parse_manifest_name(n).is_some())
        .collect();
    let report = Store::save_opts(
        dir,
        &salvaged,
        &StoreOptions {
            lock_timeout: opts.lock_timeout,
            lock_ttl: opts.lock_ttl,
            lease_ttl: opts.lease_ttl,
            backoff_seed: opts.backoff_seed,
            ..StoreOptions::default()
        },
    )?;
    // The salvage save may reuse a generation number whose manifest never
    // committed (the crashed writer left only a temp), so its fresh files
    // can collide with `old_files` names. Never delete what we just wrote.
    for name in old_files {
        let reused = parse_shard_name(&name).map(|(g, _)| g) == Some(report.generation)
            || parse_manifest_name(&name) == Some(report.generation);
        if !reused {
            remove(dir, &name, &mut removed);
        }
    }
    let salvaged_count = salvaged.len();
    Ok(RecoverReport {
        generation: report.generation,
        salvaged: salvaged_count,
        removed,
        report: IngestReport {
            attempted: salvaged_count + diagnostics.len(),
            loaded: salvaged_count,
            diagnostics,
            pushdown: None,
        },
    })
}
