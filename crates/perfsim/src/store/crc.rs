// ---------------------------------------------------------------------
// CRC32C (Castagnoli), table-driven software implementation.
// ---------------------------------------------------------------------

const fn crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82f6_3b78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_table();

/// Eight lookup tables for slice-by-8: `TABLES[k][b]` advances a CRC
/// whose byte `b` still has `k` more input bytes after it in the
/// current 8-byte chunk. `TABLES[0]` is the classic byte-at-a-time
/// table.
const fn crc32c_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    t[0] = crc32c_table();
    let mut i = 0;
    while i < 256 {
        let mut crc = t[0][i];
        let mut k = 1;
        while k < 8 {
            crc = (crc >> 8) ^ t[0][(crc & 0xff) as usize];
            t[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    t
}

static CRC32C_TABLES: [[u32; 256]; 8] = crc32c_tables();

/// CRC-32C (Castagnoli) of `bytes` — the checksum guarding shard
/// records and manifest bodies. Catches any single-bit flip.
///
/// Slice-by-8: each iteration folds eight input bytes through eight
/// precomputed tables, ~5× the throughput of the byte-at-a-time loop
/// this replaced. Every record load and fsck pass runs through here,
/// so CRC throughput is directly on the ingest hot path.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}
