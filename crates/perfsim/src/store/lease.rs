// ---------------------------------------------------------------------
// Reader leases: generation pins that GC must respect.
// ---------------------------------------------------------------------
//
// A pinned snapshot registers a lease file `pin-<gen>-<pid>-<token>`
// whose *name* is the whole protocol: which generation, which process,
// which pin. The body is never read — arbitrary garbage inside a lease
// file changes nothing. Liveness is `pid_alive(pid) && mtime age ≤
// lease_ttl`; long-lived snapshots re-touch the mtime (heartbeat) as
// they are used. GC skips every generation with a live lease and reaps
// stale lease files (dead pid, or heartbeat past the ttl) as it goes.
//
// Within one process, pins on the same (directory, generation) share a
// single lease file through a refcounted registry — a thousand reader
// threads cost one file, and the file disappears when the last pin
// drops.

use super::layout::{fresh_token, parse_pin_name, pid_alive, pin_name};
use super::StoreError;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant, SystemTime};

/// One live lease: a pin file on disk plus heartbeat state. Shared
/// (`Arc`) by every in-process snapshot pinning the same generation.
pub(crate) struct LeaseCore {
    dir: PathBuf,
    key: (PathBuf, u64),
    file_name: String,
    ttl: Duration,
    last_touch: Mutex<Instant>,
}

type Registry = Mutex<HashMap<(PathBuf, u64), Weak<LeaseCore>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Default::default)
}

/// Writing the lease file failed because the medium is read-only —
/// degrade to handle-only pinning rather than refusing to read.
fn read_only_medium(e: &io::Error) -> bool {
    // ErrorKind::ReadOnlyFilesystem is not stable at our MSRV; EROFS
    // is 30 on every Linux ABI we run on.
    e.kind() == io::ErrorKind::PermissionDenied || e.raw_os_error() == Some(30)
}

/// Fault-injection seam for the read-only-medium path: with
/// `THICKET_FAULT_EROFS` set in the environment, every lease-file write
/// fails with EROFS exactly as a read-only mount would make it fail.
/// Tests run as root cannot provoke the real thing with permission bits
/// (root bypasses them), and mounting a filesystem inside a unit test
/// is worse — so, per this repo's injection discipline, the fault is a
/// seam. The classification path ([`read_only_medium`]) still runs.
fn erofs_injected() -> Option<io::Error> {
    std::env::var_os("THICKET_FAULT_EROFS").map(|_| io::Error::from_raw_os_error(30))
}

/// Acquire (or share) a lease on `gen` in `dir`. `Ok(None)` means the
/// directory is read-only: no lease can exist, and no GC can run
/// there either, so handle-only pinning is safe.
pub(crate) fn acquire(
    dir: &Path,
    gen: u64,
    ttl: Duration,
) -> Result<Option<Arc<LeaseCore>>, StoreError> {
    let canon = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    let key = (canon, gen);
    let mut reg = registry().lock();
    if let Some(existing) = reg.get(&key).and_then(Weak::upgrade) {
        existing.touch_file();
        return Ok(Some(existing));
    }
    let name = pin_name(gen, std::process::id(), fresh_token());
    let wrote = match erofs_injected() {
        Some(e) => Err(e),
        None => std::fs::write(dir.join(&name), b"thicket reader lease\n"),
    };
    match wrote {
        Ok(()) => {}
        Err(e) if read_only_medium(&e) => return Ok(None),
        Err(e) => return Err(StoreError::Io(e)),
    }
    let core = Arc::new(LeaseCore {
        dir: dir.to_path_buf(),
        key: key.clone(),
        file_name: name,
        ttl,
        last_touch: Mutex::new(Instant::now()),
    });
    reg.insert(key, Arc::downgrade(&core));
    Ok(Some(core))
}

impl LeaseCore {
    pub(crate) fn file_name(&self) -> &str {
        &self.file_name
    }

    /// Re-touch the lease file if a quarter of the ttl has passed since
    /// the last heartbeat — cheap enough to call on every read.
    pub(crate) fn maybe_heartbeat(&self) {
        let mut last = self.last_touch.lock();
        if last.elapsed() >= self.ttl / 4 {
            *last = Instant::now();
            drop(last);
            self.touch_file();
        }
    }

    fn touch_file(&self) {
        if let Ok(f) = std::fs::OpenOptions::new()
            .append(true)
            .open(self.dir.join(&self.file_name))
        {
            let _ = f.set_modified(SystemTime::now());
        }
    }
}

impl Drop for LeaseCore {
    fn drop(&mut self) {
        let mut reg = registry().lock();
        // Only remove the registry slot if it still points at *us* (a
        // new lease for the same key may have raced in after our
        // strong count hit zero).
        if reg
            .get(&self.key)
            .is_some_and(|w| w.strong_count() == 0)
        {
            reg.remove(&self.key);
        }
        drop(reg);
        // The file name embeds our unique token: deleting it can never
        // hit a successor's lease.
        let _ = std::fs::remove_file(self.dir.join(&self.file_name));
    }
}

/// What a sweep of the directory's `pin-*` files found.
pub(crate) struct LeaseScan {
    /// Generations protected by at least one live lease.
    pub(crate) pinned: HashSet<u64>,
    /// Live lease file names.
    pub(crate) live: Vec<String>,
    /// Stale lease file names (dead owner or expired heartbeat) — safe
    /// to reap.
    pub(crate) stale: Vec<String>,
}

/// Classify every well-formed `pin-*` name in `names`. Files that
/// vanish mid-scan are skipped (their owner dropped them — the
/// happy path).
pub(crate) fn scan(dir: &Path, names: &[String], lease_ttl: Duration) -> LeaseScan {
    let mut out = LeaseScan {
        pinned: HashSet::new(),
        live: Vec::new(),
        stale: Vec::new(),
    };
    for name in names {
        let Some((gen, pid, _token)) = parse_pin_name(name) else {
            continue;
        };
        let modified = match std::fs::metadata(dir.join(name)).and_then(|m| m.modified()) {
            Ok(t) => t,
            Err(_) => continue,
        };
        // A future mtime (clock skew) reads as "just touched": err on
        // the side of keeping the lease alive.
        let fresh = modified.elapsed().map(|age| age <= lease_ttl).unwrap_or(true);
        if pid_alive(pid) && fresh {
            out.pinned.insert(gen);
            out.live.push(name.clone());
        } else {
            out.stale.push(name.clone());
        }
    }
    out
}
