// ---------------------------------------------------------------------
// Directory naming, process liveness, and token generation.
// ---------------------------------------------------------------------

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Name of the advisory commit-lock file serializing writers.
pub(crate) const LOCK_NAME: &str = "LOCK";

pub(crate) fn manifest_name(gen: u64) -> String {
    format!("MANIFEST-{gen:06}")
}

pub(crate) fn shard_name(gen: u64, idx: usize) -> String {
    format!("shard-{gen:06}-{idx:04}.tks")
}

/// `MANIFEST-<gen>` → gen.
pub(crate) fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("MANIFEST-")?.parse().ok()
}

/// `shard-<gen>-<idx>.tks` → (gen, idx).
pub(crate) fn parse_shard_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".tks")?;
    let (g, i) = rest.split_once('-')?;
    Some((g.parse().ok()?, i.parse().ok()?))
}

/// `pin-<gen:06>-<pid>-<token:016x>` — a reader lease on a generation.
/// The lease's whole identity lives in the *name*; the file body is
/// never load-bearing (arbitrary garbage inside must change nothing).
pub(crate) fn pin_name(gen: u64, pid: u32, token: u64) -> String {
    format!("pin-{gen:06}-{pid}-{token:016x}")
}

/// `pin-<gen>-<pid>-<token>` → (gen, pid, token).
pub(crate) fn parse_pin_name(name: &str) -> Option<(u64, u32, u64)> {
    let rest = name.strip_prefix("pin-")?;
    let mut parts = rest.splitn(3, '-');
    let gen = parts.next()?.parse().ok()?;
    let pid = parts.next()?.parse().ok()?;
    let token = parts.next()?;
    if token.len() != 16 {
        return None;
    }
    Some((gen, pid, u64::from_str_radix(token, 16).ok()?))
}

pub(crate) fn list_dir(dir: &Path) -> io::Result<Vec<String>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|e| e.path().is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    Ok(names)
}

/// Manifest generations present, ascending.
pub(crate) fn list_generations(dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens: Vec<u64> = list_dir(dir)?
        .iter()
        .filter_map(|n| parse_manifest_name(n))
        .collect();
    gens.sort_unstable();
    Ok(gens)
}

/// Is `pid` a live process on this machine?
///
/// Pid 0 is never alive (it is the conventional "owner already dead"
/// marker in coordination files). On systems with `/proc` (Linux —
/// where the store's cross-process story is exercised) liveness is a
/// directory probe; elsewhere liveness is assumed and staleness falls
/// back to heartbeat age alone.
pub(crate) fn pid_alive(pid: u32) -> bool {
    if pid == 0 {
        return false;
    }
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        proc_dir.join(pid.to_string()).is_dir()
    } else {
        true
    }
}

/// A token unique across threads of this process and (mixed with the
/// pid) across processes — no clock or RNG dependency, so coordination
/// stays deterministic under test.
pub(crate) fn fresh_token() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut z = ((std::process::id() as u64) << 32)
        ^ c.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
