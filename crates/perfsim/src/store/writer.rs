// ---------------------------------------------------------------------
// Writer with enumerable crash points.
// ---------------------------------------------------------------------
//
// The `*_locked` functions here are the commit critical sections: the
// facade in `mod.rs` stages what it can outside the lock (payload
// encoding dominates append CPU and needs no directory state), then
// acquires the commit lock and calls in. Everything from the first
// `CrashClock` tick to the last GC step runs under the lock, so the
// enumerable crash-point sequence is exactly the single-writer one —
// taking the lock adds no points.

use super::crc::crc32c;
use super::layout::{
    list_dir, list_generations, manifest_name, parse_manifest_name, parse_shard_name, shard_name,
};
use super::lease;
use super::manifest::{build_columns, sorted_meta, Manifest, ShardInfo, StoreEntry};
use super::reader::{record_index_of, PayloadSlice};
use super::{
    AppendMode, CompactReport, ManifestVersion, Store, StoreError, StoreOptions, WriteReport,
    RECORD_HEADER_BYTES, SHARD_MAGIC,
};
use crate::ingest::{DiagKind, Diagnostic, IngestReport};
use crate::profile::Profile;
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use std::time::Duration;
use thicket_dataframe::Value;

/// Counts the writer's enumerated crash points and aborts at the
/// injected one. Each `tick` is a distinct "the process died exactly
/// here" scenario.
pub(crate) struct CrashClock {
    pub(crate) next: usize,
    pub(crate) trigger: Option<usize>,
}

impl CrashClock {
    pub(crate) fn tick(&mut self, label: &'static str) -> Result<(), StoreError> {
        let point = self.next;
        self.next += 1;
        if self.trigger == Some(point) {
            Err(StoreError::InjectedCrash { point, label })
        } else {
            Ok(())
        }
    }
}

fn sync_file(path: &Path) -> io::Result<()> {
    std::fs::OpenOptions::new().read(true).open(path)?.sync_all()
}

/// Where one payload landed: shard index *within this write's packs*,
/// plus frame coordinates.
#[derive(Debug, Clone, Copy, Default)]
struct Placement {
    shard: usize,
    offset: u64,
    len: u32,
    crc: u32,
}

/// Encode one profile as a record payload in the target format's
/// encoding: binary `TKP3` for v3, a JSON document otherwise.
pub(crate) fn encode_payload(p: &Profile, format: ManifestVersion) -> Vec<u8> {
    match format {
        ManifestVersion::V3 => crate::binprofile::encode_profile(p),
        _ => p.to_string_pretty().into_bytes(),
    }
}

/// One profile fully prepared for commit — hash, sorted metadata row,
/// and encoded payload — so the commit lock is held only for I/O, not
/// for encoding.
pub(crate) struct Staged {
    pub(crate) hash: i64,
    pub(crate) row: Vec<(String, Value)>,
    pub(crate) payload: Vec<u8>,
}

pub(crate) fn stage(profiles: &[Profile], format: ManifestVersion) -> Vec<Staged> {
    profiles
        .iter()
        .map(|p| Staged {
            hash: p.profile_hash(),
            row: sorted_meta(p),
            payload: encode_payload(p, format),
        })
        .collect()
}

/// Greedy packing: a shard closes once it carries ≥ `shard_bytes` of
/// payload (every shard holds ≥ 1 record). Returns payload indices per
/// shard.
fn pack_shards(payloads: &[&[u8]], shard_bytes: usize) -> Vec<Vec<usize>> {
    let mut shards: Vec<Vec<usize>> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    let mut open_bytes = 0usize;
    for (i, pl) in payloads.iter().enumerate() {
        open.push(i);
        open_bytes += pl.len();
        if open_bytes >= shard_bytes {
            shards.push(std::mem::take(&mut open));
            open_bytes = 0;
        }
    }
    if !open.is_empty() {
        shards.push(open);
    }
    shards
}

/// Write the packed shard files under generation `gen` (final names —
/// invisible until a manifest references them). Two crash points per
/// shard: mid-write (a torn file) and after the full write.
fn write_shards(
    dir: &Path,
    gen: u64,
    payloads: &[&[u8]],
    packs: &[Vec<usize>],
    clock: &mut CrashClock,
) -> Result<(Vec<ShardInfo>, Vec<Placement>), StoreError> {
    let mut infos = Vec::with_capacity(packs.len());
    let mut placements = vec![Placement::default(); payloads.len()];
    for (si, members) in packs.iter().enumerate() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        for &pi in members {
            let pl = payloads[pi];
            let crc = crc32c(pl);
            placements[pi] = Placement {
                shard: si,
                offset: (bytes.len() + RECORD_HEADER_BYTES) as u64,
                len: pl.len() as u32,
                crc,
            };
            bytes.extend_from_slice(&(pl.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(pl);
        }
        let path = dir.join(shard_name(gen, si));
        // Model a crash mid-write: only a prefix reached the disk.
        std::fs::write(&path, &bytes[..bytes.len() / 2])?;
        clock.tick("mid-shard-write")?;
        std::fs::write(&path, &bytes)?;
        sync_file(&path)?;
        clock.tick("shard-written")?;
        infos.push(ShardInfo {
            file: shard_name(gen, si),
            bytes: bytes.len() as u64,
            crc: crc32c(&bytes),
            records: members.len(),
        });
    }
    Ok((infos, placements))
}

/// Manifest commit: dot-temp, sync, rename (the atomic commit point).
fn commit_manifest(dir: &Path, manifest: &Manifest, clock: &mut CrashClock) -> Result<(), StoreError> {
    let gen = manifest.generation;
    let bytes = manifest.to_file_bytes();
    let tmp = dir.join(format!(".{}.tmp", manifest_name(gen)));
    std::fs::write(&tmp, &bytes[..bytes.len() / 2])?;
    clock.tick("mid-manifest-write")?;
    std::fs::write(&tmp, &bytes)?;
    sync_file(&tmp)?;
    clock.tick("manifest-written")?;
    std::fs::rename(&tmp, dir.join(manifest_name(gen)))?;
    clock.tick("manifest-committed")?;
    Ok(())
}

/// Remove a file, tolerating a concurrent removal (another process's
/// GC or a lease owner dropping its own pin).
fn remove_quiet(dir: &Path, name: &str) -> Result<(), StoreError> {
    match std::fs::remove_file(dir.join(name)) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// GC generations before `cutoff` — manifests first (a shardless
/// manifest is unambiguously broken; a manifestless shard is
/// unambiguously an orphan). Shards are then deleted **by reference**,
/// not by generation number: an appended generation's manifest keeps
/// referencing older shard files, which must survive the GC of the
/// manifest that originally wrote them.
///
/// Generations holding a live reader lease are skipped entirely (their
/// manifest survives, so their shards stay referenced); stale lease
/// files — dead owner pid or heartbeat past `lease_ttl` — are reaped
/// along the way.
fn gc_generations(
    dir: &Path,
    cutoff: u64,
    lease_ttl: Duration,
    clock: &mut CrashClock,
) -> Result<(), StoreError> {
    let names = list_dir(dir)?;
    let leases = lease::scan(dir, &names, lease_ttl);
    for name in &names {
        if parse_manifest_name(name).is_some_and(|g| g < cutoff && !leases.pinned.contains(&g)) {
            remove_quiet(dir, name)?;
        }
    }
    clock.tick("gc-manifests")?;
    // Reaping stale pins is idempotent housekeeping: no crash point.
    for name in &leases.stale {
        remove_quiet(dir, name)?;
    }
    let mut referenced: HashSet<String> = HashSet::new();
    for name in list_dir(dir)? {
        if parse_manifest_name(&name).is_some() {
            if let Ok(bytes) = std::fs::read(dir.join(&name)) {
                if let Ok(m) = Manifest::from_file_bytes(&bytes) {
                    referenced.extend(m.shards.iter().map(|s| s.file.clone()));
                }
            }
        }
    }
    for name in list_dir(dir)? {
        if parse_shard_name(&name).is_some_and(|(g, _)| g < cutoff) && !referenced.contains(&name) {
            remove_quiet(dir, &name)?;
        }
    }
    Ok(())
}

/// Read-only probe for the newest self-verifying manifest, counting
/// every manifest byte read along the way (for
/// [`super::StoreReader::bytes_read`] accounting).
///
/// A manifest listed a moment ago can be GC'd before we read it — that
/// is only legal when a newer generation just committed, so on a
/// vanished read the listing is retried (bounded; each retry means
/// another writer made progress, and the newest manifest is never
/// deleted).
pub(crate) fn newest_manifest(dir: &Path) -> Result<Option<(Manifest, u64)>, StoreError> {
    let mut bytes_total = 0u64;
    for _pass in 0..16 {
        let mut gens = list_generations(dir)?;
        gens.reverse();
        let mut vanished = false;
        for gen in gens {
            let bytes = match std::fs::read(dir.join(manifest_name(gen))) {
                Ok(b) => b,
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    vanished = true;
                    continue;
                }
                Err(e) => return Err(StoreError::Io(e)),
            };
            bytes_total += bytes.len() as u64;
            if let Ok(m) = Manifest::from_file_bytes(&bytes) {
                if m.generation == gen {
                    return Ok(Some((m, bytes_total)));
                }
            }
        }
        if !vanished {
            return Ok(None);
        }
    }
    Ok(None)
}

/// [`Store::save_opts`]'s critical section: write `staged` as a fresh
/// generation. Caller holds the commit lock.
pub(crate) fn save_locked(
    dir: &Path,
    staged: &[&Staged],
    opts: &StoreOptions,
) -> Result<WriteReport, StoreError> {
    let mut clock = CrashClock {
        next: 0,
        trigger: opts.crash_after,
    };
    // Point 0: crash before anything is written.
    clock.tick("begin")?;

    let gen = list_generations(dir)?.last().copied().unwrap_or(0) + 1;
    let payloads: Vec<&[u8]> = staged.iter().map(|s| s.payload.as_slice()).collect();
    let packs = pack_shards(&payloads, opts.shard_bytes);
    let (shard_infos, placements) = write_shards(dir, gen, &payloads, &packs, &mut clock)?;

    let rows: Vec<Vec<(String, Value)>> = staged.iter().map(|s| s.row.clone()).collect();
    let entries: Vec<StoreEntry> = staged
        .iter()
        .zip(&placements)
        .zip(&rows)
        .map(|((s, pl), row)| StoreEntry {
            hash: s.hash,
            shard: pl.shard,
            offset: pl.offset,
            len: pl.len,
            crc: pl.crc,
            meta: row.clone(),
        })
        .collect();
    let columns = if opts.format.columnar() {
        build_columns(&rows)
    } else {
        Vec::new()
    };
    let manifest = Manifest {
        generation: gen,
        version: opts.format,
        shards: shard_infos,
        profiles: entries,
        columns,
    };
    commit_manifest(dir, &manifest, &mut clock)?;
    gc_generations(
        dir,
        gen.saturating_sub(opts.keep_generations as u64),
        opts.lease_ttl,
        &mut clock,
    )?;

    Ok(WriteReport {
        generation: gen,
        shards: packs.len(),
        profiles: staged.len(),
        appended: staged.len(),
        replaced: 0,
        crash_points: clock.next,
    })
}

/// [`Store::append_opts`]'s critical section. Caller holds the commit
/// lock; the base manifest is (re-)read *here*, under the lock — that
/// re-read is the optimistic rebase: a generation committed after the
/// caller staged its batch simply becomes the new base, and lost
/// updates are impossible by construction. With
/// [`StoreOptions::expected_generation`] set, a moved base is instead
/// surfaced as [`StoreError::Conflict`].
pub(crate) fn append_locked(
    dir: &Path,
    staged: &[Staged],
    opts: &StoreOptions,
) -> Result<WriteReport, StoreError> {
    let base = newest_manifest(dir)?;
    if let Some(expected) = opts.expected_generation {
        let found = base.as_ref().map(|(m, _)| m.generation).unwrap_or(0);
        if found != expected {
            return Err(StoreError::Conflict { expected, found });
        }
    }
    let Some((base, _)) = base else {
        // Empty directory: an append is exactly a save.
        let all: Vec<&Staged> = staged.iter().collect();
        return save_locked(dir, &all, opts);
    };
    let base_rows = base.meta_rows().map_err(StoreError::Corrupt)?;
    let mut clock = CrashClock {
        next: 0,
        trigger: opts.crash_after,
    };
    clock.tick("begin")?;

    let gen = list_generations(dir)?
        .last()
        .copied()
        .unwrap_or(0)
        .max(base.generation)
        + 1;
    let base_index: HashMap<i64, usize> = base
        .profiles
        .iter()
        .enumerate()
        .map(|(i, e)| (e.hash, i))
        .collect();
    // In-batch duplicates: first occurrence wins in both modes. Against
    // the base, Skip drops known hashes; Upsert rewrites them.
    let mut batch_seen: HashSet<i64> = HashSet::new();
    let writing: Vec<&Staged> = staged
        .iter()
        .filter(|s| {
            batch_seen.insert(s.hash)
                && (opts.append_mode == AppendMode::Upsert || !base_index.contains_key(&s.hash))
        })
        .collect();
    let payloads: Vec<&[u8]> = writing.iter().map(|s| s.payload.as_slice()).collect();
    let packs = pack_shards(&payloads, opts.shard_bytes);
    let (new_infos, placements) = write_shards(dir, gen, &payloads, &packs, &mut clock)?;

    let shard_base = base.shards.len();
    let mut rows = base_rows;
    let mut entries = base.profiles.clone();
    for (i, e) in entries.iter_mut().enumerate() {
        e.meta = rows[i].clone();
    }
    let mut appended = 0usize;
    let mut replaced = 0usize;
    for (j, s) in writing.iter().enumerate() {
        let pl = &placements[j];
        let entry = StoreEntry {
            hash: s.hash,
            shard: shard_base + pl.shard,
            offset: pl.offset,
            len: pl.len,
            crc: pl.crc,
            meta: s.row.clone(),
        };
        match base_index.get(&s.hash) {
            // Upsert: the entry is replaced in place (load order keeps
            // the original slot); the superseded record's bytes stay in
            // their shard until the next compact.
            Some(&bi) => {
                rows[bi] = s.row.clone();
                entries[bi] = entry;
                replaced += 1;
            }
            None => {
                rows.push(s.row.clone());
                entries.push(entry);
                appended += 1;
            }
        }
    }
    let columns = if opts.format.columnar() {
        build_columns(&rows)
    } else {
        Vec::new()
    };
    let mut shards = base.shards.clone();
    shards.extend(new_infos);
    let manifest = Manifest {
        generation: gen,
        version: opts.format,
        shards,
        profiles: entries,
        columns,
    };
    let total = manifest.profiles.len();
    commit_manifest(dir, &manifest, &mut clock)?;
    gc_generations(
        dir,
        gen.saturating_sub(opts.keep_generations as u64),
        opts.lease_ttl,
        &mut clock,
    )?;

    Ok(WriteReport {
        generation: gen,
        shards: packs.len(),
        profiles: total,
        appended,
        replaced,
        crash_points: clock.next,
    })
}

/// [`Store::compact_opts`]'s critical section. Caller holds the commit
/// lock — including over the read phase, so the generation being
/// rewritten cannot be GC'd or superseded mid-rewrite.
pub(crate) fn compact_locked(dir: &Path, opts: &StoreOptions) -> Result<CompactReport, StoreError> {
    // Read phase: load the newest generation's records and metadata
    // before the first crash point (reads never mutate).
    let reader = Store::open(dir)?;
    let base = reader.manifest();
    let rows = base.meta_rows().map_err(StoreError::Corrupt)?;
    let mut raw: Vec<(usize, Result<PayloadSlice, Diagnostic>)> =
        Vec::with_capacity(base.profiles.len());
    for si in 0..base.shards.len() {
        let members: Vec<usize> = (0..base.profiles.len())
            .filter(|&i| base.profiles[i].shard == si)
            .collect();
        if !members.is_empty() {
            reader.read_shard_members(si, &members, &mut raw)?;
        }
    }
    let mut diagnostics = Vec::new();
    let mut kept: Vec<usize> = Vec::with_capacity(raw.len());
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(raw.len());
    let want_binary = opts.format == ManifestVersion::V3;
    for (i, r) in raw {
        match r {
            // A payload already in the target encoding is carried
            // byte-for-byte; one in the other encoding is
            // transcoded (the migration path). A record that fails
            // to transcode is dropped with a typed diagnostic, like
            // salvage.
            Ok(payload) => {
                let bytes = payload.as_slice();
                if crate::binprofile::is_binary_payload(bytes) == want_binary {
                    kept.push(i);
                    payloads.push(bytes.to_vec());
                    continue;
                }
                match crate::binprofile::decode_payload(bytes) {
                    Ok(p) => {
                        kept.push(i);
                        payloads.push(encode_payload(&p, opts.format));
                    }
                    Err(e) => diagnostics.push(Diagnostic {
                        source: format!(
                            "{}#{}",
                            base.shards[base.profiles[i].shard].file,
                            record_index_of(base, i)
                        ),
                        kind: DiagKind::from_profile_error(&e),
                    }),
                }
            }
            Err(d) => diagnostics.push(d),
        }
    }

    let mut clock = CrashClock {
        next: 0,
        trigger: opts.crash_after,
    };
    clock.tick("begin")?;
    let gen = list_generations(dir)?.last().copied().unwrap_or(0) + 1;
    let payload_slices: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let packs = pack_shards(&payload_slices, opts.shard_bytes);
    let (shard_infos, placements) = write_shards(dir, gen, &payload_slices, &packs, &mut clock)?;

    let kept_rows: Vec<Vec<(String, Value)>> = kept.iter().map(|&i| rows[i].clone()).collect();
    let entries: Vec<StoreEntry> = kept
        .iter()
        .zip(&placements)
        .zip(&kept_rows)
        .map(|((&i, pl), row)| StoreEntry {
            hash: base.profiles[i].hash,
            shard: pl.shard,
            offset: pl.offset,
            len: pl.len,
            crc: pl.crc,
            meta: row.clone(),
        })
        .collect();
    let columns = if opts.format.columnar() {
        build_columns(&kept_rows)
    } else {
        Vec::new()
    };
    let manifest = Manifest {
        generation: gen,
        version: opts.format,
        shards: shard_infos,
        profiles: entries,
        columns,
    };
    let attempted = base.profiles.len();
    let loaded = manifest.profiles.len();
    commit_manifest(dir, &manifest, &mut clock)?;
    gc_generations(
        dir,
        gen.saturating_sub(opts.keep_generations as u64),
        opts.lease_ttl,
        &mut clock,
    )?;

    Ok(CompactReport {
        generation: gen,
        shards: packs.len(),
        profiles: loaded,
        crash_points: clock.next,
        report: IngestReport {
            attempted,
            loaded,
            diagnostics,
            pushdown: None,
        },
    })
}
