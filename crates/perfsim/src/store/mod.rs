//! Crash-safe sharded ensemble store: the indexed on-disk layer beyond
//! the loose-JSON-directory loader in [`crate::ensemble`].
//!
//! Profiles are packed into fixed-size **shards**, each record framed as
//! `[u32 len][u32 crc32c(payload)][payload]`, and committed under a
//! generation-numbered **manifest** (`MANIFEST-<gen>`, written via
//! temp-file + rename). The v2 manifest carries per-shard digests, the
//! per-profile byte ranges, and a **columnar metadata index** — one
//! [`MetaBlock`] per key (presence mask + lazily-parsed values) — so
//! [`StoreReader::select`] over a typed [`MetaPred`](crate::metapred::MetaPred) decodes only the
//! keys the predicate names and [`StoreReader::load_matching`] skips
//! whole shards the predicate excludes without even opening them.
//! Readers auto-detect v1 (row-metadata) manifests; [`Store::append`]
//! commits new profiles as a new generation that reuses existing
//! shards, and [`Store::compact`] re-packs fragmented or salvaged
//! shards (doubling as the v1/v2 → v3 migrator).
//!
//! The v3 format keeps the v2 manifest body but switches record
//! payloads from JSON documents to the `TKP3` binary profile encoding
//! ([`crate::binprofile`]): name-table-interned strings plus columnar
//! metric arrays, decoded by a bounds-checked cursor instead of a parse
//! tree. Payload encoding is detected per record (binary payloads lead
//! with the `TKP3` magic, JSON with `{`), so shards written by
//! different format generations — e.g. a v3 append reusing v2 shards —
//! stay readable record by record.
//!
//! ## Commit protocol
//!
//! 1. New shard files are written under names unique to the new
//!    generation (`shard-<gen>-<idx>.tks`). They are invisible to
//!    readers until a manifest references them, so a crash mid-write
//!    leaves only an orphan.
//! 2. The manifest is written to a dot-temp file, synced, then renamed
//!    to `MANIFEST-<gen>` — the atomic commit point.
//! 3. Only after the rename are generations older than the retention
//!    window garbage-collected; the previous generation stays readable
//!    until the new one is durable.
//!
//! Every writer crash point is enumerable and injectable
//! ([`StoreOptions::crash_after`]); the crash-point matrix test aborts
//! the writer at each one and asserts [`Store::recover`] always yields
//! exactly one complete generation — never a mix.
//!
//! ## Concurrency model
//!
//! The store is MVCC by construction — generations are immutable once
//! their manifest renames into place — and three mechanisms make that
//! safe to exploit from many threads *and* many processes:
//!
//! * **Commit lock.** `save`/`append`/`compact` serialize on an
//!   advisory `LOCK` file (owner pid + token inside, O_EXCL create).
//!   Contenders wait with seeded, jittered exponential [`Backoff`](crate::backoff::Backoff) up
//!   to [`StoreOptions::lock_timeout`], then surface
//!   [`StoreError::Busy`]. Locks whose owner pid is dead — or whose
//!   body is garbage and older than [`StoreOptions::lock_ttl`] — are
//!   taken over; a parseable lock with a live owner never is.
//! * **Optimistic rebase.** `append` stages (encodes) its batch before
//!   taking the lock and re-reads the newest manifest after: a
//!   generation that landed in between simply becomes the new base, so
//!   a lost update is impossible. Compare-and-swap semantics are
//!   available via [`StoreOptions::expected_generation`]
//!   ([`StoreError::Conflict`] when the base moved).
//! * **Snapshot pinning.** [`StoreReader::pin`] turns a reader into a
//!   [`Snapshot`] that holds every shard file handle open (an unlinked
//!   file keeps serving reads) and registers a lease file
//!   (`pin-<gen>-<pid>-<token>`, heartbeat = mtime). GC skips
//!   generations with a live lease and reaps leases whose owner died
//!   or stopped heartbeating.
//!
//! `fsync` placement: shard files and the manifest temp are synced
//! before the commit rename; lock and lease files are not load-bearing
//! for durability (they only coordinate) and are written best-effort.
//!
//! ## Verification and recovery
//!
//! [`Store::fsck`] deep-verifies every generation (manifest self-CRC,
//! shard digests, per-record CRCs) and classifies what it finds into the
//! same typed [`DiagKind`](crate::ingest::DiagKind)s the lenient ingest path uses
//! ([`DiagKind::TornShard`](crate::ingest::DiagKind::TornShard), [`DiagKind::ChecksumMismatch`](crate::ingest::DiagKind::ChecksumMismatch),
//! [`DiagKind::StaleManifest`](crate::ingest::DiagKind::StaleManifest)) — plus stale coordination files
//! ([`DiagKind::StaleLock`](crate::ingest::DiagKind::StaleLock), [`DiagKind::StaleLease`](crate::ingest::DiagKind::StaleLease)).
//! [`Store::recover`] rolls the store back to the newest
//! fully-verifiable generation, or — when no generation verifies —
//! salvages every intact record into a fresh generation; stale
//! coordination files are reaped either way, live ones left untouched.

mod crc;
mod layout;
mod lease;
mod lock;
mod manifest;
mod reader;
mod verify;
mod writer;

#[cfg(test)]
mod tests;

pub use crc::crc32c;
pub use manifest::{Manifest, MetaBlock, ShardInfo, StoreEntry};
pub use reader::{Snapshot, StoreReader};

use crate::ingest::{Diagnostic, IngestReport};
use crate::profile::{Profile, ProfileError};
use std::fmt;
use std::io;
use std::path::Path;
use std::time::Duration;

/// Magic prefix of every shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"TKS1";
/// Magic prefix of every manifest file (followed by 8 hex CRC chars).
pub const MANIFEST_MAGIC: &[u8; 4] = b"TKM1";
/// Format tag of a v1 manifest body (per-profile metadata rows).
pub const MANIFEST_FORMAT: &str = "thicket-store-1";
/// Format tag of a v2 manifest body (columnar metadata index).
pub const MANIFEST_FORMAT_V2: &str = "thicket-store-2";
/// Format tag of a v3 manifest body (columnar metadata index + binary
/// `TKP3` record payloads).
pub const MANIFEST_FORMAT_V3: &str = "thicket-store-3";

/// Bytes of framing ahead of every record payload: `[u32 len][u32 crc]`.
/// Derived from the frame layout so reader accounting, writer
/// placement, and the salvage walk can never drift apart.
pub const RECORD_HEADER_BYTES: usize = size_of::<u32>() + size_of::<u32>();

/// Which on-disk manifest format a writer emits. Readers auto-detect
/// the version from the body's format tag; [`Store::compact`] migrates
/// older stores to the newest format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ManifestVersion {
    /// Row-oriented metadata: every [`StoreEntry`] carries its full
    /// `Vec<(String, Value)>`.
    V1,
    /// Columnar metadata index: one [`MetaBlock`] per key (presence
    /// mask + lazily-parsed value block), entries carry no metadata.
    V2,
    /// v2 manifest body, but record payloads use the binary `TKP3`
    /// profile encoding ([`crate::binprofile`]) instead of JSON.
    #[default]
    V3,
}

impl ManifestVersion {
    /// Does this version index metadata columnarly (v2 and later)?
    pub fn columnar(self) -> bool {
        !matches!(self, ManifestVersion::V1)
    }
}
// ---------------------------------------------------------------------
// Errors, options, reports.
// ---------------------------------------------------------------------

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structural corruption that the requested operation cannot work
    /// around (recover can usually do better — see [`Store::recover`]).
    Corrupt(String),
    /// No verifiable generation exists in the directory.
    NoGeneration(String),
    /// A profile failed to (de)serialize.
    Profile(Box<ProfileError>),
    /// The commit lock stayed held by a live owner for the whole
    /// acquisition window ([`StoreOptions::lock_timeout`]). The store
    /// is untouched; retry later.
    Busy {
        /// How long the writer waited before giving up.
        waited: Duration,
    },
    /// [`StoreOptions::expected_generation`] compare-and-swap failed:
    /// another writer committed first. The store is untouched; re-read
    /// and retry (or drop the expectation to let the append rebase).
    Conflict {
        /// The generation the caller expected to commit on top of.
        expected: u64,
        /// The newest generation actually present (0 = empty store).
        found: u64,
    },
    /// The crash-point harness aborted the writer (fault injection
    /// only; never produced by a real write).
    InjectedCrash {
        /// Which enumerated crash point fired.
        point: usize,
        /// The writer step the point models.
        label: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::NoGeneration(m) => write!(f, "no usable generation: {m}"),
            StoreError::Profile(e) => write!(f, "store profile: {e}"),
            StoreError::Busy { waited } => {
                write!(f, "store busy: commit lock held for {waited:?}")
            }
            StoreError::Conflict { expected, found } => write!(
                f,
                "commit conflict: expected generation {expected}, found {found}"
            ),
            StoreError::InjectedCrash { point, label } => {
                write!(f, "injected crash at point {point} ({label})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ProfileError> for StoreError {
    fn from(e: ProfileError) -> Self {
        StoreError::Profile(Box::new(e))
    }
}

/// How [`Store::append`] treats a profile whose hash the store already
/// holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AppendMode {
    /// Skip it: the stored copy wins, [`WriteReport::appended`] does
    /// not count it. (The historical behavior.)
    #[default]
    Skip,
    /// Replace it: the incoming profile takes over the stored entry's
    /// slot (replace-by-profile-id); [`WriteReport::replaced`] counts
    /// these. The superseded record's bytes stay in their shard until
    /// the next [`Store::compact`].
    Upsert,
}

/// Writer knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Target payload bytes per shard; a shard closes once it holds at
    /// least this many payload bytes (every shard holds ≥ 1 record).
    pub shard_bytes: usize,
    /// How many generations *before* the new one to retain after a
    /// commit (`1` keeps the previous generation as a fallback; `0`
    /// garbage-collects everything but the new generation).
    pub keep_generations: usize,
    /// Fault injection: abort the writer when the crash point with this
    /// index is reached, leaving the directory exactly as a crash at
    /// that step would. `None` for normal operation. The total number
    /// of points a write passes is reported in
    /// [`WriteReport::crash_points`].
    pub crash_after: Option<usize>,
    /// Manifest format to write (v3 by default; v1 and v2 are kept
    /// writable so migration can be exercised end to end).
    pub format: ManifestVersion,
    /// Duplicate-hash policy for [`Store::append`].
    pub append_mode: AppendMode,
    /// Compare-and-swap: with `Some(g)`, [`Store::append`] commits only
    /// if the newest generation under the lock is exactly `g` (0 for an
    /// empty store), surfacing [`StoreError::Conflict`] otherwise.
    /// `None` (default) lets the append rebase onto whatever is newest.
    pub expected_generation: Option<u64>,
    /// How long a writer waits for the commit lock before returning
    /// [`StoreError::Busy`].
    pub lock_timeout: Duration,
    /// Age past which an *unparseable* lock file counts as abandoned
    /// (a parseable lock with a live owner is never taken over).
    pub lock_ttl: Duration,
    /// Heartbeat window for reader leases: a lease whose mtime is older
    /// than this (or whose owner pid is dead) no longer pins its
    /// generation against GC.
    pub lease_ttl: Duration,
    /// Seed for the contention [`Backoff`](crate::backoff::Backoff) jitter (mixed with a
    /// per-acquisition token, so a shared seed still decorrelates).
    pub backoff_seed: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            shard_bytes: 256 * 1024,
            keep_generations: 1,
            crash_after: None,
            format: ManifestVersion::V3,
            append_mode: AppendMode::Skip,
            expected_generation: None,
            lock_timeout: Duration::from_secs(30),
            lock_ttl: Duration::from_secs(10),
            lease_ttl: Duration::from_secs(30),
            backoff_seed: 0,
        }
    }
}

/// What a successful [`Store::save`] or [`Store::append`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReport {
    /// The generation this write committed.
    pub generation: u64,
    /// Number of shard files written.
    pub shards: usize,
    /// Number of profiles the committed generation holds in total.
    pub profiles: usize,
    /// How many of this call's input profiles were newly added (for
    /// [`Store::save`] that is all of them; [`Store::append`] skips
    /// or replaces profiles whose hash the store already holds).
    pub appended: usize,
    /// How many stored profiles this call replaced in place
    /// ([`AppendMode::Upsert`] only; always 0 under
    /// [`AppendMode::Skip`]).
    pub replaced: usize,
    /// Number of enumerated crash points the write passed through (the
    /// valid `crash_after` range for this input is `0..crash_points`).
    pub crash_points: usize,
}

/// What a successful [`Store::compact`] did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// The generation the compaction committed.
    pub generation: u64,
    /// Number of shard files the new generation uses.
    pub shards: usize,
    /// Number of profiles carried into the new generation.
    pub profiles: usize,
    /// Number of enumerated crash points the compaction passed through.
    pub crash_points: usize,
    /// One typed diagnostic per record that could not be carried over
    /// (corrupt payloads are dropped, like [`Store::recover`] salvage).
    pub report: IngestReport,
}

/// Integrity status of one generation, from [`Store::fsck`].
#[derive(Debug, Clone)]
pub struct GenCheck {
    /// Generation number.
    pub generation: u64,
    /// Manifest file name.
    pub manifest: String,
    /// True when the manifest verifies and every referenced shard and
    /// record checks out.
    pub intact: bool,
    /// Classified findings (empty iff `intact`).
    pub findings: Vec<Diagnostic>,
}

/// What [`Store::fsck`] found.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Every generation present, newest first.
    pub generations: Vec<GenCheck>,
    /// Shard files referenced by no manifest (e.g. left by a writer
    /// that crashed before its commit point).
    pub orphan_shards: Vec<String>,
    /// Leftover temporary files.
    pub temps: Vec<String>,
    /// Stale coordination files: a `LOCK` whose owner is gone, or
    /// `pin-*` leases whose owner died / stopped heartbeating. Typed
    /// as [`DiagKind::StaleLock`](crate::ingest::DiagKind::StaleLock) / [`DiagKind::StaleLease`](crate::ingest::DiagKind::StaleLease);
    /// [`Store::recover`] reaps them.
    pub coordination: Vec<Diagnostic>,
    /// A live commit lock, if one is held right now (description of
    /// the owner). Not a finding: writers hold this during every
    /// commit.
    pub live_lock: Option<String>,
    /// Live reader lease files. Not findings: pinned snapshots hold
    /// these for as long as they live.
    pub live_leases: Vec<String>,
    /// Newest generation that is fully intact, if any.
    pub newest_intact: Option<u64>,
}

impl FsckReport {
    /// True when the newest generation is intact and nothing else is
    /// lying around (no broken generations, orphans, temps, or stale
    /// coordination files). Live locks/leases do not count against
    /// cleanliness — a healthy concurrent store has them all the time.
    pub fn is_clean(&self) -> bool {
        self.orphan_shards.is_empty()
            && self.temps.is_empty()
            && self.coordination.is_empty()
            && self.generations.iter().all(|g| g.intact)
            && self
                .generations
                .first()
                .is_some_and(|g| Some(g.generation) == self.newest_intact)
    }

    /// All findings: per-generation damage (newest generation first),
    /// then stale coordination files.
    pub fn findings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.generations
            .iter()
            .flat_map(|g| g.findings.iter())
            .chain(self.coordination.iter())
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fsck: {} generation(s), newest intact: {}",
            self.generations.len(),
            match self.newest_intact {
                Some(g) => g.to_string(),
                None => "none".into(),
            }
        )?;
        for g in &self.generations {
            writeln!(
                f,
                "  gen {} ({}): {}",
                g.generation,
                g.manifest,
                if g.intact { "intact" } else { "BROKEN" }
            )?;
            for d in &g.findings {
                writeln!(f, "    {d}")?;
            }
        }
        for o in &self.orphan_shards {
            writeln!(f, "  orphan shard: {o}")?;
        }
        for t in &self.temps {
            writeln!(f, "  temp file: {t}")?;
        }
        for d in &self.coordination {
            writeln!(f, "  {d}")?;
        }
        if let Some(owner) = &self.live_lock {
            writeln!(f, "  live lock: {owner}")?;
        }
        for l in &self.live_leases {
            writeln!(f, "  live lease: {l}")?;
        }
        Ok(())
    }
}

/// What [`Store::recover`] did.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// The generation the store serves after recovery.
    pub generation: u64,
    /// Records salvaged out of broken shards into a fresh generation
    /// (0 when an intact generation could simply be restored).
    pub salvaged: usize,
    /// Files deleted during recovery (broken manifests, unreferenced or
    /// corrupt shards, temps, stale coordination files).
    pub removed: Vec<String>,
    /// One typed diagnostic per record/manifest that could not be
    /// carried into the recovered generation.
    pub report: IngestReport,
}

// ---------------------------------------------------------------------
// The facade.
// ---------------------------------------------------------------------

/// The store facade: save / append / compact / open / fsck / recover on
/// a directory. Every mutating operation runs under the cross-process
/// commit lock (see the module docs' concurrency model).
pub struct Store;

impl Store {
    /// Write `profiles` as a new generation with default options.
    pub fn save(dir: impl AsRef<Path>, profiles: &[Profile]) -> Result<WriteReport, StoreError> {
        Store::save_opts(dir, profiles, &StoreOptions::default())
    }

    /// Write `profiles` as a new generation.
    ///
    /// The write follows the commit protocol documented at the module
    /// level; with [`StoreOptions::crash_after`] set it aborts at the
    /// chosen crash point, leaving the directory exactly as a crash at
    /// that step would have.
    pub fn save_opts(
        dir: impl AsRef<Path>,
        profiles: &[Profile],
        opts: &StoreOptions,
    ) -> Result<WriteReport, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        // Stage (encode) outside the lock; only I/O runs inside it.
        let staged = writer::stage(profiles, opts.format);
        let refs: Vec<&writer::Staged> = staged.iter().collect();
        let lock = lock::CommitLock::acquire(dir, opts)?;
        lock.seal(writer::save_locked(dir, &refs, opts))
    }

    /// [`Store::append`] with default options.
    pub fn append(dir: impl AsRef<Path>, profiles: &[Profile]) -> Result<WriteReport, StoreError> {
        Store::append_opts(dir, profiles, &StoreOptions::default())
    }

    /// Commit `profiles` **on top of** the newest verified generation
    /// as a new generation that reuses the existing shard files —
    /// nothing already stored is rewritten. Profiles whose hash the
    /// store already holds (and in-batch duplicates) are skipped — or,
    /// under [`AppendMode::Upsert`], replace the stored copy in place;
    /// [`WriteReport::appended`] / [`WriteReport::replaced`] count what
    /// actually happened.
    ///
    /// The batch is staged (encoded) before the commit lock is taken
    /// and the base manifest re-read after — the optimistic rebase: a
    /// generation committed by someone else in between simply becomes
    /// the new base. Set [`StoreOptions::expected_generation`] for
    /// compare-and-swap semantics instead.
    ///
    /// The write follows the same stage-then-rename protocol as
    /// [`Store::save`]: new shards land under the new generation's
    /// names, the new manifest (old shards + old entries + the new
    /// ones) is renamed into place, and only then are out-of-retention
    /// generations GC'd — by reference, so shard files the new manifest
    /// still points at survive their original manifest's collection.
    /// On an empty directory this is exactly [`Store::save_opts`].
    pub fn append_opts(
        dir: impl AsRef<Path>,
        profiles: &[Profile],
        opts: &StoreOptions,
    ) -> Result<WriteReport, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let staged = writer::stage(profiles, opts.format);
        let lock = lock::CommitLock::acquire(dir, opts)?;
        lock.seal(writer::append_locked(dir, &staged, opts))
    }

    /// [`Store::compact`] with default options.
    pub fn compact(dir: impl AsRef<Path>) -> Result<CompactReport, StoreError> {
        Store::compact_opts(dir, &StoreOptions::default())
    }

    /// Rewrite the newest verified generation into freshly-packed full
    /// shards ([`StoreOptions::shard_bytes`]) — the answer to
    /// fragmentation from repeated appends or salvages. Record payloads
    /// already in the target format's encoding are carried over
    /// byte-for-byte (CRC-verified, never reparsed); payloads in the
    /// *other* encoding (JSON under a v3 target, binary under v1/v2)
    /// are transcoded, which is what makes `compact` the format
    /// migrator. Corrupt records are dropped with typed diagnostics
    /// like [`Store::recover`] salvage. The rewrite runs under the same
    /// stage-then-rename protocol with the same enumerable crash
    /// points, so an interruption leaves the previous generation
    /// serving. The commit lock is held across the *whole* operation —
    /// read phase included — so the generation being rewritten cannot
    /// be superseded or collected mid-rewrite.
    ///
    /// Because the output manifest defaults to
    /// [`ManifestVersion::V3`], `compact` doubles as the v1/v2 → v3
    /// migrator (and, with an explicit v2 target, the downgrade path).
    /// With `keep_generations = 1` the pre-compaction generation (and
    /// its shards) survives until the next commit; set it to 0 to
    /// reclaim the space immediately.
    pub fn compact_opts(
        dir: impl AsRef<Path>,
        opts: &StoreOptions,
    ) -> Result<CompactReport, StoreError> {
        let dir = dir.as_ref();
        let lock = lock::CommitLock::acquire(dir, opts)?;
        lock.seal(writer::compact_locked(dir, opts))
    }

    /// Open the newest generation whose manifest self-verifies.
    ///
    /// Verification here is manifest-level only (cheap); record CRCs
    /// are checked as records are read, and [`Store::fsck`] deep-checks
    /// everything. The returned reader holds no handles and no lease:
    /// under concurrent GC, prefer [`Store::open_pinned`] (or
    /// [`StoreReader::pin`]).
    pub fn open(dir: impl AsRef<Path>) -> Result<StoreReader, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        if layout::list_generations(&dir)?.is_empty() {
            return Err(StoreError::NoGeneration(format!(
                "no manifest in {}",
                dir.display()
            )));
        }
        match writer::newest_manifest(&dir)? {
            // bytes_read starts at the manifest bytes consumed while
            // probing: pushdown accounting reflects true I/O, not just
            // shard payloads.
            Some((m, manifest_bytes)) => Ok(StoreReader::new(dir, m, manifest_bytes)),
            None => Err(StoreError::NoGeneration(format!(
                "no manifest in {} verifies (run Store::recover)",
                dir.display()
            ))),
        }
    }

    /// Open the newest generation as a pinned [`Snapshot`] with default
    /// options: see [`Store::open_pinned_opts`].
    pub fn open_pinned(dir: impl AsRef<Path>) -> Result<Snapshot, StoreError> {
        Store::open_pinned_opts(dir, &StoreOptions::default())
    }

    /// Open the newest generation as a pinned [`Snapshot`]: shard
    /// handles held open and a GC lease registered, so concurrent
    /// appends, compactions, and GC (this process or another) can never
    /// tear the snapshot's reads. The open-then-pin race against a
    /// concurrent collection is retried internally with [`Backoff`](crate::backoff::Backoff);
    /// each retry re-opens whatever generation is newest.
    pub fn open_pinned_opts(
        dir: impl AsRef<Path>,
        opts: &StoreOptions,
    ) -> Result<Snapshot, StoreError> {
        reader::open_pinned(dir.as_ref(), opts)
    }

    /// Deep-verify every generation and classify all corruption —
    /// including stale coordination files (orphaned `LOCK` / `pin-*`
    /// leases) — with default options.
    pub fn fsck(dir: impl AsRef<Path>) -> Result<FsckReport, StoreError> {
        Store::fsck_opts(dir, &StoreOptions::default())
    }

    /// [`Store::fsck`] with explicit options
    /// ([`StoreOptions::lock_ttl`] / [`StoreOptions::lease_ttl`] govern
    /// when coordination files count as stale).
    pub fn fsck_opts(
        dir: impl AsRef<Path>,
        opts: &StoreOptions,
    ) -> Result<FsckReport, StoreError> {
        verify::fsck(dir.as_ref(), opts)
    }

    /// Repair the directory to a consistent state:
    ///
    /// * If some generation is fully intact, the newest such generation
    ///   becomes the store's sole content set — broken manifests, their
    ///   exclusive shards, orphans, and temps are deleted (older intact
    ///   generations within retention are kept untouched).
    /// * If **no** generation verifies, every CRC-intact record
    ///   reachable from any manifest or shard file is salvaged into a
    ///   fresh generation (deduplicated by profile hash, first
    ///   occurrence in shard order wins), and every record that could
    ///   not be salvaged is reported as a typed diagnostic.
    ///
    /// Stale coordination files (a dead writer's `LOCK`, expired
    /// `pin-*` leases) are reaped either way; live ones are left
    /// untouched. The resulting directory passes [`Store::fsck`]
    /// cleanly and [`Store::open`] serves exactly one complete
    /// generation.
    pub fn recover(dir: impl AsRef<Path>) -> Result<RecoverReport, StoreError> {
        Store::recover_opts(dir, &StoreOptions::default())
    }

    /// [`Store::recover`] with explicit options (coordination-file
    /// ttls, lock acquisition windows for the salvage rewrite).
    pub fn recover_opts(
        dir: impl AsRef<Path>,
        opts: &StoreOptions,
    ) -> Result<RecoverReport, StoreError> {
        verify::recover(dir.as_ref(), opts)
    }
}
