// ---------------------------------------------------------------------
// Reader with metadata pushdown, plus generation-pinned snapshots.
// ---------------------------------------------------------------------

use super::crc::crc32c;
use super::layout::manifest_name;
use super::lease::{self, LeaseCore};
use super::manifest::{Manifest, StoreEntry};
use super::{ManifestVersion, Store, StoreError, StoreOptions, RECORD_HEADER_BYTES};
use crate::backoff::Backoff;
use crate::ingest::{DiagKind, Diagnostic, IngestReport};
use crate::metapred::MetaPred;
use crate::parallel::{parallel_map_catch, JobFailure};
use crate::profile::Profile;
use std::cell::{Cell, OnceCell};
use std::collections::BTreeSet;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use thicket_dataframe::{BoundSource, PredExpr};

/// A read handle on one verified generation.
///
/// All loads are lenient in the ingest sense: corrupt records surface
/// as typed diagnostics in an [`IngestReport`], byte-identical for any
/// worker-thread count, and the healthy subset is returned.
pub struct StoreReader {
    dir: PathBuf,
    manifest: Manifest,
    /// Bytes read so far (manifest probing + shard headers, payloads,
    /// and magics), for pushdown accounting.
    bytes_read: Cell<u64>,
    /// v2 entries with metadata materialized out of the columnar index
    /// (built on first [`StoreReader::entries`] call).
    materialized: OnceCell<Vec<StoreEntry>>,
    /// Open handles on every shard file, in shard order — present once
    /// the reader is pinned. An unlinked-but-open file keeps serving
    /// reads, so GC by any process cannot tear a pinned load.
    handles: Option<Vec<File>>,
}

impl StoreReader {
    pub(crate) fn new(dir: PathBuf, manifest: Manifest, manifest_bytes: u64) -> StoreReader {
        StoreReader {
            dir,
            manifest,
            bytes_read: Cell::new(manifest_bytes),
            materialized: OnceCell::new(),
            handles: None,
        }
    }

    /// Pin this reader's generation with default [`StoreOptions`]: see
    /// [`StoreReader::pin_opts`].
    pub fn pin(self) -> Result<Snapshot, StoreError> {
        self.pin_opts(&StoreOptions::default())
    }

    /// Turn this reader into a generation-pinned [`Snapshot`].
    ///
    /// Pinning does two things, in this order:
    ///
    /// 1. registers a **lease** (`pin-<gen>-<pid>-<token>` file) that
    ///    tells every GC — this process or another — to keep the
    ///    generation's files;
    /// 2. opens a **handle** on every shard file, so even a GC that
    ///    never saw the lease (it scanned just before the file
    ///    appeared) cannot tear reads: an unlinked-but-open file keeps
    ///    serving.
    ///
    /// If the generation was collected in the window between
    /// [`Store::open`] and the handle opens, the pin fails with a
    /// retryable [`StoreError::NoGeneration`] — [`Store::open_pinned`]
    /// wraps the open-pin-retry loop. On read-only media (where no
    /// lease file can be written, but no GC can run either) the
    /// snapshot degrades to handle-only pinning.
    pub fn pin_opts(mut self, opts: &StoreOptions) -> Result<Snapshot, StoreError> {
        let gen = self.manifest.generation;
        let lease = lease::acquire(&self.dir, gen, opts.lease_ttl)?;
        let mut handles = Vec::with_capacity(self.manifest.shards.len());
        for info in &self.manifest.shards {
            match File::open(self.dir.join(&info.file)) {
                Ok(f) => handles.push(f),
                Err(e) => {
                    return Err(StoreError::NoGeneration(format!(
                        "generation {gen} was collected while pinning ({}: {e}); \
                         reopen and retry",
                        info.file
                    )));
                }
            }
        }
        // The manifest itself must still exist *after* the lease and
        // handles are in place — if it does, either GC saw our lease
        // (generation protected) or GC already passed (handles protect
        // us); if it does not, we raced a collection and must retry.
        if !self.dir.join(manifest_name(gen)).exists() {
            return Err(StoreError::NoGeneration(format!(
                "generation {gen} was collected while pinning; reopen and retry"
            )));
        }
        self.handles = Some(handles);
        Ok(Snapshot {
            reader: self,
            lease,
        })
    }
    /// The generation this reader serves.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The manifest's per-profile index, in storage order, with
    /// metadata populated. For a v2 manifest this decodes **every**
    /// column on first call (cached) — typed selection via
    /// [`StoreReader::select`] decodes only the predicate's keys, so
    /// prefer [`MetaPred`] on hot paths.
    pub fn entries(&self) -> &[StoreEntry] {
        if self.manifest.version == ManifestVersion::V1 {
            return &self.manifest.profiles;
        }
        self.materialized.get_or_init(|| {
            let rows = self.manifest.meta_rows_lossy();
            self.manifest
                .profiles
                .iter()
                .zip(rows)
                .map(|(e, meta)| StoreEntry {
                    meta,
                    ..e.clone()
                })
                .collect()
        })
    }

    /// The manifest (shard descriptors included).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Every metadata key this store can answer predicates about
    /// without shard I/O: the columnar index keys (v2/v3), or the
    /// union of per-entry keys (v1). The loader's planner uses this to
    /// decide which conjuncts push below the read.
    pub fn meta_keys(&self) -> BTreeSet<String> {
        if self.manifest.version.columnar() {
            self.manifest
                .columns
                .iter()
                .map(|b| b.key().to_string())
                .collect()
        } else {
            self.manifest
                .profiles
                .iter()
                .flat_map(|e| e.meta.iter().map(|(k, _)| k.clone()))
                .collect()
        }
    }

    /// Total bytes this reader has read so far — manifest bytes from
    /// [`Store::open`] plus shard I/O. Sparse selections are charged
    /// per record frame (`RECORD_HEADER_BYTES` + payload); dense
    /// selections bulk-read whole shard files and are charged the file
    /// size. Metadata-pushdown reads do strictly less I/O than a full
    /// load whenever the predicate excludes enough.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Entry indices (storage order) matching a typed predicate,
    /// without any shard I/O. On a v2 manifest only the columns for
    /// [`MetaPred::keys`] are decoded — non-referenced metadata is
    /// never parsed. A named column that fails to decode is
    /// [`StoreError::Corrupt`] (fsck classifies the damage).
    pub fn select(&self, pred: &MetaPred) -> Result<Vec<usize>, StoreError> {
        self.select_expr(&pred.to_expr())
    }

    /// [`StoreReader::select`] for an already-compiled [`PredExpr`] —
    /// the unified engine's entry point. On a columnar manifest each
    /// named key binds its `MetaBlock` (values + presence mask) straight
    /// into the vectorized evaluator; unreferenced columns stay
    /// undecoded. A v1 manifest falls back to a per-entry scalar walk.
    pub fn select_expr(&self, expr: &PredExpr) -> Result<Vec<usize>, StoreError> {
        let n = self.manifest.profiles.len();
        if !self.manifest.version.columnar() {
            return Ok((0..n)
                .filter(|&i| {
                    let e = &self.manifest.profiles[i];
                    expr.eval_lookup(&mut |k| e.meta(k).cloned())
                })
                .collect());
        }
        let mut src = BoundSource::new(n);
        for key in expr.fields() {
            if let Some(b) = self.manifest.column(key) {
                let vals = b.values().map_err(StoreError::Corrupt)?;
                src.bind_slice(key, vals, Some(b.present()));
            }
            // A key no profile carries simply never matches:
            // same semantics as a row whose meta lacks it.
        }
        Ok(expr.eval(&src).positions())
    }

    /// Load every profile.
    pub fn load_all(&self) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        self.load_matching(&MetaPred::True)
    }

    /// Load the profiles matching a typed predicate: columnar
    /// selection ([`StoreReader::select`]) followed by range reads
    /// that skip shards the predicate excludes entirely.
    pub fn load_matching(
        &self,
        pred: &MetaPred,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        self.load_matching_threads(pred, crate::parallel::default_threads(self.manifest.profiles.len()))
    }

    /// [`StoreReader::load_matching`] with an explicit worker count
    /// for the payload-parse fan-out. Results and diagnostics are
    /// byte-identical for any `threads ≥ 1`.
    pub fn load_matching_threads(
        &self,
        pred: &MetaPred,
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        let selected = self.select(pred)?;
        self.load_selected(&selected, threads)
    }

    /// Load the profiles matching a compiled [`PredExpr`]: vectorized
    /// columnar selection ([`StoreReader::select_expr`]) followed by
    /// range reads that skip shards the predicate excludes entirely.
    pub fn load_matching_expr(
        &self,
        expr: &PredExpr,
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        let selected = self.select_expr(expr)?;
        self.load_selected(&selected, threads)
    }

    /// Closure selection over materialized entries: the engine behind
    /// the loader builder's entry-closure escape hatch. Unlike
    /// [`StoreReader::load_matching`]
    /// this materializes every entry's metadata before evaluating
    /// `pred`; prefer a typed [`MetaPred`] wherever one can express the
    /// selection.
    pub fn load_entries_where(
        &self,
        mut pred: impl FnMut(&StoreEntry) -> bool,
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        let selected: Vec<usize> = self
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| pred(e))
            .map(|(i, _)| i)
            .collect();
        self.load_selected(&selected, threads)
    }

    /// Load the profiles at `selected` entry indices (storage order,
    /// as returned by [`StoreReader::select`] /
    /// [`StoreReader::select_expr`]), skipping shards with no selected
    /// member. This is the chunked-ingest primitive: select once, then
    /// load the matching indices a bounded batch at a time.
    pub fn load_indices(
        &self,
        selected: &[usize],
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        self.load_selected(selected, threads)
    }

    /// Read, verify, and parse the records at `selected` entry indices
    /// (storage order), skipping shards with no selected member.
    fn load_selected(
        &self,
        selected: &[usize],
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        // Read the selected ranges, shard by shard, in storage order.
        let mut raw: Vec<(usize, Result<PayloadSlice, Diagnostic>)> =
            Vec::with_capacity(selected.len());
        for si in 0..self.manifest.shards.len() {
            let members: Vec<usize> = selected
                .iter()
                .copied()
                .filter(|&i| self.manifest.profiles[i].shard == si)
                .collect();
            if members.is_empty() {
                continue; // whole shard skipped: not even opened.
            }
            self.read_shard_members(si, &members, &mut raw)?;
        }

        // Partition into decode jobs (payloads move, never copy — a
        // bulk-read shard is shared by all its records through the Arc)
        // and an ordered skeleton that remembers where failures sit.
        let mut order: Vec<(usize, Option<Diagnostic>)> = Vec::with_capacity(raw.len());
        let mut jobs: Vec<(usize, PayloadSlice)> = Vec::with_capacity(raw.len());
        for (i, r) in raw {
            match r {
                Ok(p) => {
                    jobs.push((i, p));
                    order.push((i, None));
                }
                Err(d) => order.push((i, Some(d))),
            }
        }
        // Per-record encoding dispatch: binary `TKP3` payloads decode
        // through the bounds-checked cursor, anything else through the
        // JSON parser — shards may mix encodings across generations.
        let parsed = parallel_map_catch(&jobs, threads, |(_, payload)| {
            crate::binprofile::decode_payload(payload.as_slice())
        });

        let mut profiles = Vec::with_capacity(jobs.len());
        let mut diagnostics = Vec::new();
        let mut parsed_iter = parsed.into_iter();
        for (i, d) in order {
            match d {
                Some(d) => diagnostics.push(d),
                None => match parsed_iter.next().expect("job per ok record") {
                    Ok(p) => profiles.push(p),
                    Err(JobFailure::Error(e)) => diagnostics.push(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::from_profile_error(&e),
                    }),
                    Err(JobFailure::Panic(m)) => diagnostics.push(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::WorkerPanic(m),
                    }),
                },
            }
        }
        let report = IngestReport {
            attempted: selected.len(),
            loaded: profiles.len(),
            diagnostics,
            pushdown: None,
        };
        Ok((profiles, report))
    }

    /// Read the framed records for `members` (entry indices, all in
    /// shard `si`), verifying framing and CRC as we go. Pushes one
    /// `(entry index, payload-or-diagnostic)` per member, in member
    /// order.
    ///
    /// Dense selections (members cover at least half the shard's bytes)
    /// read the whole file once and hand every record an `Arc` slice of
    /// that buffer; sparse selections seek to each record's frame so
    /// skipped records cost no I/O. `bytes_read` reflects whichever
    /// actually happened.
    pub(crate) fn read_shard_members(
        &self,
        si: usize,
        members: &[usize],
        out: &mut Vec<(usize, Result<PayloadSlice, Diagnostic>)>,
    ) -> Result<(), StoreError> {
        let info = &self.manifest.shards[si];
        let path = self.dir.join(&info.file);
        let member_frame_bytes: u64 = members
            .iter()
            .map(|&i| RECORD_HEADER_BYTES as u64 + self.manifest.profiles[i].len as u64)
            .sum();
        if member_frame_bytes.saturating_mul(2) >= info.bytes {
            return self.read_shard_bulk(si, members, out);
        }
        // A pinned reader seeks on its held handle (`impl Seek/Read for
        // &File`), so reads survive the file being unlinked underneath.
        let owned;
        let mut file: &File = match self.handles.as_ref().map(|hs| &hs[si]) {
            Some(f) => f,
            None => match File::open(&path) {
                Ok(f) => {
                    owned = f;
                    &owned
                }
                Err(e) => {
                    // The whole shard is unreadable: every member gets
                    // the same classified diagnostic.
                    for &i in members {
                        out.push((
                            i,
                            Err(Diagnostic {
                                source: info.file.clone(),
                                kind: DiagKind::Io(format!("{}: {e}", info.file)),
                            }),
                        ));
                    }
                    return Ok(());
                }
            },
        };
        let file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
        for &i in members {
            let entry = &self.manifest.profiles[i];
            // Framing extends past EOF → the shard is torn. Manifest
            // parsing already bounds every entry against its shard's
            // *declared* size; this re-checks against the file's
            // *actual* size (overflow-proof) before the length is used
            // to allocate, so a truncated file or a stale manifest can
            // never trigger an oversized read.
            let payload_end = entry.offset.checked_add(entry.len as u64);
            if payload_end.is_none()
                || payload_end.unwrap() > file_len
                || entry.offset < RECORD_HEADER_BYTES as u64
            {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::TornShard {
                            shard: info.file.clone(),
                        },
                    }),
                ));
                continue;
            }
            let mut header = [0u8; RECORD_HEADER_BYTES];
            let mut payload = vec![0u8; entry.len as usize];
            let read = (|| -> io::Result<()> {
                file.seek(SeekFrom::Start(entry.offset - RECORD_HEADER_BYTES as u64))?;
                file.read_exact(&mut header)?;
                file.read_exact(&mut payload)?;
                Ok(())
            })();
            self.bytes_read
                .set(self.bytes_read.get() + (RECORD_HEADER_BYTES + entry.len as usize) as u64);
            if let Err(e) = read {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::Io(format!("{}: {e}", info.file)),
                    }),
                ));
                continue;
            }
            let framed_len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let framed_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
            let ok = framed_len == entry.len
                && framed_crc == entry.crc
                && crc32c(&payload) == entry.crc;
            if ok {
                out.push((i, Ok(PayloadSlice::owned(payload))));
            } else {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::ChecksumMismatch {
                            shard: info.file.clone(),
                            record: record_index_of(&self.manifest, i),
                        },
                    }),
                ));
            }
        }
        Ok(())
    }

    /// Dense-selection counterpart of [`Self::read_shard_members`]: one
    /// `fs::read` for the whole shard, then every member validates its
    /// frame against a shared `Arc` of that buffer. No seeks, no
    /// per-record allocation.
    fn read_shard_bulk(
        &self,
        si: usize,
        members: &[usize],
        out: &mut Vec<(usize, Result<PayloadSlice, Diagnostic>)>,
    ) -> Result<(), StoreError> {
        let info = &self.manifest.shards[si];
        let whole = match self.handles.as_ref().map(|hs| &hs[si]) {
            // Pinned: rewind the held handle and drain it — works even
            // after the file is unlinked.
            Some(mut f) => f
                .seek(SeekFrom::Start(0))
                .and_then(|_| {
                    let mut buf = Vec::with_capacity(info.bytes as usize);
                    f.read_to_end(&mut buf).map(|_| buf)
                }),
            None => std::fs::read(self.dir.join(&info.file)),
        };
        let bytes = match whole {
            Ok(b) => Arc::new(b),
            Err(e) => {
                for &i in members {
                    out.push((
                        i,
                        Err(Diagnostic {
                            source: info.file.clone(),
                            kind: DiagKind::Io(format!("{}: {e}", info.file)),
                        }),
                    ));
                }
                return Ok(());
            }
        };
        self.bytes_read
            .set(self.bytes_read.get() + bytes.len() as u64);
        let file_len = bytes.len() as u64;
        for &i in members {
            let entry = &self.manifest.profiles[i];
            // Same torn-shard guard as the seek path: every declared
            // range is proven inside the actual file before slicing.
            let payload_end = entry.offset.checked_add(entry.len as u64);
            if payload_end.is_none()
                || payload_end.unwrap() > file_len
                || entry.offset < RECORD_HEADER_BYTES as u64
            {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::TornShard {
                            shard: info.file.clone(),
                        },
                    }),
                ));
                continue;
            }
            let start = entry.offset as usize;
            let header = &bytes[start - RECORD_HEADER_BYTES..start];
            let payload = &bytes[start..start + entry.len as usize];
            let framed_len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let framed_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
            let ok = framed_len == entry.len
                && framed_crc == entry.crc
                && crc32c(payload) == entry.crc;
            if ok {
                out.push((
                    i,
                    Ok(PayloadSlice::shared(
                        Arc::clone(&bytes),
                        start..start + entry.len as usize,
                    )),
                ));
            } else {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::ChecksumMismatch {
                            shard: info.file.clone(),
                            record: record_index_of(&self.manifest, i),
                        },
                    }),
                ));
            }
        }
        Ok(())
    }
}

/// A record payload: either its own buffer (sparse seek reads) or a
/// range of a whole-shard read shared by every record in the shard
/// (dense bulk reads). Decoders borrow the slice either way — nothing
/// is copied between disk and the parser.
pub(crate) struct PayloadSlice {
    bytes: Arc<Vec<u8>>,
    range: std::ops::Range<usize>,
}

impl PayloadSlice {
    fn owned(bytes: Vec<u8>) -> Self {
        let range = 0..bytes.len();
        PayloadSlice {
            bytes: Arc::new(bytes),
            range,
        }
    }

    fn shared(bytes: Arc<Vec<u8>>, range: std::ops::Range<usize>) -> Self {
        PayloadSlice { bytes, range }
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.bytes[self.range.clone()]
    }
}

/// `shard-file#record-index` label for a record-scoped diagnostic.
/// Walks the manifest, so only call it on the error path.
fn record_source(m: &Manifest, i: usize) -> String {
    format!(
        "{}#{}",
        m.shards[m.profiles[i].shard].file,
        record_index_of(m, i)
    )
}

/// Zero-based record index of entry `i` within its shard (entries are
/// stored in offset order per shard).
pub(crate) fn record_index_of(m: &Manifest, i: usize) -> usize {
    let e = &m.profiles[i];
    m.profiles
        .iter()
        .filter(|o| o.shard == e.shard && o.offset < e.offset)
        .count()
}

// ---------------------------------------------------------------------
// Pinned snapshots.
// ---------------------------------------------------------------------

/// A generation-pinned [`StoreReader`]: shard handles held open (reads
/// survive unlink) and a GC lease registered (GC skips the generation
/// while the snapshot lives). Created by [`StoreReader::pin`] /
/// [`Store::open_pinned`]; derefs to [`StoreReader`], so every load
/// and select method is available unchanged.
///
/// In-process snapshots of the same (directory, generation) share one
/// lease file via a refcount; dropping the last snapshot removes it.
/// Using the snapshot heartbeats the lease (re-touches its mtime) so
/// long-lived pins are not mistaken for leaks by other processes' GC.
pub struct Snapshot {
    reader: StoreReader,
    /// `None` on read-only media: no lease file could be written, but
    /// no GC can run there either, so handles alone suffice.
    lease: Option<Arc<LeaseCore>>,
}

impl Snapshot {
    /// Whether a lease file backs this snapshot (false only on
    /// read-only media, where the pin degrades to handle-only).
    pub fn leased(&self) -> bool {
        self.lease.is_some()
    }

    /// The lease file's name in the store directory, if one exists.
    pub fn lease_file(&self) -> Option<String> {
        self.lease.as_ref().map(|l| l.file_name().to_string())
    }

    /// Unpin: keep the reader (and its open shard handles — already-
    /// possible reads stay possible) but drop the lease, letting GC
    /// collect the generation's directory entries.
    pub fn into_reader(self) -> StoreReader {
        self.reader
    }
}

impl Deref for Snapshot {
    type Target = StoreReader;

    fn deref(&self) -> &StoreReader {
        if let Some(lease) = &self.lease {
            lease.maybe_heartbeat();
        }
        &self.reader
    }
}

/// Open + pin with a bounded retry loop: the window between reading
/// the newest manifest and opening its shard handles can race a
/// concurrent GC (surfacing as a retryable
/// [`StoreError::NoGeneration`]); every retry re-opens whatever
/// generation is newest *now*. Non-retryable errors return
/// immediately.
pub(crate) fn open_pinned(dir: &Path, opts: &StoreOptions) -> Result<Snapshot, StoreError> {
    let mut backoff = Backoff::new(
        std::time::Duration::from_micros(100),
        std::time::Duration::from_millis(20),
        opts.backoff_seed,
    );
    let mut last = None;
    for attempt in 0..32 {
        if attempt > 0 {
            std::thread::sleep(backoff.next_delay());
        }
        match Store::open(dir).and_then(|r| r.pin_opts(opts)) {
            Ok(snap) => return Ok(snap),
            Err(e @ StoreError::NoGeneration(_)) => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("32 attempts recorded an error"))
}
