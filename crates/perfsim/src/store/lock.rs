// ---------------------------------------------------------------------
// Advisory commit lock: serializes save/append/compact across
// processes.
// ---------------------------------------------------------------------
//
// Protocol: a writer owns the directory's commit right while a `LOCK`
// file it created (O_EXCL) exists with its token inside. Contenders
// classify a present lock:
//
//   * body parses, owner pid alive        → live: wait with backoff
//   * body parses, owner pid dead         → stale: take over now
//   * body unparseable, fresh mtime       → live (a mid-write lock body
//                                           is indistinguishable from
//                                           garbage; give it time)
//   * body unparseable, older than ttl    → stale: take over
//
// Takeover renames the stale lock to a dot-temp (one contender wins
// the rename; the rest see NotFound and re-race the create), deletes
// the tomb, and retries the O_EXCL create immediately. A parseable
// lock with a live owner is *never* taken over on age alone: a commit
// can legitimately outlive any ttl.
//
// Release deletes the file only while its token still matches — a
// release after a takeover must not steal the usurper's lock. On an
// injected crash the lock is deliberately *leaked as crashed*: body
// rewritten to pid 0 and mtime zeroed, so the next writer (or
// `Store::recover`) classifies it stale immediately — exactly how a
// real dead writer's lock looks, without the test process having to
// die.

use super::layout::{fresh_token, pid_alive, LOCK_NAME};
use super::{StoreError, StoreOptions};
use crate::backoff::Backoff;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

/// Exclusive commit right on a store directory; released on drop.
pub(crate) struct CommitLock {
    dir: PathBuf,
    token: u64,
    armed: bool,
}

pub(crate) fn lock_body(pid: u32, token: u64) -> String {
    format!("pid {pid}\ntoken {token:016x}\n")
}

/// `pid <n>\ntoken <hex>` → (pid, token). Order-insensitive, extra
/// lines ignored (forward compatibility); `None` on anything else.
pub(crate) fn parse_lock_body(text: &str) -> Option<(u32, u64)> {
    let mut pid = None;
    let mut token = None;
    for line in text.lines() {
        if let Some(v) = line.strip_prefix("pid ") {
            pid = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("token ") {
            token = u64::from_str_radix(v.trim(), 16).ok();
        }
    }
    Some((pid?, token?))
}

/// How a present lock file reads to a contender.
pub(crate) enum LockState {
    /// Held by a live owner (description of the owner).
    Live(String),
    /// Orphaned: safe to take over / reap (description of why).
    Stale(String),
    /// Vanished between listing and reading.
    Gone,
}

/// Classify the `LOCK` file in `dir` (which may vanish concurrently).
pub(crate) fn classify_lock(dir: &Path, lock_ttl: Duration) -> LockState {
    let path = dir.join(LOCK_NAME);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return LockState::Gone,
        // Unreadable-but-present reads as live: never steal what we
        // cannot classify.
        Err(e) => return LockState::Live(format!("unreadable ({e})")),
    };
    match std::str::from_utf8(&bytes).ok().and_then(parse_lock_body) {
        Some((pid, _)) if pid_alive(pid) => {
            LockState::Live(format!("held by live pid {pid}"))
        }
        Some((pid, _)) => LockState::Stale(format!("owner pid {pid} is dead")),
        None => {
            let age = std::fs::metadata(&path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok());
            match age {
                Some(age) if age > lock_ttl => LockState::Stale(format!(
                    "unparseable body, {}s past its {}s liveness window",
                    age.as_secs(),
                    lock_ttl.as_secs()
                )),
                // Fresh garbage could be a lock body mid-write.
                _ => LockState::Live("unparseable but fresh body".to_string()),
            }
        }
    }
}

impl CommitLock {
    /// Acquire the commit lock, waiting up to
    /// [`StoreOptions::lock_timeout`] with jittered exponential backoff
    /// and taking over stale locks. Times out with
    /// [`StoreError::Busy`].
    pub(crate) fn acquire(dir: &Path, opts: &StoreOptions) -> Result<CommitLock, StoreError> {
        let token = fresh_token();
        let path = dir.join(LOCK_NAME);
        let start = Instant::now();
        // Mix our token into the seed so co-seeded contenders still
        // decorrelate; a caller-fixed seed alone stays reproducible for
        // a single contender.
        let mut backoff = Backoff::new(
            Duration::from_micros(500),
            Duration::from_millis(50),
            opts.backoff_seed ^ token,
        );
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    // Body and sync are best-effort: the O_EXCL create
                    // is the mutual exclusion; the body only informs
                    // staleness classification by others.
                    let _ = f.write_all(lock_body(std::process::id(), token).as_bytes());
                    let _ = f.sync_all();
                    return Ok(CommitLock {
                        dir: dir.to_path_buf(),
                        token,
                        armed: true,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
                Err(e) => return Err(StoreError::Io(e)),
            }
            match classify_lock(dir, opts.lock_ttl) {
                LockState::Stale(_) => {
                    // One contender wins the rename and clears the way;
                    // everyone re-races the create immediately.
                    let tomb = dir.join(format!(".{LOCK_NAME}-takeover-{token:016x}.tmp"));
                    if std::fs::rename(&path, &tomb).is_ok() {
                        let _ = std::fs::remove_file(&tomb);
                    }
                    continue;
                }
                LockState::Gone => continue,
                LockState::Live(_) => {}
            }
            let waited = start.elapsed();
            if waited >= opts.lock_timeout {
                return Err(StoreError::Busy { waited });
            }
            std::thread::sleep(backoff.next_delay());
        }
    }

    /// Finish a locked critical section: on an injected crash the lock
    /// is leaked in dead-writer form (the crash *is* the scenario under
    /// test); every other outcome releases it. Returns `result`
    /// unchanged.
    pub(crate) fn seal<T>(mut self, result: Result<T, StoreError>) -> Result<T, StoreError> {
        if matches!(result, Err(StoreError::InjectedCrash { .. })) {
            self.leak_as_crashed();
        }
        result
    }

    /// Make the lock look exactly like one left by a writer that died:
    /// owner pid 0 (never alive) and an epoch-old heartbeat.
    fn leak_as_crashed(&mut self) {
        self.armed = false;
        let path = self.dir.join(LOCK_NAME);
        let _ = std::fs::write(&path, lock_body(0, self.token));
        if let Ok(f) = std::fs::OpenOptions::new().append(true).open(&path) {
            let _ = f.set_modified(SystemTime::UNIX_EPOCH);
        }
    }

    fn release(&mut self) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let path = self.dir.join(LOCK_NAME);
        // Delete only while the lock is still ours: after a (buggy or
        // clock-skewed) takeover the file belongs to someone else.
        let ours = std::fs::read_to_string(&path)
            .ok()
            .and_then(|t| parse_lock_body(&t))
            .is_some_and(|(_, tok)| tok == self.token);
        if ours {
            let _ = std::fs::remove_file(&path);
        }
    }
}

impl Drop for CommitLock {
    fn drop(&mut self) {
        self.release();
    }
}
