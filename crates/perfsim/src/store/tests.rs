use super::layout::{manifest_name, shard_name};
use super::manifest::{build_columns, mask_from_hex, mask_to_hex};
use super::*;
use crate::metapred::MetaPred;
use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};
use std::path::PathBuf;
use thicket_dataframe::Value;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("thicket-store-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn runs(n: u64) -> Vec<Profile> {
    (0..n)
        .map(|seed| {
            let mut cfg = CpuRunConfig::quartz_default();
            cfg.seed = seed;
            simulate_cpu_run(&cfg)
        })
        .collect()
}

fn hashes(ps: &[Profile]) -> Vec<i64> {
    let mut h: Vec<i64> = ps.iter().map(|p| p.profile_hash()).collect();
    h.sort_unstable();
    h
}

#[test]
fn crc32c_known_vectors() {
    // RFC 3720 / common test vectors for CRC-32C.
    assert_eq!(crc32c(b""), 0);
    assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
}

#[test]
fn save_open_roundtrip() {
    let dir = tmp("roundtrip");
    let profiles = runs(6);
    let report = Store::save(&dir, &profiles).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.profiles, 6);
    let reader = Store::open(&dir).unwrap();
    assert_eq!(reader.generation(), 1);
    assert_eq!(reader.entries().len(), 6);
    let (loaded, rep) = reader.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(hashes(&loaded), hashes(&profiles));
    // fsck of a fresh store is clean.
    let fsck = Store::fsck(&dir).unwrap();
    assert!(fsck.is_clean(), "{fsck}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn small_shard_target_splits_shards() {
    let dir = tmp("split");
    let profiles = runs(8);
    let opts = StoreOptions {
        shard_bytes: 1, // every record closes its shard
        ..StoreOptions::default()
    };
    let report = Store::save_opts(&dir, &profiles, &opts).unwrap();
    assert_eq!(report.shards, 8);
    let reader = Store::open(&dir).unwrap();
    let (loaded, rep) = reader.load_all().unwrap();
    assert!(rep.is_clean());
    assert_eq!(hashes(&loaded), hashes(&profiles));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn second_save_bumps_generation_and_retains_previous() {
    let dir = tmp("generations");
    let first = runs(3);
    let second = runs(5);
    Store::save(&dir, &first).unwrap();
    let r2 = Store::save(&dir, &second).unwrap();
    assert_eq!(r2.generation, 2);
    // Newest generation wins.
    let reader = Store::open(&dir).unwrap();
    assert_eq!(reader.generation(), 2);
    let (loaded, _) = reader.load_all().unwrap();
    assert_eq!(hashes(&loaded), hashes(&second));
    // Previous generation's manifest is retained (keep_generations = 1).
    assert!(dir.join(manifest_name(1)).exists());
    // A third save garbage-collects generation 1.
    Store::save(&dir, &first).unwrap();
    assert!(!dir.join(manifest_name(1)).exists());
    assert!(dir.join(manifest_name(2)).exists());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn load_matching_pushdown_reads_fewer_bytes() {
    let dir = tmp("pushdown");
    let profiles = runs(8);
    let opts = StoreOptions {
        shard_bytes: 1,
        ..StoreOptions::default()
    };
    Store::save_opts(&dir, &profiles, &opts).unwrap();

    // Both sides pay the same manifest bytes (counted since the
    // bytes_read fix), so shard skipping still shows through.
    let full = Store::open(&dir).unwrap();
    let (all, _) = full.load_all().unwrap();
    let full_bytes = full.bytes_read();

    let filtered = Store::open(&dir).unwrap();
    let (subset, rep) = filtered
        .load_matching(&MetaPred::eq("seed", 2i64))
        .unwrap();
    assert!(rep.is_clean());
    assert!(filtered.bytes_read() < full_bytes);
    assert_eq!(subset.len(), 1);
    assert!(all.len() > subset.len());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bytes_read_is_exact_frame_accounting() {
    // One record per shard, so each shard's cost is its single
    // record's frame: header + payload.
    let dir = tmp("bytes-exact");
    let opts = StoreOptions {
        shard_bytes: 1,
        ..StoreOptions::default()
    };
    Store::save_opts(&dir, &runs(4), &opts).unwrap();

    let reader = Store::open(&dir).unwrap();
    let manifest_bytes = std::fs::metadata(dir.join(manifest_name(reader.manifest().generation)))
        .unwrap()
        .len();
    assert_eq!(
        reader.bytes_read(),
        manifest_bytes,
        "opening costs exactly the manifest file"
    );

    // A full load is dense in every shard, so each shard is one
    // whole-file bulk read: the cost is exactly the sum of on-disk
    // shard sizes, which the manifest's declared sizes must match.
    let (all, rep) = reader.load_all().unwrap();
    assert!(rep.is_clean());
    assert_eq!(all.len(), 4);
    let shard_bytes_total: u64 = reader
        .manifest()
        .shards
        .iter()
        .map(|info| {
            let on_disk = std::fs::metadata(dir.join(&info.file)).unwrap().len();
            assert_eq!(on_disk, info.bytes, "{}", info.file);
            info.bytes
        })
        .sum();
    assert_eq!(reader.bytes_read(), manifest_bytes + shard_bytes_total);

    // Pushdown on one-record shards: the selected shard is dense
    // (its one record is most of the file), so the cost is that
    // shard's file size; skipped shards are never opened.
    let filtered = Store::open(&dir).unwrap();
    let (subset, rep) = filtered.load_matching(&MetaPred::eq("seed", 2i64)).unwrap();
    assert!(rep.is_clean());
    assert_eq!(subset.len(), 1);
    let entry = filtered
        .entries()
        .iter()
        .find(|e| e.meta("seed") == Some(&Value::Int(2)))
        .cloned()
        .unwrap();
    let selected_shard = filtered.manifest().shards[entry.shard].bytes;
    assert_eq!(filtered.bytes_read(), manifest_bytes + selected_shard);
    std::fs::remove_dir_all(dir).ok();

    // Pushdown inside a multi-record shard takes the sparse seek
    // path: the charge is exactly the selected record's frame
    // (header + payload), derived from the layout constant.
    let dir = tmp("bytes-exact-sparse");
    Store::save_opts(&dir, &runs(8), &StoreOptions::default()).unwrap();
    let sparse = Store::open(&dir).unwrap();
    assert_eq!(sparse.manifest().shards.len(), 1, "one shared shard");
    let manifest_bytes = std::fs::metadata(dir.join(manifest_name(sparse.manifest().generation)))
        .unwrap()
        .len();
    let (subset, rep) = sparse.load_matching(&MetaPred::eq("seed", 2i64)).unwrap();
    assert!(rep.is_clean());
    assert_eq!(subset.len(), 1);
    let entry = sparse
        .entries()
        .iter()
        .find(|e| e.meta("seed") == Some(&Value::Int(2)))
        .cloned()
        .unwrap();
    assert_eq!(
        sparse.bytes_read(),
        manifest_bytes + (RECORD_HEADER_BYTES as u64 + entry.len as u64)
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn select_decodes_only_named_columns() {
    let dir = tmp("lazy-columns");
    Store::save(&dir, &runs(6)).unwrap();
    let reader = Store::open(&dir).unwrap();
    assert_eq!(reader.manifest().version, ManifestVersion::V3);
    assert!(
        reader.manifest().columns.len() > 2,
        "quartz runs carry several metadata keys"
    );
    let idx = reader.select(&MetaPred::lt("seed", 3i64)).unwrap();
    assert_eq!(idx, vec![0, 1, 2]);
    for b in &reader.manifest().columns {
        assert_eq!(
            b.is_decoded(),
            b.key() == "seed",
            "column {} decode state after a seed-only selection",
            b.key()
        );
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn columnar_selection_matches_row_selection() {
    let dir = tmp("col-vs-row");
    let profiles = runs(7);
    Store::save(&dir, &profiles).unwrap();
    let reader = Store::open(&dir).unwrap();
    let preds = [
        MetaPred::True,
        MetaPred::eq("cluster", "quartz"),
        MetaPred::eq("seed", 3i64).not(),
        MetaPred::is_in("seed", [1i64, 5, 99]),
        MetaPred::ge("seed", 2i64).and(MetaPred::lt("seed", 6i64)),
        MetaPred::eq("no-such-key", 1i64),
        MetaPred::eq("no-such-key", 1i64).not(),
    ];
    for pred in &preds {
        let columnar = reader.select(pred).unwrap();
        let by_rows: Vec<usize> = reader
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| pred.eval_with(&mut |k| e.meta(k)))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(columnar, by_rows, "pred: {pred}");
    }
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn manifest_roundtrip_and_self_check() {
    let m = Manifest {
        generation: 7,
        version: ManifestVersion::V1,
        shards: vec![ShardInfo {
            file: shard_name(7, 0),
            bytes: 100,
            crc: 42,
            records: 1,
        }],
        profiles: vec![StoreEntry {
            hash: i64::MIN + 3,
            shard: 0,
            offset: 12,
            len: 88,
            crc: 7,
            meta: vec![
                ("cluster".into(), Value::from("quartz")),
                ("size".into(), Value::Int(1 << 60)),
            ],
        }],
        columns: Vec::new(),
    };
    let bytes = m.to_file_bytes();
    let back = Manifest::from_file_bytes(&bytes).unwrap();
    assert_eq!(back, m);
    // Any body mutation breaks the self-CRC.
    let mut bad = bytes.clone();
    let last = bad.len() - 1;
    bad[last] ^= 0x20;
    assert!(Manifest::from_file_bytes(&bad).is_err());
    // Truncation breaks it too.
    assert!(Manifest::from_file_bytes(&bytes[..bytes.len() / 2]).is_err());
}

#[test]
fn v2_manifest_roundtrips_columns_and_masks() {
    let rows = vec![
        vec![
            ("cluster".to_string(), Value::from("quartz")),
            ("size".to_string(), Value::Int(1 << 60)),
        ],
        vec![("cluster".to_string(), Value::from("lassen"))],
    ];
    let m = Manifest {
        generation: 3,
        version: ManifestVersion::V2,
        shards: vec![ShardInfo {
            file: shard_name(3, 0),
            bytes: 64,
            crc: 9,
            records: 2,
        }],
        profiles: (0..2)
            .map(|i| StoreEntry {
                hash: i as i64,
                shard: 0,
                offset: 12 + i as u64,
                len: 4,
                crc: 1,
                meta: Vec::new(),
            })
            .collect(),
        columns: build_columns(&rows),
    };
    let bytes = m.to_file_bytes();
    let back = Manifest::from_file_bytes(&bytes).unwrap();
    assert_eq!(back, m);
    assert_eq!(back.version, ManifestVersion::V2);
    // Parsed columns start undecoded; decode recovers the values
    // and the presence mask distinguishes absent from Null.
    let size = back.column("size").unwrap();
    assert!(!size.is_decoded());
    assert_eq!(size.values().unwrap(), &[Value::Int(1 << 60), Value::Null]);
    assert!(size.present_at(0) && !size.present_at(1));
    assert!(back.column("cluster").unwrap().present_at(1));
    assert!(back.column("nope").is_none());
    // meta_rows reconstructs the per-profile rows, key-sorted.
    assert_eq!(back.meta_rows().unwrap(), rows);
}

#[test]
fn mask_hex_roundtrip_and_strictness() {
    for n in [0usize, 1, 7, 8, 9, 17] {
        let present: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let hex = mask_to_hex(&present);
        assert_eq!(mask_from_hex(&hex, n).unwrap(), present);
    }
    assert!(mask_from_hex("ff", 4).is_err(), "stray high bits");
    assert!(mask_from_hex("0f", 9).is_err(), "too short");
    assert!(mask_from_hex("zz", 8).is_err(), "not hex");
}

#[test]
fn append_reuses_shards_and_skips_duplicates() {
    let dir = tmp("append");
    let first = runs(3);
    let more = runs(5); // seeds 0..5 — first three duplicate the store
    let r1 = Store::save(&dir, &first).unwrap();
    let r2 = Store::append(&dir, &more).unwrap();
    assert_eq!(r2.generation, 2);
    assert_eq!(r2.appended, 2, "3 of 5 already stored");
    assert_eq!(r2.profiles, 5);
    // Generation 1's shard files are still the ones serving the old
    // profiles: nothing was rewritten.
    assert!(dir.join(shard_name(1, 0)).exists());
    let reader = Store::open(&dir).unwrap();
    assert_eq!(reader.generation(), 2);
    let (loaded, rep) = reader.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(hashes(&loaded), hashes(&more));
    assert!(Store::fsck(&dir).unwrap().is_clean());
    // Appending only duplicates commits a no-op generation.
    let r3 = Store::append(&dir, &first).unwrap();
    assert_eq!(r3.appended, 0);
    assert_eq!(r3.profiles, 5);
    assert_eq!(r3.shards, 0);
    // A typed predicate still selects across old + new entries.
    let reader = Store::open(&dir).unwrap();
    let (subset, _) = reader.load_matching(&MetaPred::ge("seed", 3i64)).unwrap();
    assert_eq!(subset.len(), 2);
    // Once gen 1 leaves the retention window, its shards survive
    // while still referenced by the live manifest.
    assert!(!dir.join(manifest_name(1)).exists());
    assert!(dir.join(shard_name(1, 0)).exists());
    assert_eq!(r1.profiles, 3);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn append_to_empty_dir_is_save() {
    let dir = tmp("append-empty");
    let report = Store::append(&dir, &runs(2)).unwrap();
    assert_eq!(report.generation, 1);
    assert_eq!(report.appended, 2);
    let (loaded, _) = Store::open(&dir).unwrap().load_all().unwrap();
    assert_eq!(loaded.len(), 2);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn compact_repacks_fragmented_shards() {
    let dir = tmp("compact");
    let profiles = runs(8);
    let fragmented = StoreOptions {
        shard_bytes: 1, // every record its own shard
        ..StoreOptions::default()
    };
    let r = Store::save_opts(&dir, &profiles, &fragmented).unwrap();
    assert_eq!(r.shards, 8);
    let c = Store::compact(&dir).unwrap();
    assert_eq!(c.shards, 1, "default shard size swallows all 8");
    assert_eq!(c.profiles, 8);
    assert!(c.report.is_clean(), "{}", c.report);
    let reader = Store::open(&dir).unwrap();
    assert_eq!(reader.generation(), c.generation);
    let (loaded, rep) = reader.load_all().unwrap();
    assert!(rep.is_clean());
    assert_eq!(hashes(&loaded), hashes(&profiles));
    assert!(Store::fsck(&dir).unwrap().is_clean());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn compact_migrates_old_formats_to_v3() {
    for old in [ManifestVersion::V1, ManifestVersion::V2] {
        let dir = tmp(&format!("migrate-{old:?}"));
        let profiles = runs(4);
        let old_opts = StoreOptions {
            format: old,
            ..StoreOptions::default()
        };
        Store::save_opts(&dir, &profiles, &old_opts).unwrap();
        // The old format loads unchanged through the auto-detecting
        // reader.
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.manifest().version, old);
        let (loaded, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(hashes(&loaded), hashes(&profiles));
        if old.columnar() {
            let idx = reader.select(&MetaPred::eq("seed", 1i64)).unwrap();
            assert_eq!(idx.len(), 1);
        }
        // Compaction rewrites it as v3 — binary record payloads
        // under an intact columnar index.
        Store::compact(&dir).unwrap();
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.manifest().version, ManifestVersion::V3);
        assert!(reader.manifest().column("seed").is_some());
        let (migrated, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(hashes(&migrated), hashes(&profiles));
        assert!(Store::fsck(&dir).unwrap().is_clean());
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn store_entry_meta_is_key_sorted_binary_search() {
    let dir = tmp("meta-sorted");
    Store::save(&dir, &runs(1)).unwrap();
    let reader = Store::open(&dir).unwrap();
    let e = &reader.entries()[0];
    let keys: Vec<&str> = e.meta.iter().map(|(k, _)| k.as_str()).collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "meta rows must be key-sorted");
    for (k, v) in &e.meta {
        assert_eq!(e.meta(k), Some(v));
    }
    assert_eq!(e.meta("zzz-no-such-key"), None);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn crash_points_are_enumerable() {
    let dir = tmp("points");
    let report = Store::save(&dir, &runs(3)).unwrap();
    assert!(report.crash_points >= 7, "{}", report.crash_points);
    // Asking for a crash beyond the last point is a clean write.
    let dir2 = tmp("points-beyond");
    let opts = StoreOptions {
        crash_after: Some(report.crash_points + 10),
        ..StoreOptions::default()
    };
    Store::save_opts(&dir2, &runs(3), &opts).unwrap();
    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_dir_all(dir2).ok();
}

#[test]
fn crash_before_commit_preserves_old_generation() {
    let dir = tmp("crash-precommit");
    let old = runs(3);
    Store::save(&dir, &old).unwrap();
    // Crash at point 1 = mid-shard-write of the new generation.
    let opts = StoreOptions {
        crash_after: Some(1),
        ..StoreOptions::default()
    };
    let err = Store::save_opts(&dir, &runs(5), &opts).unwrap_err();
    assert!(matches!(err, StoreError::InjectedCrash { .. }), "{err}");
    // The torn new shard is an orphan; fsck flags it, open still
    // serves generation 1, recover cleans it.
    let fsck = Store::fsck(&dir).unwrap();
    assert!(!fsck.is_clean());
    assert_eq!(fsck.newest_intact, Some(1));
    let (loaded, rep) = Store::open(&dir).unwrap().load_all().unwrap();
    assert!(rep.is_clean());
    assert_eq!(hashes(&loaded), hashes(&old));
    let rec = Store::recover(&dir).unwrap();
    assert_eq!(rec.generation, 1);
    assert!(Store::fsck(&dir).unwrap().is_clean());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn empty_store_dir_errors() {
    let dir = tmp("empty");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(matches!(
        Store::open(&dir),
        Err(StoreError::NoGeneration(_))
    ));
    assert!(Store::recover(&dir).is_err());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn zero_profile_store_roundtrips() {
    let dir = tmp("zero");
    let report = Store::save(&dir, &[]).unwrap();
    assert_eq!(report.profiles, 0);
    let (loaded, rep) = Store::open(&dir).unwrap().load_all().unwrap();
    assert!(loaded.is_empty());
    assert!(rep.is_clean());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn upsert_replaces_by_profile_id() {
    let dir = tmp("upsert");
    let mut profiles = runs(4);
    Store::save(&dir, &profiles).unwrap();
    // Same metadata (same profile hash), different measurements.
    let node = profiles[1].graph().roots()[0];
    profiles[1].set_metric(node, "time (exc)", 123_456.0);
    let updated = profiles[1].clone();
    // Skip mode ignores the duplicate hash entirely...
    let rep = Store::append(&dir, std::slice::from_ref(&updated)).unwrap();
    assert_eq!((rep.appended, rep.replaced), (0, 0));
    // ...upsert replaces the stored copy in place.
    let opts = StoreOptions {
        append_mode: AppendMode::Upsert,
        ..StoreOptions::default()
    };
    let rep = Store::append_opts(&dir, std::slice::from_ref(&updated), &opts).unwrap();
    assert_eq!((rep.appended, rep.replaced), (0, 1));
    assert_eq!(rep.profiles, 4);
    let reader = Store::open(&dir).unwrap();
    let (loaded, lr) = reader.load_all().unwrap();
    assert!(lr.is_clean(), "{lr}");
    assert_eq!(loaded.len(), 4);
    let got = loaded
        .iter()
        .find(|p| p.profile_hash() == updated.profile_hash())
        .expect("updated profile present");
    let n = got.graph().roots()[0];
    assert_eq!(got.metric(n, "time (exc)"), Some(123_456.0));
    // A mixed batch: one fresh profile, one replacement.
    let mut batch = runs(6);
    let fresh = batch.pop().unwrap();
    let mut repl = profiles[2].clone();
    let n2 = repl.graph().roots()[0];
    repl.set_metric(n2, "time (exc)", 9.0);
    let rep = Store::append_opts(&dir, &[fresh, repl], &opts).unwrap();
    assert_eq!((rep.appended, rep.replaced), (1, 1));
    assert_eq!(rep.profiles, 5);
    // The superseded bytes are reclaimed by compaction, not the append.
    Store::compact(&dir).unwrap();
    let (after, _) = Store::open(&dir).unwrap().load_all().unwrap();
    assert_eq!(after.len(), 5);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn append_cas_surfaces_conflict() {
    let dir = tmp("cas");
    let profiles = runs(3);
    Store::save(&dir, &profiles[..2]).unwrap(); // generation 1
    // CAS against a stale expectation fails typed, touching nothing.
    let opts = StoreOptions {
        expected_generation: Some(7),
        ..StoreOptions::default()
    };
    match Store::append_opts(&dir, &profiles[2..], &opts) {
        Err(StoreError::Conflict { expected: 7, found: 1 }) => {}
        other => panic!("expected Conflict, got {other:?}"),
    }
    assert_eq!(Store::open(&dir).unwrap().generation(), 1);
    // The right expectation commits.
    let opts = StoreOptions {
        expected_generation: Some(1),
        ..StoreOptions::default()
    };
    let rep = Store::append_opts(&dir, &profiles[2..], &opts).unwrap();
    assert_eq!(rep.generation, 2);
    assert_eq!(rep.appended, 1);
    // CAS against an empty store expects generation 0.
    let empty = tmp("cas-empty");
    let opts = StoreOptions {
        expected_generation: Some(3),
        ..StoreOptions::default()
    };
    match Store::append_opts(&empty, &profiles[..1], &opts) {
        Err(StoreError::Conflict { expected: 3, found: 0 }) => {}
        other => panic!("expected Conflict, got {other:?}"),
    }
    std::fs::remove_dir_all(dir).ok();
    std::fs::remove_dir_all(empty).ok();
}

#[test]
fn live_foreign_lock_surfaces_busy() {
    let dir = tmp("busy");
    let profiles = runs(2);
    Store::save(&dir, &profiles).unwrap();
    // A parseable lock owned by *this* (live) process but a token we
    // don't hold: exactly what another thread's in-flight commit looks
    // like. Never taken over — the writer must wait, then report Busy.
    std::fs::write(
        dir.join("LOCK"),
        format!("pid {}\ntoken {:016x}\n", std::process::id(), 0xdead_beef_u64),
    )
    .unwrap();
    let opts = StoreOptions {
        lock_timeout: std::time::Duration::from_millis(50),
        ..StoreOptions::default()
    };
    let t0 = std::time::Instant::now();
    match Store::append_opts(&dir, &runs(1), &opts) {
        Err(StoreError::Busy { waited }) => {
            assert!(waited >= std::time::Duration::from_millis(50));
            assert!(t0.elapsed() >= std::time::Duration::from_millis(50));
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    // The foreign lock is untouched by the failed acquisition.
    assert!(dir.join("LOCK").exists());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn dead_owner_lock_is_taken_over() {
    let dir = tmp("takeover");
    let profiles = runs(2);
    Store::save(&dir, &profiles).unwrap();
    // pid 0 is never alive: a parseable lock from a dead writer.
    std::fs::write(dir.join("LOCK"), "pid 0\ntoken 0000000000000001\n").unwrap();
    let rep = Store::append(&dir, &runs(3)[2..]).unwrap();
    assert_eq!(rep.appended, 1);
    // The takeover left no residue and the lock was released after.
    assert!(!dir.join("LOCK").exists());
    assert!(Store::fsck(&dir).unwrap().is_clean());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn pin_name_roundtrip_and_rejects() {
    use super::layout::{parse_pin_name, pin_name};
    let name = pin_name(42, 1234, 0xabcd_ef01_2345_6789);
    assert_eq!(parse_pin_name(&name), Some((42, 1234, 0xabcd_ef01_2345_6789)));
    assert_eq!(parse_pin_name("pin-000042-1234-deadbeef"), None); // short token
    assert_eq!(parse_pin_name("pin-xx-1-0000000000000000"), None);
    assert_eq!(parse_pin_name("LOCK"), None);
    assert_eq!(parse_pin_name("shard-000001-0000.tks"), None);
}

#[test]
fn pinned_snapshot_survives_generation_collection() {
    let dir = tmp("pin-gc");
    let profiles = runs(5);
    Store::save(&dir, &profiles).unwrap();
    let snap = Store::open_pinned(&dir).unwrap();
    assert!(snap.leased());
    let lease = snap.lease_file().unwrap().to_string();
    assert!(dir.join(&lease).exists());
    // keep_generations 0 would normally collect generation 1 on the
    // next commit — the live lease must hold it.
    let opts = StoreOptions {
        keep_generations: 0,
        ..StoreOptions::default()
    };
    Store::append_opts(&dir, &runs(7)[5..], &opts).unwrap();
    Store::compact_opts(&dir, &opts).unwrap();
    let (loaded, rep) = snap.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(hashes(&loaded), hashes(&profiles), "snapshot tore");
    // Dropping the pin releases the lease; the next commit collects.
    drop(snap);
    assert!(!dir.join(&lease).exists(), "lease not cleaned up");
    Store::append_opts(&dir, &runs(8)[7..], &opts).unwrap();
    let gens: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("MANIFEST-"))
        .collect();
    assert_eq!(gens.len(), 1, "unpinned generations survived GC");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn pinned_snapshot_survives_unlinked_files() {
    let dir = tmp("pin-unlink");
    let profiles = runs(4);
    Store::save(&dir, &profiles).unwrap();
    let snap = Store::open_pinned(&dir).unwrap();
    // Simulate a hostile GC: unlink every shard and manifest under the
    // snapshot. Open handles keep the data readable on POSIX.
    for entry in std::fs::read_dir(&dir).unwrap().filter_map(|e| e.ok()) {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("shard-") || name.starts_with("MANIFEST-") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
    let (loaded, rep) = snap.load_all().unwrap();
    assert!(rep.is_clean(), "{rep}");
    assert_eq!(hashes(&loaded), hashes(&profiles));
    // Selection and filtered loads ride the same handles.
    let (subset, _) = snap.load_matching(&MetaPred::ge("seed", 2i64)).unwrap();
    assert_eq!(subset.len(), 2);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn shared_in_process_leases_refcount_one_file() {
    let dir = tmp("pin-shared");
    Store::save(&dir, &runs(3)).unwrap();
    let a = Store::open_pinned(&dir).unwrap();
    let b = Store::open_pinned(&dir).unwrap();
    // Same directory, same generation: one lease file serves both.
    assert_eq!(a.lease_file(), b.lease_file());
    let lease = a.lease_file().unwrap().to_string();
    drop(a);
    assert!(dir.join(&lease).exists(), "lease dropped while a pin lives");
    drop(b);
    assert!(!dir.join(&lease).exists(), "last pin did not clean up");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn injected_crash_leaves_stale_lock_not_live_lock() {
    let dir = tmp("crash-lock");
    Store::save(&dir, &runs(2)).unwrap();
    // Crash the writer mid-append: the commit lock must be left in a
    // state a *later* writer can take over immediately, even though
    // this (live) process is the owner of record.
    let opts = StoreOptions {
        crash_after: Some(1),
        ..StoreOptions::default()
    };
    match Store::append_opts(&dir, &runs(3)[2..], &opts) {
        Err(StoreError::InjectedCrash { .. }) => {}
        other => panic!("expected InjectedCrash, got {other:?}"),
    }
    assert!(dir.join("LOCK").exists(), "crashed writer removed its lock");
    // fsck classifies it as stale (not live), recover reaps it, and a
    // follow-up append needs no timeout wait.
    let fsck = Store::fsck(&dir).unwrap();
    assert!(
        fsck.coordination
            .iter()
            .any(|d| matches!(d.kind, crate::ingest::DiagKind::StaleLock { .. })),
        "crashed lock not classified: {fsck}"
    );
    let t0 = std::time::Instant::now();
    let rep = Store::append(&dir, &runs(3)[2..]).unwrap();
    assert_eq!(rep.appended, 1);
    assert!(
        t0.elapsed() < StoreOptions::default().lock_timeout,
        "takeover waited out a timeout"
    );
    assert!(Store::fsck(&dir).unwrap().is_clean());
    std::fs::remove_dir_all(dir).ok();
}
