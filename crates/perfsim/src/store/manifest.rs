// ---------------------------------------------------------------------
// Manifest model.
// ---------------------------------------------------------------------

use super::crc::crc32c;
use super::{
    ManifestVersion, MANIFEST_FORMAT, MANIFEST_FORMAT_V2, MANIFEST_FORMAT_V3, MANIFEST_MAGIC,
    RECORD_HEADER_BYTES, SHARD_MAGIC,
};
use crate::json::Json;
use crate::profile::{json_to_value, value_to_json, Profile};
use std::collections::BTreeSet;
use std::sync::OnceLock;
use thicket_dataframe::Value;

/// One shard as the manifest describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// File name (relative to the store directory).
    pub file: String,
    /// Total file length in bytes (magic included).
    pub bytes: u64,
    /// CRC32C of the whole file.
    pub crc: u32,
    /// Number of records.
    pub records: usize,
}

/// One profile as the manifest indexes it: identity, byte range, and
/// the scalar metadata fields a [`StoreReader::load_entries_where`]
/// predicate can filter on without touching the shard.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Deterministic profile identity ([`Profile::profile_hash`]).
    pub hash: i64,
    /// Index into [`Manifest::shards`].
    pub shard: usize,
    /// Byte offset of the record *payload* within the shard file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32C of the payload.
    pub crc: u32,
    /// Scalar metadata fields, **sorted by key** (since v2; v1
    /// manifests are re-sorted at parse time) so lookups are a binary
    /// search instead of a per-call linear scan. Empty in a v2
    /// manifest's raw entries — [`StoreReader::entries`] materializes
    /// it from the columnar index on demand.
    pub meta: Vec<(String, Value)>,
}

impl StoreEntry {
    /// Metadata lookup by key (binary search; `meta` is key-sorted).
    pub fn meta(&self, key: &str) -> Option<&Value> {
        self.meta
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.meta[i].1)
    }
}

/// One key's column in the v2 manifest's metadata index: a presence
/// mask plus the key's values for the profiles that carry it, held as
/// unparsed JSON text until first use. Selection against a predicate
/// decodes only the blocks whose keys the predicate names.
#[derive(Debug, Clone)]
pub struct MetaBlock {
    key: String,
    /// `present[i]` ⇔ profile `i` carries this key.
    present: Vec<bool>,
    /// Compact JSON array of the present profiles' values, in profile
    /// order — *not* parsed until [`MetaBlock::values`] is called.
    raw: String,
    /// Lazily decoded values, full profile length with `Value::Null`
    /// in absent slots (the presence mask stays authoritative: an
    /// absent key and a stored `Null` are distinguishable).
    decoded: OnceLock<Result<Vec<Value>, String>>,
}

impl PartialEq for MetaBlock {
    fn eq(&self, other: &Self) -> bool {
        // The decode cache is derived state, not identity.
        self.key == other.key && self.present == other.present && self.raw == other.raw
    }
}

impl MetaBlock {
    /// The metadata key this block indexes.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Whether profile `i` carries this key.
    pub fn present_at(&self, i: usize) -> bool {
        self.present.get(i).copied().unwrap_or(false)
    }

    /// The full presence mask, one flag per profile in storage order —
    /// the predicate engine binds this directly as a columnar view.
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    /// True once this block's value text has been parsed — selection
    /// must leave blocks for keys a predicate never names undecoded.
    pub fn is_decoded(&self) -> bool {
        self.decoded.get().is_some()
    }

    /// Decode (once) and return the full-length value column;
    /// `Value::Null` fills absent slots.
    pub fn values(&self) -> Result<&[Value], String> {
        self.decoded
            .get_or_init(|| {
                let doc = Json::parse(&self.raw)
                    .map_err(|e| format!("meta column {}: {e}", self.key))?;
                let arr = doc
                    .as_arr()
                    .ok_or_else(|| format!("meta column {}: not an array", self.key))?;
                let n_present = self.present.iter().filter(|&&p| p).count();
                if arr.len() != n_present {
                    return Err(format!(
                        "meta column {}: {} values for {} present rows",
                        self.key,
                        arr.len(),
                        n_present
                    ));
                }
                let mut full = vec![Value::Null; self.present.len()];
                let mut vals = arr.iter();
                for (slot, &p) in full.iter_mut().zip(&self.present) {
                    if p {
                        *slot = json_to_value(vals.next().expect("counted above"));
                    }
                }
                Ok(full)
            })
            .as_deref()
            .map_err(|e| e.clone())
    }
}

/// Build the sorted columnar index from per-profile key-sorted rows.
/// The decode cache is pre-filled (the writer just had the values).
pub(crate) fn build_columns(rows: &[Vec<(String, Value)>]) -> Vec<MetaBlock> {
    let mut keys: BTreeSet<&str> = BTreeSet::new();
    for row in rows {
        for (k, _) in row {
            keys.insert(k);
        }
    }
    keys.into_iter()
        .map(|key| {
            let mut present = vec![false; rows.len()];
            let mut vals = Vec::new();
            let mut full = vec![Value::Null; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                if let Ok(pos) = row.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
                    present[i] = true;
                    vals.push(value_to_json(&row[pos].1));
                    full[i] = row[pos].1.clone();
                }
            }
            let decoded = OnceLock::new();
            let _ = decoded.set(Ok(full));
            MetaBlock {
                key: key.to_string(),
                present,
                raw: Json::Arr(vals).to_string_compact(),
                decoded,
            }
        })
        .collect()
}

/// A profile's scalar metadata as a key-sorted row (the order
/// [`StoreEntry::meta`]'s binary search requires).
pub(crate) fn sorted_meta(p: &Profile) -> Vec<(String, Value)> {
    let mut meta: Vec<(String, Value)> = p
        .metadata_iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    meta.sort_by(|a, b| a.0.cmp(&b.0));
    meta
}

/// Presence mask → lowercase hex, one byte per 8 profiles, LSB-first
/// within each byte.
pub(crate) fn mask_to_hex(present: &[bool]) -> String {
    let mut out = String::with_capacity(present.len().div_ceil(8) * 2);
    for chunk in present.chunks(8) {
        let mut byte = 0u8;
        for (bit, &p) in chunk.iter().enumerate() {
            if p {
                byte |= 1 << bit;
            }
        }
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Hex mask → presence vector of exactly `n` profiles. Rejects wrong
/// lengths and stray set bits past `n`.
pub(crate) fn mask_from_hex(hex: &str, n: usize) -> Result<Vec<bool>, String> {
    let expect = n.div_ceil(8) * 2;
    if hex.len() != expect {
        return Err(format!("mask is {} hex chars, expected {expect}", hex.len()));
    }
    let mut present = Vec::with_capacity(n);
    for (bi, pair) in hex.as_bytes().chunks(2).enumerate() {
        let s = std::str::from_utf8(pair).map_err(|_| "mask not UTF-8".to_string())?;
        let byte = u8::from_str_radix(s, 16).map_err(|_| "mask not hex".to_string())?;
        for bit in 0..8 {
            let i = bi * 8 + bit;
            let set = byte & (1 << bit) != 0;
            if i < n {
                present.push(set);
            } else if set {
                return Err("mask has bits past the profile count".into());
            }
        }
    }
    Ok(present)
}

/// A parsed, self-CRC-verified manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Generation number.
    pub generation: u64,
    /// Which on-disk format the body used (auto-detected at parse).
    pub version: ManifestVersion,
    /// Shard descriptors, index-addressed by [`StoreEntry::shard`].
    pub shards: Vec<ShardInfo>,
    /// Per-profile index, in storage order. Under
    /// [`ManifestVersion::V2`] the entries carry no metadata (it lives
    /// in [`Manifest::columns`]).
    pub profiles: Vec<StoreEntry>,
    /// v2 columnar metadata index, one block per key, key-sorted.
    /// Empty for v1.
    pub columns: Vec<MetaBlock>,
}

impl Manifest {
    /// The column indexing `key`, if any profile carries it (v2 only).
    pub fn column(&self, key: &str) -> Option<&MetaBlock> {
        self.columns
            .binary_search_by(|b| b.key.as_str().cmp(key))
            .ok()
            .map(|i| &self.columns[i])
    }

    /// Every profile's key-sorted metadata row: borrowed from the
    /// entries (v1) or decoded out of every column (v2). Strict — a
    /// column that fails to decode fails the whole call.
    pub(crate) fn meta_rows(&self) -> Result<Vec<Vec<(String, Value)>>, String> {
        if !self.version.columnar() {
            return Ok(self.profiles.iter().map(|e| e.meta.clone()).collect());
        }
        let mut rows = vec![Vec::new(); self.profiles.len()];
        for b in &self.columns {
            let vals = b.values()?;
            for (i, row) in rows.iter_mut().enumerate() {
                if b.present_at(i) {
                    row.push((b.key.clone(), vals[i].clone()));
                }
            }
        }
        // Columns are key-sorted, so each row came out sorted.
        Ok(rows)
    }

    /// [`Manifest::meta_rows`], but undecodable columns are skipped
    /// instead of failing (for best-effort entry materialization; fsck
    /// reports the damage).
    pub(crate) fn meta_rows_lossy(&self) -> Vec<Vec<(String, Value)>> {
        if !self.version.columnar() {
            return self.profiles.iter().map(|e| e.meta.clone()).collect();
        }
        let mut rows = vec![Vec::new(); self.profiles.len()];
        for b in &self.columns {
            if let Ok(vals) = b.values() {
                for (i, row) in rows.iter_mut().enumerate() {
                    if b.present_at(i) {
                        row.push((b.key.clone(), vals[i].clone()));
                    }
                }
            }
        }
        rows
    }

    pub(crate) fn to_file_bytes(&self) -> Vec<u8> {
        let shards = Json::Arr(
            self.shards
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("file".into(), Json::Str(s.file.clone())),
                        ("bytes".into(), Json::Num(s.bytes as f64)),
                        ("crc".into(), Json::Num(s.crc as f64)),
                        ("records".into(), Json::Num(s.records as f64)),
                    ])
                })
                .collect(),
        );
        let profiles = Json::Arr(
            self.profiles
                .iter()
                .map(|p| {
                    let mut fields = vec![
                        // Full-range i64: goes through a decimal string
                        // so it survives the JSON f64 round trip.
                        ("hash".into(), Json::Str(p.hash.to_string())),
                        ("shard".into(), Json::Num(p.shard as f64)),
                        ("offset".into(), Json::Num(p.offset as f64)),
                        ("len".into(), Json::Num(p.len as f64)),
                        ("crc".into(), Json::Num(p.crc as f64)),
                    ];
                    if self.version == ManifestVersion::V1 {
                        fields.push((
                            "meta".into(),
                            Json::Obj(
                                p.meta
                                    .iter()
                                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                                    .collect(),
                            ),
                        ));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        );
        let mut body_fields = vec![
            (
                "format".into(),
                Json::Str(
                    match self.version {
                        ManifestVersion::V1 => MANIFEST_FORMAT,
                        ManifestVersion::V2 => MANIFEST_FORMAT_V2,
                        ManifestVersion::V3 => MANIFEST_FORMAT_V3,
                    }
                    .into(),
                ),
            ),
            ("generation".into(), Json::Num(self.generation as f64)),
            ("shards".into(), shards),
            ("profiles".into(), profiles),
        ];
        if self.version.columnar() {
            // Each column's values ship as a JSON *string* holding the
            // compact array text: a reader that never references the
            // key scans past one string token instead of parsing every
            // value.
            body_fields.push((
                "columns".into(),
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("key".into(), Json::Str(b.key.clone())),
                                ("mask".into(), Json::Str(mask_to_hex(&b.present))),
                                ("values".into(), Json::Str(b.raw.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        let body = Json::Obj(body_fields).to_string_compact();
        let mut out = Vec::with_capacity(body.len() + 13);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(format!("{:08x}", crc32c(body.as_bytes())).as_bytes());
        out.push(b'\n');
        out.extend_from_slice(body.as_bytes());
        out
    }

    /// Parse and self-verify a manifest file's bytes, auto-detecting
    /// the format version.
    pub(crate) fn from_file_bytes(bytes: &[u8]) -> Result<Manifest, String> {
        if bytes.len() < 13 || &bytes[..4] != MANIFEST_MAGIC {
            return Err("bad manifest magic".into());
        }
        let hex = std::str::from_utf8(&bytes[4..12]).map_err(|_| "bad CRC header")?;
        let want = u32::from_str_radix(hex, 16).map_err(|_| "bad CRC header")?;
        if bytes[12] != b'\n' {
            return Err("bad manifest header".into());
        }
        let body = &bytes[13..];
        let got = crc32c(body);
        if got != want {
            return Err(format!("manifest body CRC {got:08x} != header {want:08x}"));
        }
        let text = std::str::from_utf8(body).map_err(|_| "manifest body not UTF-8")?;
        let doc = Json::parse(text).map_err(|e| format!("manifest JSON: {e}"))?;
        let version = match doc.get("format").and_then(Json::as_str) {
            Some(MANIFEST_FORMAT) => ManifestVersion::V1,
            Some(MANIFEST_FORMAT_V2) => ManifestVersion::V2,
            Some(MANIFEST_FORMAT_V3) => ManifestVersion::V3,
            _ => return Err("unsupported manifest format".into()),
        };
        let generation = doc
            .get("generation")
            .and_then(Json::as_i64)
            .filter(|&g| g > 0)
            .ok_or("missing generation")? as u64;
        let shards = doc
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or("missing shards")?
            .iter()
            .map(|s| {
                Some(ShardInfo {
                    file: s.get("file")?.as_str()?.to_string(),
                    bytes: s.get("bytes")?.as_i64().filter(|&v| v >= 0)? as u64,
                    crc: s.get("crc")?.as_i64().filter(|&v| v >= 0)? as u32,
                    records: s.get("records")?.as_i64().filter(|&v| v >= 0)? as usize,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed shard entry")?;
        let profiles = doc
            .get("profiles")
            .and_then(Json::as_arr)
            .ok_or("missing profiles")?
            .iter()
            .map(|p| {
                let mut meta: Vec<(String, Value)> = if version.columnar() {
                    Vec::new()
                } else {
                    p.get("meta")?
                        .as_obj()?
                        .iter()
                        .map(|(k, v)| (k.clone(), json_to_value(v)))
                        .collect()
                };
                // v1 rows were written in profile insertion order;
                // StoreEntry::meta binary-searches, so sort on entry.
                meta.sort_by(|a, b| a.0.cmp(&b.0));
                Some(StoreEntry {
                    hash: p.get("hash")?.as_str()?.parse::<i64>().ok()?,
                    shard: p.get("shard")?.as_i64().filter(|&v| v >= 0)? as usize,
                    offset: p.get("offset")?.as_i64().filter(|&v| v >= 0)? as u64,
                    len: p.get("len")?.as_i64().filter(|&v| v >= 0)? as u32,
                    crc: p.get("crc")?.as_i64().filter(|&v| v >= 0)? as u32,
                    meta,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed profile entry")?;
        // Validate every declared byte range against the shard it names
        // **at parse time** — readers allocate and slice on these, so a
        // corrupt offset or length must be caught here (as a typed
        // manifest error → `StaleManifest` under fsck), never by an
        // oversized allocation or an out-of-bounds seek later.
        let record_min = (SHARD_MAGIC.len() + RECORD_HEADER_BYTES) as u64;
        for p in &profiles {
            if p.shard >= shards.len() {
                return Err(format!(
                    "profile references shard {} of {}",
                    p.shard,
                    shards.len()
                ));
            }
            let info = &shards[p.shard];
            let end = p.offset.checked_add(p.len as u64);
            if p.offset < record_min || end.is_none() || end.unwrap() > info.bytes {
                return Err(format!(
                    "profile byte range {}+{} exceeds shard {} ({} bytes)",
                    p.offset, p.len, info.file, info.bytes
                ));
            }
        }
        let mut columns = if !version.columnar() {
            Vec::new()
        } else {
            doc
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or("missing columns")?
                .iter()
                .map(|c| {
                    Some(MetaBlock {
                        key: c.get("key")?.as_str()?.to_string(),
                        present: mask_from_hex(c.get("mask")?.as_str()?, profiles.len()).ok()?,
                        raw: c.get("values")?.as_str()?.to_string(),
                        decoded: OnceLock::new(),
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed meta column")?
        };
        columns.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(Manifest {
            generation,
            version,
            shards,
            profiles,
            columns,
        })
    }
}
