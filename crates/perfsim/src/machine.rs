//! Parameterized machine models for the clusters the paper's studies ran
//! on. These numbers shape the *relative* behaviour (roofline ridge
//! points, cache capacities, scaling) that the case-study figures depend
//! on; absolute agreement with the real machines is not the goal.

/// A CPU node model (per-node aggregates).
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Cluster name as it appears in metadata (`quartz`, `lassen`, ...).
    pub cluster: String,
    /// System type string (`toss_3_x86_64_ib`, ...).
    pub systype: String,
    /// Physical cores per node.
    pub cores: u32,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Peak double-precision flops per cycle per core (vector + FMA).
    pub flops_per_cycle: f64,
    /// Last-level cache capacity in bytes (per node).
    pub llc_bytes: u64,
    /// Aggregate cache bandwidth, GB/s.
    pub cache_bw_gbs: f64,
    /// Aggregate DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
}

impl CpuSpec {
    /// Peak node compute rate in flop/s when `threads` threads are active.
    pub fn peak_flops(&self, threads: u32) -> f64 {
        let active = threads.min(self.cores).max(1) as f64;
        active * self.freq_ghz * 1e9 * self.flops_per_cycle
    }

    /// Sustainable memory bandwidth (bytes/s) for a working set of
    /// `ws_bytes`: cache bandwidth when resident, DRAM bandwidth when
    /// streaming, with a smooth transition around the LLC capacity.
    /// Single-threaded runs reach only a fraction of node bandwidth.
    pub fn mem_bw(&self, ws_bytes: f64, threads: u32) -> f64 {
        let llc = self.llc_bytes as f64;
        // Logistic blend in log-space around the cache capacity.
        let x = (ws_bytes.max(1.0) / llc).ln();
        let dram_share = 1.0 / (1.0 + (-2.0 * x).exp());
        let bw = self.cache_bw_gbs + (self.dram_bw_gbs - self.cache_bw_gbs) * dram_share;
        // Few threads cannot saturate the memory system.
        let t = threads.min(self.cores).max(1) as f64;
        let concurrency = (t / 8.0).clamp(0.4, 1.0);
        bw * 1e9 * concurrency
    }
}

/// A GPU model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name (`V100`).
    pub name: String,
    /// Peak double-precision flop/s.
    pub peak_flops: f64,
    /// Peak DRAM bandwidth, GB/s.
    pub dram_bw_gbs: f64,
    /// Kernel launch latency, seconds.
    pub launch_overhead_s: f64,
    /// Streaming multiprocessors.
    pub sms: u32,
}

impl GpuSpec {
    /// Efficiency factor for a CUDA thread-block size; 256 is the sweet
    /// spot on Volta-class parts, small blocks under-occupy, huge blocks
    /// limit scheduling flexibility.
    pub fn block_efficiency(&self, block_size: u32) -> f64 {
        match block_size {
            0..=64 => 0.55,
            65..=128 => 0.88,
            129..=256 => 1.0,
            257..=512 => 0.97,
            513..=1024 => 0.90,
            _ => 0.75,
        }
    }

    /// Occupancy proxy (%) used for the `sm__warps_active` NCU metric.
    pub fn occupancy(&self, block_size: u32) -> f64 {
        match block_size {
            0..=64 => 30.0,
            65..=128 => 55.0,
            129..=256 => 95.0,
            257..=512 => 90.0,
            _ => 75.0,
        }
    }
}

/// An interconnect model for MPI scaling studies.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// Fabric name (`omnipath`, `efa`).
    pub name: String,
    /// Point-to-point latency, seconds.
    pub latency_s: f64,
    /// Per-node injection bandwidth, GB/s.
    pub bw_gbs: f64,
}

/// Quartz: Intel Xeon E5-2695 v4 (Broadwell), 36 cores, 128 GB
/// (paper §5.1).
pub fn quartz() -> CpuSpec {
    CpuSpec {
        cluster: "quartz".into(),
        systype: "toss_3_x86_64_ib".into(),
        cores: 36,
        freq_ghz: 2.1,
        flops_per_cycle: 16.0,
        llc_bytes: 90 * 1024 * 1024,
        cache_bw_gbs: 900.0,
        dram_bw_gbs: 130.0,
    }
}

/// Lassen CPU side: IBM Power9, 44 cores, 256 GB (paper §5.1).
pub fn lassen_cpu() -> CpuSpec {
    CpuSpec {
        cluster: "lassen".into(),
        systype: "blueos_3_ppc64le_ib_p9".into(),
        cores: 44,
        freq_ghz: 3.5,
        flops_per_cycle: 8.0,
        llc_bytes: 120 * 1024 * 1024,
        cache_bw_gbs: 1100.0,
        dram_bw_gbs: 270.0,
    }
}

/// Lassen GPU side: NVIDIA V100 (16 GB, NVLINK2).
pub fn lassen_gpu() -> GpuSpec {
    GpuSpec {
        name: "V100".into(),
        peak_flops: 7.0e12,
        dram_bw_gbs: 900.0,
        launch_overhead_s: 4.0e-6,
        sms: 80,
    }
}

/// RZTopaz: Intel Xeon E5-2695 v4 CTS-1 cluster (paper §5.2).
pub fn rztopaz() -> CpuSpec {
    let mut m = quartz();
    m.cluster = "rztopaz".into();
    m
}

/// RZTopaz Omni-Path interconnect.
pub fn rztopaz_network() -> NetworkSpec {
    NetworkSpec {
        name: "omnipath".into(),
        latency_s: 1.6e-6,
        bw_gbs: 12.5,
    }
}

/// AWS ParallelCluster: C5n.18xlarge (Skylake 8124M, 36 cores, 192 GB).
pub fn aws_parallelcluster() -> CpuSpec {
    CpuSpec {
        cluster: "aws-parallelcluster".into(),
        systype: "c5n.18xlarge".into(),
        cores: 36,
        freq_ghz: 3.0,
        flops_per_cycle: 32.0,
        llc_bytes: 50 * 1024 * 1024,
        cache_bw_gbs: 1000.0,
        dram_bw_gbs: 180.0,
    }
}

/// AWS Elastic Fabric Adapter.
pub fn aws_network() -> NetworkSpec {
    NetworkSpec {
        name: "efa".into(),
        latency_s: 15.0e-6,
        bw_gbs: 12.5,
    }
}

/// A compiler description plus its optimization behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Compiler {
    /// Full versioned name as metadata shows it (`clang-9.0.0`).
    pub name: String,
    /// Relative code-quality factor per `-O` level, indexed 0..=3.
    /// (−O0 is dramatically slower; −O2 is the best level on the paper's
    /// "Stream" study, Figure 10.)
    pub opt_factors: [f64; 4],
}

impl Compiler {
    /// clang 9.0.0 (Quartz study).
    pub fn clang9() -> Compiler {
        Compiler {
            name: "clang-9.0.0".into(),
            opt_factors: [0.09, 0.62, 1.0, 0.91],
        }
    }

    /// gcc 8.3.1 (Quartz study).
    pub fn gcc8() -> Compiler {
        Compiler {
            name: "g++-8.3.1".into(),
            opt_factors: [0.11, 0.58, 1.0, 0.93],
        }
    }

    /// IBM XL 16.1.1.12 (Lassen CPU compiler).
    pub fn xl16() -> Compiler {
        Compiler {
            name: "xlc-16.1.1.12".into(),
            opt_factors: [0.10, 0.55, 1.0, 0.92],
        }
    }

    /// The factor for `-O<level>`; levels above 3 behave like 3.
    pub fn opt_factor(&self, level: u32) -> f64 {
        self.opt_factors[level.min(3) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_flops_scales_with_threads_up_to_cores() {
        let m = quartz();
        assert_eq!(m.peak_flops(72), m.peak_flops(36));
        assert!((m.peak_flops(36) / m.peak_flops(1) - 36.0).abs() < 1e-9);
        assert!(m.peak_flops(0) > 0.0);
    }

    #[test]
    fn bandwidth_transitions_at_cache_capacity() {
        let m = quartz();
        let small = m.mem_bw(1.0e6, 36);
        let large = m.mem_bw(4.0e9, 36);
        assert!(small > large * 2.0, "cache-resident should be much faster");
        // Streaming converges to DRAM bandwidth.
        assert!((large / 1e9 - m.dram_bw_gbs).abs() / m.dram_bw_gbs < 0.1);
    }

    #[test]
    fn single_thread_bandwidth_limited() {
        let m = quartz();
        assert!(m.mem_bw(4.0e9, 1) < m.mem_bw(4.0e9, 36));
    }

    #[test]
    fn gpu_block_sweet_spot() {
        let g = lassen_gpu();
        assert!(g.block_efficiency(256) > g.block_efficiency(128));
        assert!(g.block_efficiency(256) >= g.block_efficiency(1024));
        assert!(g.occupancy(256) > g.occupancy(128));
    }

    #[test]
    fn opt_levels_order() {
        for c in [Compiler::clang9(), Compiler::gcc8(), Compiler::xl16()] {
            assert!(c.opt_factor(0) < c.opt_factor(1));
            assert!(c.opt_factor(1) < c.opt_factor(2));
            // -O2 is the best level (paper's Stream finding).
            assert!(c.opt_factor(2) >= c.opt_factor(3));
            assert_eq!(c.opt_factor(9), c.opt_factor(3));
        }
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(quartz(), aws_parallelcluster());
        assert_eq!(rztopaz().cores, quartz().cores);
        assert_ne!(rztopaz_network().name, aws_network().name);
        assert!(aws_network().latency_s > rztopaz_network().latency_s);
    }
}
