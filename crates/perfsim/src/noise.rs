//! Deterministic measurement noise.
//!
//! Real profiles vary run to run; the paper's aggregated statistics and
//! histograms (Figures 9 and 12) are only meaningful over such variation.
//! [`Noise`] produces seeded, reproducible multiplicative jitter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeded noise source for simulated measurements.
#[derive(Debug, Clone)]
pub struct Noise {
    rng: StdRng,
}

impl Noise {
    /// New source with a fixed seed.
    pub fn new(seed: u64) -> Self {
        Noise {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Multiplicative log-normal factor with standard deviation `sigma`
    /// in log space (≈ relative std for small `sigma`). Always positive,
    /// mean ≈ 1.
    pub fn lognormal(&mut self, sigma: f64) -> f64 {
        (self.normal() * sigma).exp()
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Noise::new(7);
        let mut b = Noise::new(7);
        for _ in 0..10 {
            assert_eq!(a.lognormal(0.1), b.lognormal(0.1));
        }
        let mut c = Noise::new(8);
        assert_ne!(Noise::new(7).lognormal(0.1), c.lognormal(0.1));
    }

    #[test]
    fn lognormal_positive_and_centred() {
        let mut n = Noise::new(42);
        let samples: Vec<f64> = (0..4000).map(|_| n.lognormal(0.05)).collect();
        assert!(samples.iter().all(|v| *v > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut n = Noise::new(1);
        let samples: Vec<f64> = (0..8000).map(|_| n.normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.08, "var = {var}");
    }

    #[test]
    fn uniform_range() {
        let mut n = Noise::new(3);
        for _ in 0..100 {
            let v = n.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }
}
