//! The profile data model: one run's call tree, per-node metrics, and
//! metadata — the Caliper-output equivalent that Thicket consumes
//! (paper §2, step 2), plus its on-disk JSON format.

use crate::json::{Json, JsonError};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use thicket_dataframe::{intern, Value};
use thicket_graph::{Frame, Graph, NodeId};

/// A single run's profile: metadata + call tree + per-node metrics.
///
/// Metric maps are keyed by interner-shared `Arc<str>`: an ensemble
/// measures the same handful of metric names on every node of every
/// run, so per-node maps hold refcounts into the global intern table
/// instead of an owned `String` per (node, metric) pair. Ordering and
/// lookup are by string contents, exactly as with owned keys.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Run metadata (build settings, execution context), insertion-ordered.
    metadata: Vec<(String, Value)>,
    /// The call tree (or DAG).
    graph: Graph,
    /// Per-node metric maps, indexed by `NodeId::index()`.
    metrics: Vec<BTreeMap<Arc<str>, f64>>,
}

/// Errors from profile construction and I/O.
#[derive(Debug)]
pub enum ProfileError {
    /// Underlying JSON problem.
    Json(JsonError),
    /// Structurally invalid profile document.
    Malformed(String),
    /// A metric value is NaN or infinite — rejected on ingest so a
    /// poisoned run cannot silently contaminate ensemble statistics.
    NonFinite {
        /// Node index carrying the bad value.
        node: usize,
        /// Metric name.
        metric: String,
    },
    /// Filesystem failure.
    Io(std::io::Error),
    /// A worker thread processing this profile panicked; the captured
    /// panic message.
    Panicked(String),
    /// An error annotated with the file it came from (ensemble loads).
    InFile {
        /// The offending file.
        path: PathBuf,
        /// The underlying failure.
        source: Box<ProfileError>,
    },
}

impl ProfileError {
    /// Attach a file path to this error (idempotent-ish: nested paths
    /// keep the innermost error reachable through `source`).
    pub fn in_file(self, path: impl Into<PathBuf>) -> ProfileError {
        ProfileError::InFile {
            path: path.into(),
            source: Box::new(self),
        }
    }

    /// The innermost error, unwrapping any [`ProfileError::InFile`] layers.
    pub fn root_cause(&self) -> &ProfileError {
        match self {
            ProfileError::InFile { source, .. } => source.root_cause(),
            other => other,
        }
    }

    /// The file this error is annotated with, if any.
    pub fn path(&self) -> Option<&Path> {
        match self {
            ProfileError::InFile { path, .. } => Some(path),
            _ => None,
        }
    }
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Json(e) => write!(f, "profile JSON: {e}"),
            ProfileError::Malformed(m) => write!(f, "malformed profile: {m}"),
            ProfileError::NonFinite { node, metric } => {
                write!(f, "non-finite metric {metric:?} on node {node}")
            }
            ProfileError::Io(e) => write!(f, "profile I/O: {e}"),
            ProfileError::Panicked(m) => write!(f, "profile worker panicked: {m}"),
            ProfileError::InFile { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<JsonError> for ProfileError {
    fn from(e: JsonError) -> Self {
        ProfileError::Json(e)
    }
}

impl From<std::io::Error> for ProfileError {
    fn from(e: std::io::Error) -> Self {
        ProfileError::Io(e)
    }
}

impl Profile {
    /// New profile around a call graph, with empty metrics and metadata.
    pub fn new(graph: Graph) -> Self {
        let n = graph.len();
        Profile {
            metadata: Vec::new(),
            graph,
            metrics: vec![BTreeMap::new(); n],
        }
    }

    /// The call graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Set (or replace) a metadata attribute.
    pub fn set_metadata(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.metadata.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.metadata.push((key, value));
        }
    }

    /// Metadata lookup.
    pub fn metadata(&self, key: &str) -> Option<&Value> {
        self.metadata.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// All metadata attributes in insertion order.
    pub fn metadata_iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.metadata.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Set one metric value on one node. The name is interned so
    /// repeated sets across nodes and profiles share one allocation.
    pub fn set_metric(&mut self, node: NodeId, metric: impl AsRef<str>, value: f64) {
        self.metrics[node.index()].insert(intern(metric.as_ref()), value);
    }

    /// Metric lookup.
    pub fn metric(&self, node: NodeId, metric: &str) -> Option<f64> {
        self.metrics[node.index()].get(metric).copied()
    }

    /// All metrics of one node, name-ordered.
    pub fn node_metrics(&self, node: NodeId) -> &BTreeMap<Arc<str>, f64> {
        &self.metrics[node.index()]
    }

    /// The sorted union of metric names across all nodes.
    pub fn metric_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .metrics
            .iter()
            .flat_map(|m| m.keys().map(|k| k.to_string()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Deterministic profile identity: FNV-1a over the metadata, cast to
    /// `i64` — reproducing the signed hash profile indices the paper's
    /// metadata tables show (Figure 5).
    pub fn profile_hash(&self) -> i64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for (k, v) in &self.metadata {
            eat(k.as_bytes());
            eat(v.display_cell().as_bytes());
            eat(&[0]);
        }
        h as i64
    }

    /// Serialize to the on-disk JSON document.
    pub fn to_json(&self) -> Json {
        let metadata = Json::Obj(
            self.metadata
                .iter()
                .map(|(k, v)| (k.clone(), value_to_json(v)))
                .collect(),
        );
        let nodes = Json::Arr(
            self.graph
                .ids()
                .map(|id| {
                    let i = id.index();
                    let node = self.graph.node(id);
                    let frame = Json::Obj(
                        node.frame()
                            .iter()
                            .map(|(k, v)| (k.to_string(), value_to_json(v)))
                            .collect(),
                    );
                    let children = Json::Arr(
                        node.children()
                            .iter()
                            .map(|c| Json::Num(c.index() as f64))
                            .collect(),
                    );
                    let metrics = Json::Obj(
                        self.metrics[i]
                            .iter()
                            .map(|(k, v)| (k.to_string(), Json::Num(*v)))
                            .collect(),
                    );
                    Json::Obj(vec![
                        ("frame".into(), frame),
                        ("children".into(), children),
                        ("metrics".into(), metrics),
                    ])
                })
                .collect(),
        );
        let roots = Json::Arr(
            self.graph
                .roots()
                .iter()
                .map(|r| Json::Num(r.index() as f64))
                .collect(),
        );
        Json::Obj(vec![
            ("format".into(), Json::Str("thicket-profile-1".into())),
            ("metadata".into(), metadata),
            ("nodes".into(), nodes),
            ("roots".into(), roots),
        ])
    }

    /// Deserialize from the on-disk JSON document, validating structure.
    pub fn from_json(doc: &Json) -> Result<Profile, ProfileError> {
        let fmt_tag = doc
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| ProfileError::Malformed("missing format tag".into()))?;
        if fmt_tag != "thicket-profile-1" {
            return Err(ProfileError::Malformed(format!(
                "unsupported format {fmt_tag:?}"
            )));
        }
        let nodes = doc
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or_else(|| ProfileError::Malformed("missing nodes array".into()))?;
        let roots = doc
            .get("roots")
            .and_then(Json::as_arr)
            .ok_or_else(|| ProfileError::Malformed("missing roots array".into()))?;
        let n = nodes.len();
        if n == 0 {
            return Err(ProfileError::Malformed(
                "empty call tree (zero nodes)".into(),
            ));
        }

        // Parse node shells first.
        let mut shells = Vec::with_capacity(n);
        for (i, nj) in nodes.iter().enumerate() {
            let frame_obj = nj
                .get("frame")
                .and_then(Json::as_obj)
                .ok_or_else(|| ProfileError::Malformed(format!("node {i}: missing frame")))?;
            let frame = Frame::from_attrs(
                frame_obj
                    .iter()
                    .map(|(k, v)| (k.clone(), json_to_value(v)))
                    .collect::<Vec<_>>(),
            );
            let children = nj
                .get("children")
                .and_then(Json::as_arr)
                .ok_or_else(|| ProfileError::Malformed(format!("node {i}: missing children")))?
                .iter()
                .map(|c| {
                    c.as_i64()
                        .filter(|&v| v >= 0 && (v as usize) < n)
                        .map(|v| v as usize)
                        .ok_or_else(|| {
                            ProfileError::Malformed(format!("node {i}: bad child index"))
                        })
                })
                .collect::<Result<Vec<usize>, _>>()?;
            let ms = nj.get("metrics").and_then(Json::as_obj).ok_or_else(|| {
                ProfileError::Malformed(format!("node {i}: missing metrics object"))
            })?;
            let mut metrics = BTreeMap::new();
            for (k, v) in ms {
                let f = v.as_f64().ok_or_else(|| {
                    ProfileError::Malformed(format!("node {i}: metric {k:?} not numeric"))
                })?;
                if !f.is_finite() {
                    return Err(ProfileError::NonFinite {
                        node: i,
                        metric: k.clone(),
                    });
                }
                metrics.insert(intern(k), f);
            }
            shells.push(Shell {
                frame,
                children,
                metrics,
            });
        }

        let root_idxs: Vec<usize> = roots
            .iter()
            .map(|r| {
                r.as_i64()
                    .filter(|&v| v >= 0 && (v as usize) < n)
                    .map(|v| v as usize)
                    .ok_or_else(|| ProfileError::Malformed("bad root index".into()))
            })
            .collect::<Result<_, _>>()?;
        let metadata = match doc.get("metadata").and_then(Json::as_obj) {
            Some(meta) => meta
                .iter()
                .map(|(k, v)| (k.clone(), json_to_value(v)))
                .collect(),
            None => Vec::new(),
        };
        assemble_profile(shells, &root_idxs, metadata)
    }

    /// Serialize to a string.
    pub fn to_string_pretty(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Parse from a string.
    pub fn parse(text: &str) -> Result<Profile, ProfileError> {
        Profile::from_json(&Json::parse(text)?)
    }

    /// Write the profile to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ProfileError> {
        std::fs::write(path, self.to_string_pretty())?;
        Ok(())
    }

    /// Load a profile from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Profile, ProfileError> {
        let text = std::fs::read_to_string(path)?;
        Profile::parse(&text)
    }
}

/// A parsed-but-unassembled node, shared by the JSON and binary payload
/// decoders so both enforce identical forest-shape validation.
pub(crate) struct Shell {
    pub(crate) frame: Frame,
    pub(crate) children: Vec<usize>,
    pub(crate) metrics: BTreeMap<Arc<str>, f64>,
}

/// Determine which nodes are roots vs children, validate forest shape
/// (root/child exclusivity, reachability, topological parent order),
/// and rebuild through Graph's constructor API in an order that
/// preserves indices (parents must precede children). Child and root
/// indices must already be `< shells.len()`.
pub(crate) fn assemble_profile(
    mut shells: Vec<Shell>,
    root_idxs: &[usize],
    metadata: Vec<(String, Value)>,
) -> Result<Profile, ProfileError> {
    let n = shells.len();
    let mut first_parent: Vec<Option<usize>> = vec![None; n];
    let mut extra_edges: Vec<(usize, usize)> = Vec::new();
    for (p, shell) in shells.iter().enumerate() {
        for &c in &shell.children {
            if first_parent[c].is_none() {
                first_parent[c] = Some(p);
            } else {
                extra_edges.push((p, c));
            }
        }
    }
    for (i, fp) in first_parent.iter().enumerate() {
        let is_root = root_idxs.contains(&i);
        if is_root && fp.is_some() {
            return Err(ProfileError::Malformed(format!(
                "node {i} is both a root and a child"
            )));
        }
        if !is_root && fp.is_none() {
            return Err(ProfileError::Malformed(format!("node {i} is unreachable")));
        }
        if let Some(p) = fp {
            if *p >= i {
                return Err(ProfileError::Malformed(format!(
                    "node {i}: parent {p} does not precede child (non-topological order)"
                )));
            }
        }
    }

    let mut graph = Graph::new();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n);
    for i in 0..n {
        // Move the frame out rather than clone: a frame is a
        // BTreeMap<String, Value>, and this runs once per node on the
        // ingest hot path.
        let frame = std::mem::take(&mut shells[i].frame);
        let id = match first_parent[i] {
            None => graph.add_root(frame),
            Some(p) => graph.add_child(ids[p], frame),
        };
        debug_assert_eq!(id.index(), i);
        ids.push(id);
    }
    for (p, c) in extra_edges {
        graph.add_edge(ids[p], ids[c]);
    }

    let mut profile = Profile::new(graph);
    for (i, shell) in shells.into_iter().enumerate() {
        profile.metrics[i] = shell.metrics;
    }
    profile.metadata = metadata;
    Ok(profile)
}

/// Map a Value into its JSON encoding. Integers beyond 2⁵³ are wrapped as
/// `{"$i": "<decimal>"}` so profile hashes survive the float round trip.
pub(crate) fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => {
            if i.abs() < (1i64 << 53) {
                Json::Num(*i as f64)
            } else {
                Json::Obj(vec![("$i".into(), Json::Str(i.to_string()))])
            }
        }
        Value::Float(f) => {
            if *f == f.trunc() && f.is_finite() {
                // An integral float would parse back as Int; tag it so
                // the dtype (and the profile hash) survives.
                Json::Obj(vec![("$f".into(), Json::Str(format!("{f:?}")))])
            } else {
                Json::Num(*f)
            }
        }
        Value::Str(s) => Json::Str(s.to_string()),
    }
}

/// Inverse of [`value_to_json`].
pub(crate) fn json_to_value(j: &Json) -> Value {
    match j {
        Json::Null => Value::Null,
        Json::Bool(b) => Value::Bool(*b),
        Json::Num(n) => {
            if *n == n.trunc() && n.abs() < 9.0e15 {
                Value::Int(*n as i64)
            } else {
                Value::Float(*n)
            }
        }
        Json::Str(s) => Value::from(s.as_str()),
        Json::Obj(m) => {
            if let [(k, Json::Str(s))] = m.as_slice() {
                if k == "$i" {
                    if let Ok(i) = s.parse::<i64>() {
                        return Value::Int(i);
                    }
                }
                if k == "$f" {
                    if let Ok(f) = s.parse::<f64>() {
                        return Value::Float(f);
                    }
                }
            }
            Value::Null
        }
        Json::Arr(_) => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut g = Graph::new();
        let main = g.add_root(Frame::with_type("MAIN", "function"));
        let foo = g.add_child(main, Frame::named("FOO"));
        let bar = g.add_child(main, Frame::named("BAR"));
        let mut p = Profile::new(g);
        p.set_metadata("cluster", "quartz");
        p.set_metadata("problem size", 1048576i64);
        p.set_metric(main, "time (inc)", 2.0);
        p.set_metric(foo, "time (exc)", 1.5);
        p.set_metric(bar, "time (exc)", 0.5);
        p
    }

    #[test]
    fn metadata_and_metrics() {
        let p = sample();
        assert_eq!(p.metadata("cluster"), Some(&Value::from("quartz")));
        assert_eq!(p.metadata("nope"), None);
        let foo = p.graph().find_by_name("FOO").unwrap();
        assert_eq!(p.metric(foo, "time (exc)"), Some(1.5));
        assert_eq!(p.metric(foo, "nope"), None);
        assert_eq!(
            p.metric_names(),
            vec!["time (exc)".to_string(), "time (inc)".to_string()]
        );
    }

    #[test]
    fn metadata_replacement() {
        let mut p = sample();
        p.set_metadata("cluster", "lassen");
        assert_eq!(p.metadata("cluster"), Some(&Value::from("lassen")));
        assert_eq!(p.metadata_iter().count(), 2);
    }

    #[test]
    fn profile_hash_deterministic_and_sensitive() {
        let a = sample();
        let b = sample();
        assert_eq!(a.profile_hash(), b.profile_hash());
        let mut c = sample();
        c.set_metadata("user", "Jane");
        assert_ne!(a.profile_hash(), c.profile_hash());
    }

    #[test]
    fn json_roundtrip() {
        let p = sample();
        let text = p.to_string_pretty();
        let q = Profile::parse(&text).unwrap();
        assert_eq!(q.graph().len(), 3);
        assert_eq!(q.metadata("problem size"), Some(&Value::Int(1048576)));
        let foo = q.graph().find_by_name("FOO").unwrap();
        assert_eq!(q.metric(foo, "time (exc)"), Some(1.5));
        assert_eq!(q.profile_hash(), p.profile_hash());
        // Structure preserved.
        let main = q.graph().roots()[0];
        assert_eq!(q.graph().node(main).children().len(), 2);
    }

    #[test]
    fn file_roundtrip() {
        let p = sample();
        let dir = std::env::temp_dir().join("thicket-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("p1.json");
        p.save(&path).unwrap();
        let q = Profile::load(&path).unwrap();
        assert_eq!(q.graph().len(), p.graph().len());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn huge_int_metadata_survives() {
        let mut p = sample();
        p.set_metadata("profile", -5810787656424201390i64);
        let q = Profile::parse(&p.to_string_pretty()).unwrap();
        assert_eq!(
            q.metadata("profile"),
            Some(&Value::Int(-5810787656424201390))
        );
    }

    #[test]
    fn malformed_documents_rejected() {
        for bad in [
            r#"{"nodes": [], "roots": []}"#, // no format
            r#"{"format": "other", "nodes": [], "roots": []}"#,
            r#"{"format": "thicket-profile-1", "roots": []}"#, // no nodes
            // Child index out of range.
            r#"{"format": "thicket-profile-1",
                "nodes": [{"frame": {"name": "a"}, "children": [5], "metrics": {}}],
                "roots": [0]}"#,
            // Cycle-ish: node 0 child of itself.
            r#"{"format": "thicket-profile-1",
                "nodes": [{"frame": {"name": "a"}, "children": [0], "metrics": {}}],
                "roots": [0]}"#,
            // Unreachable node.
            r#"{"format": "thicket-profile-1",
                "nodes": [{"frame": {"name": "a"}, "children": [], "metrics": {}},
                          {"frame": {"name": "b"}, "children": [], "metrics": {}}],
                "roots": [0]}"#,
            // Non-numeric metric.
            r#"{"format": "thicket-profile-1",
                "nodes": [{"frame": {"name": "a"}, "children": [], "metrics": {"t": "x"}}],
                "roots": [0]}"#,
        ] {
            assert!(Profile::parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn non_finite_metrics_rejected_with_location() {
        // 1e999 overflows f64 to +inf; the JSON layer accepts it, the
        // profile layer must not.
        let doc = r#"{"format": "thicket-profile-1",
            "nodes": [{"frame": {"name": "a"}, "children": [], "metrics": {}},
                      {"frame": {"name": "b"}, "children": [], "metrics": {"t": 1e999}}],
            "roots": [0, 1]}"#;
        match Profile::parse(doc).unwrap_err() {
            ProfileError::NonFinite { node, metric } => {
                assert_eq!(node, 1);
                assert_eq!(metric, "t");
            }
            other => panic!("expected NonFinite, got {other}"),
        }
    }

    #[test]
    fn empty_call_tree_and_missing_metrics_rejected() {
        let empty = r#"{"format": "thicket-profile-1", "nodes": [], "roots": []}"#;
        assert!(matches!(
            Profile::parse(empty),
            Err(ProfileError::Malformed(m)) if m.contains("empty call tree")
        ));
        let no_metrics = r#"{"format": "thicket-profile-1",
            "nodes": [{"frame": {"name": "a"}, "children": []}],
            "roots": [0]}"#;
        assert!(matches!(
            Profile::parse(no_metrics),
            Err(ProfileError::Malformed(m)) if m.contains("missing metrics")
        ));
    }

    #[test]
    fn in_file_context_wraps_and_unwraps() {
        let inner = ProfileError::Malformed("bad".into());
        let wrapped = inner.in_file("/tmp/p.json");
        assert_eq!(wrapped.path(), Some(Path::new("/tmp/p.json")));
        assert!(matches!(wrapped.root_cause(), ProfileError::Malformed(_)));
        assert!(wrapped.to_string().contains("/tmp/p.json"));
    }

    #[test]
    fn dag_profile_roundtrip() {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("MAIN"));
        let a = g.add_child(main, Frame::named("A"));
        let b = g.add_child(main, Frame::named("B"));
        let shared = g.add_child(a, Frame::named("SHARED"));
        g.add_edge(b, shared);
        let p = Profile::new(g);
        let q = Profile::parse(&p.to_string_pretty()).unwrap();
        let s = q.graph().find_by_name("SHARED").unwrap();
        assert_eq!(q.graph().node(s).parents().len(), 2);
    }
}
