//! A second on-disk profile format: a Caliper-flavoured *text* format.
//!
//! Hatchet reads several tool formats (HPCToolkit, Caliper, …); Thicket
//! inherits its readers. To exercise that multi-reader design, this
//! module implements a line-oriented format next to the JSON one:
//!
//! ```text
//! #thicket-cali 1
//! @ cluster=quartz
//! @ problem size=1048576
//! main                      time (inc)=2.5  visits=1
//! main/solve                time (exc)=1.5
//! main/solve/MPI_Allreduce  time (exc)=0.25
//! ```
//!
//! `@` lines carry metadata (`key=value`, value type inferred); each
//! remaining line is one call-tree node identified by its
//! slash-separated root path, followed by whitespace-separated
//! `metric=value` pairs. Node names containing `/`, `=`, or leading `@`
//! are escaped with `\`.

use crate::profile::{Profile, ProfileError};
use std::path::Path;
use thicket_dataframe::Value;
use thicket_graph::{Frame, Graph, NodeId};

const HEADER: &str = "#thicket-cali 1";

/// Serialize a profile to the text format. Multi-parent (DAG) graphs are
/// rejected — the path-based format can only express trees.
pub fn to_cali_text(profile: &Profile) -> Result<String, ProfileError> {
    let g = profile.graph();
    if !g.is_tree() {
        return Err(ProfileError::Malformed(
            "cali text format cannot express DAGs; use the JSON format".into(),
        ));
    }
    let mut out = String::from(HEADER);
    out.push('\n');
    for (k, v) in profile.metadata_iter() {
        out.push_str(&format!("@ {}={}\n", escape(k), escape(&v.display_cell())));
    }
    for id in g.preorder() {
        let path: Vec<String> = g
            .path_to(id)
            .into_iter()
            .map(|n| escape(g.node(n).name()))
            .collect();
        out.push_str(&path.join("/"));
        for (metric, value) in profile.node_metrics(id) {
            out.push_str(&format!("\t{}={value:?}", escape(metric)));
        }
        out.push('\n');
    }
    Ok(out)
}

/// Parse the text format back into a profile.
pub fn from_cali_text(text: &str) -> Result<Profile, ProfileError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or_default();
    if header.trim() != HEADER {
        return Err(ProfileError::Malformed(format!(
            "bad header {header:?}; expected {HEADER:?}"
        )));
    }
    let mut graph = Graph::new();
    let mut metadata: Vec<(String, Value)> = Vec::new();
    let mut metrics: Vec<(NodeId, String, f64)> = Vec::new();

    for (lineno, raw) in lines.enumerate() {
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| ProfileError::Malformed(format!("line {}: {msg}", lineno + 2));
        if let Some(rest) = line.strip_prefix("@ ") {
            let (k, v) = split_kv(rest).ok_or_else(|| err("metadata needs key=value".into()))?;
            metadata.push((unescape(&k), infer(&unescape(&v))));
            continue;
        }
        // Path, then metric fields, separated by unescaped tabs.
        let fields_vec = split_unescaped_tabs(line);
        let mut fields = fields_vec.iter().filter(|f| !f.is_empty());
        let path_text = fields.next().ok_or_else(|| err("empty node line".into()))?;
        let segments = split_path(path_text.trim());
        if segments.is_empty() {
            return Err(err("empty call path".into()));
        }
        // Walk/create the path.
        let mut cur: Option<NodeId> = None;
        for seg in &segments {
            let frame = Frame::named(unescape(seg));
            let next = match cur {
                None => graph
                    .root_with_frame(&frame)
                    .unwrap_or_else(|| graph.add_root(frame)),
                Some(parent) => graph
                    .child_with_frame(parent, &frame)
                    .unwrap_or_else(|| graph.add_child(parent, frame)),
            };
            cur = Some(next);
        }
        let node = cur.expect("non-empty path");
        for field in fields {
            let (k, v) = split_kv(field.trim())
                .ok_or_else(|| err(format!("bad metric field {field:?}")))?;
            let value: f64 = v
                .parse()
                .map_err(|_| err(format!("metric {k:?} value {v:?} is not numeric")))?;
            metrics.push((node, unescape(&k), value));
        }
    }

    let mut profile = Profile::new(graph);
    for (k, v) in metadata {
        profile.set_metadata(k, v);
    }
    for (node, metric, value) in metrics {
        profile.set_metric(node, metric, value);
    }
    Ok(profile)
}

/// Write the text format to a file.
pub fn save_cali_text(profile: &Profile, path: impl AsRef<Path>) -> Result<(), ProfileError> {
    std::fs::write(path, to_cali_text(profile)?)?;
    Ok(())
}

/// Read the text format from a file.
pub fn load_cali_text(path: impl AsRef<Path>) -> Result<Profile, ProfileError> {
    from_cali_text(&std::fs::read_to_string(path)?)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if matches!(c, '/' | '=' | '\\' | '\t' | '@') {
            out.push('\\');
        }
        out.push(c);
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(next) = chars.next() {
                out.push(next);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Split on the first *unescaped* `=`.
fn split_kv(s: &str) -> Option<(String, String)> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'=' => return Some((s[..i].to_string(), s[i + 1..].to_string())),
            _ => i += 1,
        }
    }
    None
}

/// Split a line on unescaped tabs (escaped tabs stay inside fields).
fn split_unescaped_tabs(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                cur.push('\\');
                if let Some(next) = chars.next() {
                    cur.push(next);
                }
            }
            '\t' => out.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    out.push(cur);
    out
}

/// Split a path on unescaped `/`.
fn split_path(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                cur.push('\\');
                if let Some(next) = chars.next() {
                    cur.push(next);
                }
            }
            '/' => out.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn infer(s: &str) -> Value {
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = s.parse::<f64>() {
        return Value::Float(f);
    }
    match s {
        "true" => Value::Bool(true),
        "false" => Value::Bool(false),
        other => Value::from(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};

    #[test]
    fn roundtrip_simulated_profile() {
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let text = to_cali_text(&p).unwrap();
        assert!(text.starts_with(HEADER));
        let q = from_cali_text(&text).unwrap();
        assert_eq!(q.graph().len(), p.graph().len());
        assert_eq!(q.metadata("cluster"), p.metadata("cluster").cloned().as_ref());
        let a = p.graph().find_by_name("Stream_DOT").unwrap();
        let b = q.graph().find_by_name("Stream_DOT").unwrap();
        assert_eq!(p.metric(a, "time (exc)"), q.metric(b, "time (exc)"));
        // Path structure preserved.
        assert_eq!(
            q.graph().path_to(b).len(),
            p.graph().path_to(a).len()
        );
    }

    #[test]
    fn weird_names_escaped() {
        let mut g = Graph::new();
        let root = g.add_root(Frame::named("a/b=c\\d"));
        g.add_child(root, Frame::named("x@y\tz"));
        let mut p = Profile::new(g);
        p.set_metadata("key=odd", "value/with=specials");
        let root_id = p.graph().roots()[0];
        p.set_metric(root_id, "m=1", 4.5);
        let q = from_cali_text(&to_cali_text(&p).unwrap()).unwrap();
        assert_eq!(q.graph().node(q.graph().roots()[0]).name(), "a/b=c\\d");
        assert!(q.graph().find_by_name("x@y\tz").is_some());
        assert_eq!(
            q.metadata("key=odd"),
            Some(&Value::from("value/with=specials"))
        );
        assert_eq!(q.metric(q.graph().roots()[0], "m=1"), Some(4.5));
    }

    #[test]
    fn dag_rejected() {
        let mut g = Graph::new();
        let r = g.add_root(Frame::named("r"));
        let a = g.add_child(r, Frame::named("a"));
        let b = g.add_child(r, Frame::named("b"));
        let s = g.add_child(a, Frame::named("s"));
        g.add_edge(b, s);
        assert!(to_cali_text(&Profile::new(g)).is_err());
    }

    #[test]
    fn malformed_inputs() {
        assert!(from_cali_text("").is_err());
        assert!(from_cali_text("#wrong header\n").is_err());
        assert!(from_cali_text("#thicket-cali 1\n@ nokv\n").is_err());
        assert!(from_cali_text("#thicket-cali 1\nmain\tbadfield\n").is_err());
        assert!(from_cali_text("#thicket-cali 1\nmain\tt=notnum\n").is_err());
        // Blank lines are fine.
        assert!(from_cali_text("#thicket-cali 1\n\nmain\tt=1.0\n").is_ok());
    }

    #[test]
    fn file_roundtrip_and_thicket_compose() {
        let dir = std::env::temp_dir().join("thicket-calitxt");
        std::fs::create_dir_all(&dir).unwrap();
        let p = simulate_cpu_run(&CpuRunConfig::quartz_default());
        let path = dir.join("run.cali.txt");
        save_cali_text(&p, &path).unwrap();
        let q = load_cali_text(&path).unwrap();
        assert_eq!(q.profile_hash(), p.profile_hash());
        std::fs::remove_file(path).ok();
    }
}
