//! Parallel fan-out over worker threads with deterministic output order.
//!
//! The Figure 13 study alone is 560 profiles; generating ensembles — and
//! assembling their rows into a thicket — is embarrassingly parallel, so
//! this module fans work items out over crossbeam scoped threads while
//! keeping the output order deterministic (result `i` always corresponds
//! to input `i`, regardless of thread count or scheduling).

use crate::profile::Profile;
use crate::rajaperf::{simulate_cpu_run, simulate_gpu_run, CpuRunConfig, GpuRunConfig};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `job` over every item on `threads` workers, preserving order:
/// `out[i] == job(&items[i])` for all `i`. Work is handed out through an
/// atomic cursor (dynamic load balancing — items can be wildly uneven,
/// e.g. 10⁶- vs 10⁸-element simulated runs).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        return items.iter().map(&job).collect();
    }
    let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<&mut Option<R>>> =
        out.iter_mut().map(parking_lot::Mutex::new).collect();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = job(&items[i]);
                **slots[i].lock() = Some(result);
            });
        }
    })
    .expect("worker thread panicked");
    drop(slots);
    out.into_iter().map(|r| r.expect("every slot filled")).collect()
}

/// A sensible worker count for `n` items: the machine's available
/// parallelism, capped by the item count (at least 1).
pub fn default_threads(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

/// Run `job` over every item on `threads` workers, preserving order.
pub fn generate_parallel<T, F>(items: &[T], threads: usize, job: F) -> Vec<Profile>
where
    T: Sync,
    F: Fn(&T) -> Profile + Sync,
{
    parallel_map(items, threads, job)
}

/// Simulate many CPU runs in parallel (order preserved).
pub fn simulate_cpu_ensemble(configs: &[CpuRunConfig], threads: usize) -> Vec<Profile> {
    generate_parallel(configs, threads, simulate_cpu_run)
}

/// Simulate many GPU runs in parallel (order preserved).
pub fn simulate_gpu_ensemble(configs: &[GpuRunConfig], threads: usize) -> Vec<Profile> {
    generate_parallel(configs, threads, simulate_gpu_run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs(n: u64) -> Vec<CpuRunConfig> {
        (0..n)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                cfg
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_order_and_values() {
        let cfgs = configs(12);
        let serial = simulate_cpu_ensemble(&cfgs, 1);
        let parallel = simulate_cpu_ensemble(&cfgs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.profile_hash(), p.profile_hash());
            let ns = s.graph().find_by_name("Stream_DOT").unwrap();
            let np = p.graph().find_by_name("Stream_DOT").unwrap();
            assert_eq!(s.metric(ns, "time (exc)"), p.metric(np, "time (exc)"));
        }
    }

    #[test]
    fn more_threads_than_items() {
        let cfgs = configs(2);
        let out = simulate_cpu_ensemble(&cfgs, 16);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(simulate_cpu_ensemble(&[], 4).is_empty());
    }

    #[test]
    fn parallel_map_is_order_preserving_for_any_result_type() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |x| x * x);
        for threads in [2, 3, 8, 200] {
            assert_eq!(parallel_map(&items, threads, |x| x * x), serial);
        }
        // Heterogeneous result sizes keep their slots too.
        let nested = parallel_map(&items, 4, |x| vec![*x; (*x % 5) as usize]);
        for (i, v) in nested.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
            assert!(v.iter().all(|e| *e == i as u64));
        }
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1_000_000) >= 1);
    }

    #[test]
    fn gpu_ensemble_parallel() {
        let cfgs: Vec<GpuRunConfig> = (0..6)
            .map(|seed| {
                let mut cfg = GpuRunConfig::lassen_default();
                cfg.seed = seed;
                cfg
            })
            .collect();
        let out = simulate_gpu_ensemble(&cfgs, 3);
        assert_eq!(out.len(), 6);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.metadata("seed").unwrap().as_i64(), Some(i as i64));
        }
    }
}
