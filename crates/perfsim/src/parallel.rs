//! Parallel fan-out over worker threads with deterministic output order
//! and panic isolation.
//!
//! The Figure 13 study alone is 560 profiles; generating ensembles — and
//! assembling their rows into a thicket — is embarrassingly parallel, so
//! this module fans work items out over crossbeam scoped threads while
//! keeping the output order deterministic (result `i` always corresponds
//! to input `i`, regardless of thread count or scheduling).
//!
//! Every entry point routes through one panic-capturing core: a job that
//! panics is caught on its worker (`catch_unwind`) and surfaces as a
//! value, never as a cross-thread unwind. That closes the double-panic
//! abort the previous implementation had, where a worker panic unwound
//! through `std::thread::scope` while the caller's `expect` on the
//! result panicked a second time mid-unwind.
//!
//! Three variants share the core:
//!
//! * [`parallel_map`] — infallible jobs. If a job panics anyway, the
//!   panic of the **lowest-indexed** failing item is resumed on the
//!   calling thread (deterministic for any thread count), after all
//!   workers have parked.
//! * [`try_parallel_map`] — fallible jobs. The first failure *in item
//!   order* wins deterministically; remaining work is cancelled through
//!   an atomic flag so a 560-profile ingest does not grind through 500
//!   more profiles after profile 3 is found corrupt.
//! * [`parallel_map_catch`] — fallible jobs, **no cancellation**: every
//!   item runs to completion and the caller receives one
//!   `Result<R, JobFailure<E>>` per item. This is the substrate for
//!   lenient ingest, where per-item diagnostics must be complete and
//!   byte-identical across thread counts.

use crate::profile::Profile;
use crate::rajaperf::{simulate_cpu_run, simulate_gpu_run, CpuRunConfig, GpuRunConfig};
use std::any::Any;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Why one work item failed: its job returned an error, or panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure<E> {
    /// The job returned `Err(E)`.
    Error(E),
    /// The job panicked; the payload's message, extracted on the worker.
    Panic(String),
}

impl<E: fmt::Display> fmt::Display for JobFailure<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobFailure::Error(e) => e.fmt(f),
            JobFailure::Panic(m) => write!(f, "worker panicked: {m}"),
        }
    }
}

/// The deterministic "first" failure of a [`try_parallel_map`] run: the
/// failing item with the lowest input index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError<E> {
    /// Input index of the failing item.
    pub index: usize,
    /// What went wrong.
    pub failure: JobFailure<E>,
}

impl<E: fmt::Display> fmt::Display for JobError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item {}: {}", self.index, self.failure)
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for JobError<E> {}

/// Best-effort human-readable form of a panic payload.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One slot of the shared output: what happened to item `i`.
enum Slot<R, E> {
    Done(R),
    Failed(E),
    Panicked(Box<dyn Any + Send>),
}

/// The shared core: run `job` over every item on `threads` workers,
/// catching panics on the worker. Work is handed out through an atomic
/// cursor (dynamic load balancing — items can be wildly uneven, e.g.
/// 10⁶- vs 10⁸-element simulated runs). When `cancel_on_failure` is set,
/// the first failure any worker *observes* stops further hand-outs;
/// items already picked up still run to completion, which is what makes
/// the lowest-indexed failure deterministic (see [`try_parallel_map`]).
fn run_jobs<T, R, E, F>(
    items: &[T],
    threads: usize,
    cancel_on_failure: bool,
    job: F,
) -> Vec<Slot<R, E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let threads = threads.max(1).min(items.len().max(1));
    let run_one = |item: &T| -> Slot<R, E> {
        match catch_unwind(AssertUnwindSafe(|| job(item))) {
            Ok(Ok(r)) => Slot::Done(r),
            Ok(Err(e)) => Slot::Failed(e),
            Err(payload) => Slot::Panicked(payload),
        }
    };
    if threads == 1 {
        let mut out = Vec::with_capacity(items.len());
        for item in items {
            let slot = run_one(item);
            let failed = !matches!(slot, Slot::Done(_));
            out.push(slot);
            if failed && cancel_on_failure {
                break;
            }
        }
        return out;
    }

    let mut out: Vec<Option<Slot<R, E>>> = (0..items.len()).map(|_| None).collect();
    let next = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let slots: Vec<parking_lot::Mutex<&mut Option<Slot<R, E>>>> =
        out.iter_mut().map(parking_lot::Mutex::new).collect();
    // The closure below never unwinds (the job runs under catch_unwind
    // and slot storage cannot panic), so the scope join cannot observe a
    // panicked child — the `expect` documents an impossibility instead
    // of doubling a real panic.
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                if cancel_on_failure && cancelled.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let slot = run_one(&items[i]);
                if !matches!(slot, Slot::Done(_)) {
                    cancelled.store(true, Ordering::Relaxed);
                }
                **slots[i].lock() = Some(slot);
            });
        }
    })
    .expect("workers never unwind: jobs run under catch_unwind");
    drop(slots);
    // Under cancellation trailing slots may be unfilled; the serial
    // fallback above produces the same shape (a prefix of filled slots).
    out.into_iter().flatten().collect()
}

/// Pick the deterministic first failure out of a slot vector: the failed
/// or panicked item with the lowest input index. `slots` may be shorter
/// than the input under cancellation; indices still line up because the
/// work cursor hands items out in input order.
fn first_failure<R, E>(slots: Vec<Slot<R, E>>) -> Result<Vec<R>, (usize, Slot<R, E>)> {
    // Scan for the minimum failing index first; only if none failed can
    // the slots be unwrapped wholesale.
    let mut failed_at: Option<usize> = None;
    for (i, slot) in slots.iter().enumerate() {
        if !matches!(slot, Slot::Done(_)) {
            failed_at = Some(i);
            break;
        }
    }
    match failed_at {
        None => Ok(slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(r) => r,
                _ => unreachable!("scanned above"),
            })
            .collect()),
        Some(i) => {
            let slot = slots.into_iter().nth(i).expect("index in range");
            Err((i, slot))
        }
    }
}

/// Run a fallible `job` over every item on `threads` workers.
///
/// On success the output preserves order: `out[i] == job(&items[i])`.
/// On failure — a job returning `Err` *or panicking* — the failure of
/// the lowest-indexed failing item is returned, and the remaining
/// hand-outs are cancelled through an atomic flag. The winning failure
/// is deterministic for any thread count: the work cursor hands items
/// out in input order, so by the time any later item has been picked up,
/// every earlier item (including the lowest failing one) has been picked
/// up too and runs to completion.
pub fn try_parallel_map<T, R, E, F>(
    items: &[T],
    threads: usize,
    job: F,
) -> Result<Vec<R>, JobError<E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    first_failure(run_jobs(items, threads, true, job)).map_err(|(index, slot)| JobError {
        index,
        failure: match slot {
            Slot::Failed(e) => JobFailure::Error(e),
            Slot::Panicked(p) => JobFailure::Panic(panic_message(p.as_ref())),
            Slot::Done(_) => unreachable!("first_failure returns failures only"),
        },
    })
}

/// Run a fallible `job` over **every** item — no cancellation — and
/// return one result per item, order-preserving. Panics are captured per
/// item as [`JobFailure::Panic`]. This is the lenient-ingest substrate:
/// the caller sees the complete per-item health picture, identical for
/// any thread count.
pub fn parallel_map_catch<T, R, E, F>(
    items: &[T],
    threads: usize,
    job: F,
) -> Vec<Result<R, JobFailure<E>>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    run_jobs(items, threads, false, job)
        .into_iter()
        .map(|slot| match slot {
            Slot::Done(r) => Ok(r),
            Slot::Failed(e) => Err(JobFailure::Error(e)),
            Slot::Panicked(p) => Err(JobFailure::Panic(panic_message(p.as_ref()))),
        })
        .collect()
}

/// Run an infallible `job` over every item on `threads` workers,
/// preserving order: `out[i] == job(&items[i])` for all `i`.
///
/// A thin wrapper over the fallible core. Should a job panic after all,
/// the panic of the lowest-indexed failing item is resumed on the
/// calling thread with its original payload — one deterministic panic,
/// never a double-panic abort.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, job: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let slots = run_jobs(items, threads, true, |item| {
        Ok::<R, std::convert::Infallible>(job(item))
    });
    match first_failure(slots) {
        Ok(out) => out,
        Err((_, Slot::Panicked(payload))) => resume_unwind(payload),
        Err(_) => unreachable!("Infallible error type"),
    }
}

/// A sensible worker count for `n` items: the machine's available
/// parallelism, capped by the item count (at least 1).
pub fn default_threads(n: usize) -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1))
}

/// A task [`contend`] runs: receives the shared stop flag (set once
/// every driver has finished) and returns its result.
pub type ContendTask<'env, R> = Box<dyn FnOnce(&AtomicBool) -> R + Send + 'env>;

/// One group's results from [`contend`]: per task, its return value or
/// the panic message it died with.
pub type ContendResults<R> = Vec<Result<R, String>>;

/// Run a live-contention scenario: `drivers` (finite work — e.g. an
/// appender committing N generations) race against `followers`
/// (open-ended work — e.g. readers looping until told to stop), all on
/// their own OS threads.
///
/// Every task gets the shared stop flag. Drivers usually ignore it;
/// followers should loop `while !stop.load(Ordering::Relaxed)`. The
/// flag is set (with `Release` ordering) after the last driver joins,
/// then the followers are joined — so followers always observe the
/// complete driver run, and the harness never hangs on an infinite
/// follower loop.
///
/// Panics are contained per task: each result is `Err(message)` if the
/// task panicked, so one reader blowing up surfaces as an assertable
/// failure instead of tearing down the harness mid-scenario.
pub fn contend<'env, R: Send + 'env>(
    drivers: Vec<ContendTask<'env, R>>,
    followers: Vec<ContendTask<'env, R>>,
) -> (ContendResults<R>, ContendResults<R>) {
    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|scope| {
        let follower_handles: Vec<_> = followers
            .into_iter()
            .map(|task| {
                let stop = &stop;
                scope.spawn(move |_| catch_unwind(AssertUnwindSafe(|| task(stop))))
            })
            .collect();
        let driver_handles: Vec<_> = drivers
            .into_iter()
            .map(|task| {
                let stop = &stop;
                scope.spawn(move |_| catch_unwind(AssertUnwindSafe(|| task(stop))))
            })
            .collect();
        let finish = |h: crossbeam::thread::ScopedJoinHandle<'_, Result<R, Box<dyn Any + Send>>>| {
            h.join()
                .expect("task runs under catch_unwind")
                .map_err(|p| panic_message(p.as_ref()))
        };
        let driver_results: Vec<_> = driver_handles.into_iter().map(finish).collect();
        stop.store(true, Ordering::Release);
        let follower_results: Vec<_> = follower_handles.into_iter().map(finish).collect();
        (driver_results, follower_results)
    })
    .expect("tasks run under catch_unwind")
}

/// Run `job` over every item on `threads` workers, preserving order.
pub fn generate_parallel<T, F>(items: &[T], threads: usize, job: F) -> Vec<Profile>
where
    T: Sync,
    F: Fn(&T) -> Profile + Sync,
{
    parallel_map(items, threads, job)
}

/// Simulate many CPU runs in parallel (order preserved).
pub fn simulate_cpu_ensemble(configs: &[CpuRunConfig], threads: usize) -> Vec<Profile> {
    generate_parallel(configs, threads, simulate_cpu_run)
}

/// Simulate many GPU runs in parallel (order preserved).
pub fn simulate_gpu_ensemble(configs: &[GpuRunConfig], threads: usize) -> Vec<Profile> {
    generate_parallel(configs, threads, simulate_gpu_run)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configs(n: u64) -> Vec<CpuRunConfig> {
        (0..n)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                cfg
            })
            .collect()
    }

    #[test]
    fn contend_stops_followers_and_contains_panics() {
        use std::sync::atomic::AtomicU64;
        let driver_sum = AtomicU64::new(0);
        let follower_spins = AtomicU64::new(0);
        let drivers: Vec<ContendTask<'_, u64>> = (0..3u64)
            .map(|i| {
                let sum = &driver_sum;
                Box::new(move |_: &AtomicBool| {
                    sum.fetch_add(i + 1, Ordering::Relaxed);
                    i
                }) as ContendTask<'_, u64>
            })
            .collect();
        let followers: Vec<ContendTask<'_, u64>> = vec![
            Box::new(|stop: &AtomicBool| {
                let mut n = 0;
                while !stop.load(Ordering::Relaxed) {
                    follower_spins.fetch_add(1, Ordering::Relaxed);
                    n += 1;
                    std::thread::yield_now();
                }
                n
            }),
            Box::new(|_: &AtomicBool| panic!("reader exploded")),
        ];
        let (d, f) = contend(drivers, followers);
        assert_eq!(driver_sum.load(Ordering::Relaxed), 6);
        assert!(d.iter().all(|r| r.is_ok()));
        // The looping follower terminated (the harness doesn't hang)...
        assert!(f[0].is_ok());
        // ...and the panicking one surfaced as a message, not an abort.
        assert_eq!(f[1].as_ref().unwrap_err(), "reader exploded");
    }

    #[test]
    fn parallel_matches_serial_order_and_values() {
        let cfgs = configs(12);
        let serial = simulate_cpu_ensemble(&cfgs, 1);
        let parallel = simulate_cpu_ensemble(&cfgs, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.profile_hash(), p.profile_hash());
            let ns = s.graph().find_by_name("Stream_DOT").unwrap();
            let np = p.graph().find_by_name("Stream_DOT").unwrap();
            assert_eq!(s.metric(ns, "time (exc)"), p.metric(np, "time (exc)"));
        }
    }

    #[test]
    fn more_threads_than_items() {
        let cfgs = configs(2);
        let out = simulate_cpu_ensemble(&cfgs, 16);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(simulate_cpu_ensemble(&[], 4).is_empty());
    }

    #[test]
    fn parallel_map_is_order_preserving_for_any_result_type() {
        let items: Vec<u64> = (0..100).collect();
        let serial = parallel_map(&items, 1, |x| x * x);
        for threads in [2, 3, 8, 200] {
            assert_eq!(parallel_map(&items, threads, |x| x * x), serial);
        }
        // Heterogeneous result sizes keep their slots too.
        let nested = parallel_map(&items, 4, |x| vec![*x; (*x % 5) as usize]);
        for (i, v) in nested.iter().enumerate() {
            assert_eq!(v.len(), i % 5);
            assert!(v.iter().all(|e| *e == i as u64));
        }
    }

    #[test]
    fn default_threads_bounds() {
        assert_eq!(default_threads(0), 1);
        assert_eq!(default_threads(1), 1);
        assert!(default_threads(1_000_000) >= 1);
    }

    #[test]
    fn gpu_ensemble_parallel() {
        let cfgs: Vec<GpuRunConfig> = (0..6)
            .map(|seed| {
                let mut cfg = GpuRunConfig::lassen_default();
                cfg.seed = seed;
                cfg
            })
            .collect();
        let out = simulate_gpu_ensemble(&cfgs, 3);
        assert_eq!(out.len(), 6);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.metadata("seed").unwrap().as_i64(), Some(i as i64));
        }
    }

    #[test]
    fn try_parallel_map_success_matches_serial() {
        let items: Vec<u64> = (0..200).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 8] {
            let out = try_parallel_map(&items, threads, |x| Ok::<_, String>(x * 3)).unwrap();
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn try_parallel_map_first_error_is_lowest_index() {
        // Items 37 and 150 both fail; 37 must win for every thread count.
        let items: Vec<u64> = (0..200).collect();
        for threads in [1, 2, 3, 8, 32] {
            let err = try_parallel_map(&items, threads, |x| {
                if *x == 37 || *x == 150 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(*x)
                }
            })
            .unwrap_err();
            assert_eq!(err.index, 37, "threads={threads}");
            assert_eq!(err.failure, JobFailure::Error("bad 37".to_string()));
        }
    }

    #[test]
    fn try_parallel_map_captures_panics_as_errors() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let err = try_parallel_map(&items, threads, |x| {
                if *x == 5 {
                    panic!("poisoned item {x}");
                }
                Ok::<_, String>(*x)
            })
            .unwrap_err();
            assert_eq!(err.index, 5, "threads={threads}");
            match err.failure {
                JobFailure::Panic(msg) => assert!(msg.contains("poisoned item 5"), "{msg}"),
                other => panic!("expected panic failure, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_parallel_map_panic_beats_later_error() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let err = try_parallel_map(&items, threads, |x| match *x {
                3 => panic!("early panic"),
                10 => Err("later error".to_string()),
                _ => Ok(*x),
            })
            .unwrap_err();
            assert_eq!(err.index, 3, "threads={threads}");
            assert!(matches!(err.failure, JobFailure::Panic(_)));
        }
    }

    #[test]
    fn parallel_map_catch_reports_every_item() {
        let items: Vec<u64> = (0..100).collect();
        let expect = |i: u64| match i % 10 {
            3 => Err(JobFailure::Error(format!("err {i}"))),
            7 => Err(JobFailure::Panic(format!("panic {i}"))),
            _ => Ok(i * 2),
        };
        let serial: Vec<_> = items.iter().map(|i| expect(*i)).collect();
        for threads in [1, 2, 8] {
            let out = parallel_map_catch(&items, threads, |i| match i % 10 {
                3 => Err(format!("err {i}")),
                7 => panic!("panic {i}"),
                _ => Ok(i * 2),
            });
            assert_eq!(out, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_resumes_first_panic_without_abort() {
        // A panicking job must surface as exactly one unwind on the
        // calling thread — the lowest-indexed one — not a process abort.
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 2, 8] {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                parallel_map(&items, threads, |x| {
                    if *x == 9 || *x == 40 {
                        panic!("boom {x}");
                    }
                    *x
                })
            }))
            .unwrap_err();
            assert_eq!(panic_message(caught.as_ref()), "boom 9", "threads={threads}");
        }
    }

    #[test]
    fn cancellation_stops_tail_work() {
        // After the failure at item 0 is observed, the cursor stops
        // handing out work: far fewer than all items run.
        let ran = AtomicUsize::new(0);
        let items: Vec<u64> = (0..100_000).collect();
        let err = try_parallel_map(&items, 4, |x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if *x == 0 {
                Err("stop")
            } else {
                std::thread::sleep(std::time::Duration::from_micros(1));
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err.index, 0);
        assert!(
            ran.load(Ordering::Relaxed) < items.len() / 2,
            "cancellation should prevent most of the tail from running ({} ran)",
            ran.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn empty_and_oversubscribed_edge_cases() {
        assert!(try_parallel_map(&[] as &[u64], 8, |_| Ok::<_, ()>(0)).unwrap().is_empty());
        assert!(parallel_map_catch(&[] as &[u64], 8, |_| Ok::<_, ()>(0)).is_empty());
        let two = [1u64, 2];
        assert_eq!(
            try_parallel_map(&two, 64, |x| Ok::<_, ()>(*x)).unwrap(),
            vec![1, 2]
        );
    }
}
