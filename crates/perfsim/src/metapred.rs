//! Typed metadata predicates: the pushdown language shared by the
//! sharded store, the ensemble loaders, and `Thicket`'s loader builder.
//!
//! A [`MetaPred`] names the metadata keys it reads, so an evaluator can
//! fetch *only* those keys — the store's columnar metadata index
//! ([`crate::store`]) decodes exactly the named key blocks and never
//! materializes the rest. Closure predicates (`Fn(&StoreEntry) -> bool`)
//! cannot make that promise, which is why the closure-based selection
//! entry points are deprecated in favour of this AST.
//!
//! Evaluation is total and deterministic: a comparison against a key the
//! profile does not carry is `false` (so [`MetaPred::Not`] of it is
//! `true`), and value comparisons use [`Value`]'s total order (NaN is
//! comparable, `Int`/`Float` compare numerically across types).

use crate::profile::Profile;
use std::collections::BTreeSet;
use std::fmt;
use thicket_dataframe::{PredExpr, PredOp, Value};

/// An ordering comparison inside [`MetaPred::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A typed predicate over profile metadata.
///
/// Built with the constructor helpers ([`MetaPred::eq`],
/// [`MetaPred::lt`], [`MetaPred::is_in`], …) and combined with
/// [`MetaPred::and`]/[`MetaPred::or`]/[`MetaPred::not`]:
///
/// ```
/// use thicket_perfsim::MetaPred;
///
/// // cluster == "quartz" && problem_size >= 1<<20
/// let pred = MetaPred::eq("cluster", "quartz")
///     .and(MetaPred::ge("problem_size", 1i64 << 20));
/// assert_eq!(
///     pred.keys().into_iter().collect::<Vec<_>>(),
///     ["cluster", "problem_size"]
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum MetaPred {
    /// Matches every profile (the no-filter neutral element).
    True,
    /// Key present and equal to the value (`Int`/`Float` compare
    /// numerically).
    Eq(String, Value),
    /// Key present and ordered against the value. Only like kinds are
    /// comparable (numeric with numeric, string with string, bool with
    /// bool); a cross-kind comparison is `false`.
    Cmp(String, CmpOp, Value),
    /// Key present and equal to any listed value.
    In(String, Vec<Value>),
    /// Every branch matches (empty ⇒ `true`).
    And(Vec<MetaPred>),
    /// Some branch matches (empty ⇒ `false`).
    Or(Vec<MetaPred>),
    /// The inner predicate does not match.
    Not(Box<MetaPred>),
}

impl MetaPred {
    /// `key == value`.
    pub fn eq(key: impl Into<String>, value: impl Into<Value>) -> MetaPred {
        MetaPred::Eq(key.into(), value.into())
    }

    /// `key < value`.
    pub fn lt(key: impl Into<String>, value: impl Into<Value>) -> MetaPred {
        MetaPred::Cmp(key.into(), CmpOp::Lt, value.into())
    }

    /// `key <= value`.
    pub fn le(key: impl Into<String>, value: impl Into<Value>) -> MetaPred {
        MetaPred::Cmp(key.into(), CmpOp::Le, value.into())
    }

    /// `key > value`.
    pub fn gt(key: impl Into<String>, value: impl Into<Value>) -> MetaPred {
        MetaPred::Cmp(key.into(), CmpOp::Gt, value.into())
    }

    /// `key >= value`.
    pub fn ge(key: impl Into<String>, value: impl Into<Value>) -> MetaPred {
        MetaPred::Cmp(key.into(), CmpOp::Ge, value.into())
    }

    /// `key ∈ values`.
    pub fn is_in(
        key: impl Into<String>,
        values: impl IntoIterator<Item = impl Into<Value>>,
    ) -> MetaPred {
        MetaPred::In(key.into(), values.into_iter().map(Into::into).collect())
    }

    /// Conjunction (flattens nested [`MetaPred::And`]s).
    pub fn and(self, other: MetaPred) -> MetaPred {
        match (self, other) {
            (MetaPred::True, b) => b,
            (a, MetaPred::True) => a,
            (MetaPred::And(mut v), MetaPred::And(w)) => {
                v.extend(w);
                MetaPred::And(v)
            }
            (MetaPred::And(mut v), b) => {
                v.push(b);
                MetaPred::And(v)
            }
            (a, b) => MetaPred::And(vec![a, b]),
        }
    }

    /// Disjunction (flattens nested [`MetaPred::Or`]s).
    pub fn or(self, other: MetaPred) -> MetaPred {
        match (self, other) {
            (MetaPred::Or(mut v), MetaPred::Or(w)) => {
                v.extend(w);
                MetaPred::Or(v)
            }
            (MetaPred::Or(mut v), b) => {
                v.push(b);
                MetaPred::Or(v)
            }
            (a, b) => MetaPred::Or(vec![a, b]),
        }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> MetaPred {
        MetaPred::Not(Box::new(self))
    }

    /// The metadata keys this predicate reads, deduplicated and sorted —
    /// the exact set of columnar blocks a pushdown evaluator must
    /// decode.
    pub fn keys(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        self.collect_keys(&mut out);
        out
    }

    fn collect_keys<'a>(&'a self, out: &mut BTreeSet<&'a str>) {
        match self {
            MetaPred::True => {}
            MetaPred::Eq(k, _) | MetaPred::Cmp(k, _, _) | MetaPred::In(k, _) => {
                out.insert(k.as_str());
            }
            MetaPred::And(v) | MetaPred::Or(v) => {
                for p in v {
                    p.collect_keys(out);
                }
            }
            MetaPred::Not(p) => p.collect_keys(out),
        }
    }

    /// Evaluate against any key → value lookup. A `None` lookup (key
    /// absent) makes `Eq`/`Cmp`/`In` `false`.
    pub fn eval_with<'a>(&self, lookup: &mut impl FnMut(&str) -> Option<&'a Value>) -> bool {
        match self {
            MetaPred::True => true,
            MetaPred::Eq(k, want) => lookup(k).is_some_and(|v| v == want),
            MetaPred::Cmp(k, op, want) => lookup(k).is_some_and(|v| cmp_matches(v, *op, want)),
            MetaPred::In(k, set) => lookup(k).is_some_and(|v| set.iter().any(|w| v == w)),
            MetaPred::And(branches) => branches.iter().all(|p| p.eval_with(lookup)),
            MetaPred::Or(branches) => branches.iter().any(|p| p.eval_with(lookup)),
            MetaPred::Not(p) => !p.eval_with(lookup),
        }
    }

    /// Evaluate against an in-memory profile's metadata.
    pub fn matches_profile(&self, profile: &Profile) -> bool {
        self.eval_with(&mut |key| profile.metadata(key))
    }

    /// Compile into the unified predicate engine's [`PredExpr`] AST.
    ///
    /// The mapping is exact: both sides share missing-key-is-false,
    /// `Value`-equality `Eq`, kind-guarded ordering, and the
    /// `And([]) == true` / `Or([]) == false` conventions, so
    /// `p.matches_profile(x) == p.to_expr().eval_lookup(...)` for every
    /// predicate and profile (proptested in `tests/store_props.rs`).
    pub fn to_expr(&self) -> PredExpr {
        match self {
            MetaPred::True => PredExpr::True,
            MetaPred::Eq(k, v) => PredExpr::Cmp {
                field: k.clone(),
                op: PredOp::Eq,
                value: v.clone(),
            },
            MetaPred::Cmp(k, op, v) => PredExpr::Cmp {
                field: k.clone(),
                op: match op {
                    CmpOp::Lt => PredOp::Lt,
                    CmpOp::Le => PredOp::Le,
                    CmpOp::Gt => PredOp::Gt,
                    CmpOp::Ge => PredOp::Ge,
                },
                value: v.clone(),
            },
            MetaPred::In(k, vs) => PredExpr::In {
                field: k.clone(),
                values: vs.clone(),
            },
            MetaPred::And(v) => PredExpr::And(v.iter().map(MetaPred::to_expr).collect()),
            MetaPred::Or(v) => PredExpr::Or(v.iter().map(MetaPred::to_expr).collect()),
            MetaPred::Not(p) => PredExpr::Not(Box::new(p.to_expr())),
        }
    }
}

/// [`MetaPred::to_expr`] as a conversion, so APIs can take
/// `impl Into<PredExpr>` and accept either predicate shape.
impl From<MetaPred> for PredExpr {
    fn from(pred: MetaPred) -> PredExpr {
        pred.to_expr()
    }
}

/// Comparable kinds only: numeric with numeric, string with string,
/// bool with bool. Everything else (including `Null`) is incomparable
/// and yields `false`.
fn cmp_matches(have: &Value, op: CmpOp, want: &Value) -> bool {
    let comparable = matches!(
        (have, want),
        (
            Value::Int(_) | Value::Float(_),
            Value::Int(_) | Value::Float(_)
        ) | (Value::Str(_), Value::Str(_))
            | (Value::Bool(_), Value::Bool(_))
    );
    if !comparable {
        return false;
    }
    let ord = have.cmp(want);
    match op {
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
    }
}

impl fmt::Display for MetaPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaPred::True => f.write_str("true"),
            MetaPred::Eq(k, v) => write!(f, "{k} == {v}"),
            MetaPred::Cmp(k, op, v) => write!(f, "{k} {op} {v}"),
            MetaPred::In(k, vs) => {
                write!(f, "{k} in [")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            MetaPred::And(v) => join(f, v, " && "),
            MetaPred::Or(v) => join(f, v, " || "),
            MetaPred::Not(p) => write!(f, "!({p})"),
        }
    }
}

fn join(f: &mut fmt::Formatter<'_>, preds: &[MetaPred], sep: &str) -> fmt::Result {
    f.write_str("(")?;
    for (i, p) in preds.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{p}")?;
    }
    f.write_str(")")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lookup<'a>(pairs: &'a [(&'a str, Value)]) -> impl FnMut(&str) -> Option<&'a Value> + 'a {
        move |k| pairs.iter().find(|(key, _)| *key == k).map(|(_, v)| v)
    }

    #[test]
    fn missing_key_is_false_and_not_flips_it() {
        let meta = [("cluster".to_string(), Value::from("quartz"))];
        let pairs: Vec<(&str, Value)> = meta.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let eq = MetaPred::eq("nope", 1i64);
        assert!(!eq.eval_with(&mut lookup(&pairs)));
        assert!(eq.not().eval_with(&mut lookup(&pairs)));
        assert!(!MetaPred::lt("nope", 1i64).eval_with(&mut lookup(&pairs)));
    }

    #[test]
    fn numeric_promotion_and_kind_guard() {
        let pairs = [("n", Value::Int(4)), ("s", Value::from("abc"))];
        assert!(MetaPred::eq("n", 4.0).eval_with(&mut lookup(&pairs)));
        assert!(MetaPred::lt("n", 4.5).eval_with(&mut lookup(&pairs)));
        // Cross-kind comparison is false, not rank-ordered.
        assert!(!MetaPred::gt("s", 0i64).eval_with(&mut lookup(&pairs)));
        assert!(!MetaPred::lt("s", 0i64).eval_with(&mut lookup(&pairs)));
        assert!(MetaPred::ge("s", "abc").eval_with(&mut lookup(&pairs)));
    }

    #[test]
    fn combinators_flatten_and_short_circuit_truth_tables() {
        let pairs = [("a", Value::Int(1)), ("b", Value::Int(2))];
        let p = MetaPred::eq("a", 1i64)
            .and(MetaPred::eq("b", 2i64))
            .and(MetaPred::eq("a", 1i64));
        assert!(matches!(&p, MetaPred::And(v) if v.len() == 3));
        assert!(p.eval_with(&mut lookup(&pairs)));
        let q = MetaPred::eq("a", 9i64).or(MetaPred::is_in("b", [1i64, 2]));
        assert!(q.eval_with(&mut lookup(&pairs)));
        assert!(MetaPred::And(vec![]).eval_with(&mut lookup(&pairs)));
        assert!(!MetaPred::Or(vec![]).eval_with(&mut lookup(&pairs)));
        // True is the and-neutral element.
        assert_eq!(MetaPred::True.and(MetaPred::eq("a", 1i64)), MetaPred::eq("a", 1i64));
    }

    #[test]
    fn keys_are_deduplicated_and_sorted() {
        let p = MetaPred::eq("b", 1i64)
            .and(MetaPred::lt("a", 2i64))
            .and(MetaPred::is_in("b", [3i64]).not());
        assert_eq!(p.keys().into_iter().collect::<Vec<_>>(), ["a", "b"]);
        assert!(MetaPred::True.keys().is_empty());
    }

    #[test]
    fn display_round_trip_is_readable() {
        let p = MetaPred::eq("cluster", "quartz")
            .and(MetaPred::ge("size", 8i64).or(MetaPred::lt("size", 2i64)));
        assert_eq!(
            p.to_string(),
            "(cluster == quartz && (size >= 8 || size < 2))"
        );
    }

    #[test]
    fn matches_profile_reads_profile_metadata() {
        use thicket_graph::{Frame, Graph};
        let mut g = Graph::new();
        g.add_root(Frame::named("main"));
        let mut p = Profile::new(g);
        p.set_metadata("cluster", "quartz");
        p.set_metadata("seed", 7i64);
        assert!(MetaPred::eq("cluster", "quartz").matches_profile(&p));
        assert!(MetaPred::le("seed", 7i64).matches_profile(&p));
        assert!(!MetaPred::eq("seed", 8i64).matches_profile(&p));
    }
}
