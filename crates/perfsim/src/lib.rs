//! # thicket-perfsim
//!
//! The measurement environment for the Thicket reproduction: everything
//! "left of" the thicket object in the paper's Figure 1 workflow.
//!
//! The paper's studies ran the RAJA Performance Suite (Caliper + Nsight
//! Compute profiles on the Quartz and Lassen clusters) and the MARBL
//! multi-physics code (RZTopaz and AWS ParallelCluster). None of those is
//! available here, so this crate provides calibrated synthetic
//! equivalents plus a real-execution path:
//!
//! * [`profile::Profile`] — the call-tree profile data model with a
//!   self-contained JSON on-disk format ([`json`]);
//! * [`collector::Collector`] — a Caliper-like region-annotation API that
//!   times real code;
//! * [`engine`] — actual data-parallel Stream kernels on crossbeam
//!   threads, measured through the collector;
//! * [`machine`] — roofline machine models of the paper's clusters;
//! * [`rajaperf`] — the RAJA Performance Suite simulator (CPU variants
//!   with top-down metrics, CUDA variant with NCU-style metrics);
//! * [`marbl`] — the MARBL strong-scaling ensemble generator;
//! * [`noise`] — seeded measurement noise.

#![warn(missing_docs)]

pub mod backoff;
pub mod binprofile;
pub mod calitxt;
pub mod collector;
pub mod engine;
pub mod ensemble;
pub mod faults;
pub mod ingest;
pub mod json;
pub mod machine;
pub mod marbl;
pub mod metapred;
pub mod noise;
pub mod parallel;
pub mod profile;
pub mod rajaperf;
pub mod store;
pub mod topdown;
pub mod trace;

pub use binprofile::{decode_profile, encode_profile, PROFILE_MAGIC};
pub use calitxt::{from_cali_text, load_cali_text, save_cali_text, to_cali_text};
pub use collector::Collector;
pub use ensemble::{load_dir, save_ensemble};
pub use faults::{inject, inject_all, ChaosOp, ChaosSchedule, FaultKind};
pub use ingest::{DiagKind, Diagnostic, FilterPlan, IngestReport, Strictness};
pub use json::Json;
pub use parallel::{
    contend, default_threads, parallel_map, parallel_map_catch, simulate_cpu_ensemble,
    simulate_gpu_ensemble, try_parallel_map, ContendResults, ContendTask, JobError, JobFailure,
};
pub use machine::{Compiler, CpuSpec, GpuSpec, NetworkSpec};
pub use marbl::{marbl_ensemble, simulate_marbl_run, MarblCluster, MarblConfig};
pub use noise::Noise;
pub use metapred::{CmpOp, MetaPred};
pub use profile::{Profile, ProfileError};
pub use backoff::Backoff;
pub use store::{
    crc32c, AppendMode, CompactReport, FsckReport, Manifest, ManifestVersion, MetaBlock,
    RecoverReport, Snapshot, Store, StoreEntry, StoreError, StoreOptions, StoreReader,
    WriteReport,
};
pub use rajaperf::{
    simulate_cpu_run, simulate_gpu_run, suite, CpuRunConfig, GpuRunConfig, KernelSpec, Variant,
};
pub use topdown::{top_down, TopDown};
pub use trace::{
    emit as emit_trace, emit_to_path as emit_trace_to_path, TraceConfig, TraceError, TraceEvent,
    TraceEventKind, TraceReader, TraceWriter,
};
