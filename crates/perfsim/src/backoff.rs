//! Seedable, jittered exponential backoff for lock and lease
//! contention.
//!
//! Every writer that loses a race on the store's commit lock has to
//! decide how long to wait before trying again. A fixed delay turns N
//! contenders into a convoy (they all wake together and collide again);
//! pure exponential growth without jitter does the same thing one
//! octave down. [`Backoff`] implements *equal jitter*: attempt `k`
//! sleeps a uniformly-random duration in `[slot/2, slot]` where
//! `slot = min(cap, base · 2^k)` — half the slot is guaranteed
//! progress-spacing, the other half decorrelates the contenders.
//!
//! The jitter source is a seeded xorshift64* generator, so a given seed
//! always produces the same delay sequence: contention tests are
//! reproducible, and callers that want per-contender decorrelation mix
//! a per-contender token into the seed.
//!
//! Retry loops that answer to a *request budget* (the service client
//! retrying `Overloaded`, a caller with an end-to-end deadline) use
//! [`Backoff::with_deadline`]: every delay is clamped to the remaining
//! budget and the iterator ends — returns `None` — once the budget is
//! spent, so the total sleep across all retries can never exceed the
//! deadline.

use std::time::Duration;

/// An iterator of jittered, exponentially-growing delays.
///
/// See the module docs for the delay law. By default the iterator never
/// ends (`next` always returns `Some`); callers bound it with their own
/// attempt budget — or with [`Backoff::with_deadline`], which makes the
/// iterator finite: delays clamp to the remaining budget and `next`
/// returns `None` once it is spent.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    state: u64,
    /// Remaining sleep budget; `None` = unbounded (the default).
    budget: Option<Duration>,
}

impl Backoff {
    /// A backoff starting at `base`, doubling each attempt, clamped to
    /// `cap`, jittered by a generator seeded with `seed`. Any seed is
    /// valid (including 0 — it is mixed before use).
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base,
            cap,
            attempt: 0,
            // SplitMix64-style finalizer: spreads low-entropy seeds
            // (0, 1, small counters) over the whole state space, and
            // guarantees a non-zero xorshift state.
            state: {
                let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                (z ^ (z >> 31)) | 1
            },
            budget: None,
        }
    }

    /// Bound the *total* sleep this backoff will ever hand out by
    /// `deadline`: each delay is clamped to the remaining budget and
    /// deducted from it, and once the budget hits zero the iterator
    /// ends (`next` returns `None`; [`Backoff::next_delay`] returns
    /// `Duration::ZERO`). A retry loop driven by the iterator therefore
    /// respects the caller's request budget instead of overshooting it
    /// on the last sleep.
    pub fn with_deadline(mut self, deadline: Duration) -> Backoff {
        self.budget = Some(deadline);
        self
    }

    /// Remaining sleep budget, or `None` for an unbounded backoff.
    pub fn remaining(&self) -> Option<Duration> {
        self.budget
    }

    /// How many delays have been handed out so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The un-jittered slot for attempt `k`: `min(cap, base · 2^k)`.
    fn slot(&self, k: u32) -> Duration {
        let base = self.base.as_nanos() as u64;
        let grown = if k >= 63 {
            u64::MAX
        } else {
            base.saturating_mul(1u64 << k)
        };
        Duration::from_nanos(grown).min(self.cap)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: small, fast, and plenty for jitter.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// The next delay: uniform in `[slot/2, slot]` for the current
    /// attempt, then the attempt counter advances. Under
    /// [`Backoff::with_deadline`] the delay is clamped to (and deducted
    /// from) the remaining budget; an exhausted budget yields
    /// `Duration::ZERO` forever — use the iterator form to observe
    /// exhaustion as `None`.
    pub fn next_delay(&mut self) -> Duration {
        let slot = self.slot(self.attempt).as_nanos() as u64;
        self.attempt = self.attempt.saturating_add(1);
        let half = slot / 2;
        let jitter = if half == 0 {
            0
        } else {
            self.next_u64() % (slot - half + 1)
        };
        let raw = Duration::from_nanos(half + jitter);
        match &mut self.budget {
            None => raw,
            Some(rem) => {
                let clamped = raw.min(*rem);
                *rem -= clamped;
                clamped
            }
        }
    }
}

impl Iterator for Backoff {
    type Item = Duration;

    fn next(&mut self) -> Option<Duration> {
        if self.budget == Some(Duration::ZERO) {
            return None;
        }
        Some(self.next_delay())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_sequence() {
        let a: Vec<Duration> = Backoff::new(
            Duration::from_micros(100),
            Duration::from_millis(50),
            42,
        )
        .take(20)
        .collect();
        let b: Vec<Duration> = Backoff::new(
            Duration::from_micros(100),
            Duration::from_millis(50),
            42,
        )
        .take(20)
        .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_decorrelate() {
        let a: Vec<Duration> = Backoff::new(
            Duration::from_secs(1),
            Duration::from_secs(1 << 20),
            1,
        )
        .take(16)
        .collect();
        let b: Vec<Duration> = Backoff::new(
            Duration::from_secs(1),
            Duration::from_secs(1 << 20),
            2,
        )
        .take(16)
        .collect();
        assert_ne!(a, b, "two seeds produced identical jitter");
    }

    proptest! {
        /// Every delay of every attempt lies in `[slot/2, slot]` where
        /// `slot = min(cap, base · 2^attempt)` — the equal-jitter law —
        /// for arbitrary bases, caps, and seeds. In particular no delay
        /// ever exceeds the cap and the sequence never panics on
        /// overflow-prone inputs (huge bases, attempt ≥ 63).
        #[test]
        fn delays_obey_the_equal_jitter_law(
            base_ns in 0u64..2_000_000_000,
            cap_ns in 0u64..10_000_000_000,
            seed in any::<u64>(),
        ) {
            let base = Duration::from_nanos(base_ns);
            let cap = Duration::from_nanos(cap_ns);
            let mut backoff = Backoff::new(base, cap, seed);
            for attempt in 0u32..70 {
                let slot = if attempt >= 63 {
                    cap.min(Duration::from_nanos(u64::MAX))
                } else {
                    cap.min(Duration::from_nanos(
                        base_ns.saturating_mul(1u64 << attempt),
                    ))
                };
                let d = backoff.next_delay();
                prop_assert!(d <= slot, "attempt {attempt}: {d:?} > slot {slot:?}");
                prop_assert!(
                    d.as_nanos() >= slot.as_nanos() / 2,
                    "attempt {attempt}: {d:?} below half-slot of {slot:?}"
                );
            }
        }

        /// Under `with_deadline` the *total* sleep across the whole
        /// (now finite) iterator never exceeds the deadline, for
        /// arbitrary bases, caps, budgets, and seeds — the client-retry
        /// budget law. The iterator also terminates: every non-zero
        /// delay eats budget, and exponential growth guarantees
        /// non-zero delays for any non-zero base.
        #[test]
        fn deadline_bounds_total_sleep(
            base_ns in 1u64..2_000_000_000,
            cap_ns in 1u64..10_000_000_000,
            budget_ns in 0u64..30_000_000_000,
            seed in any::<u64>(),
        ) {
            let deadline = Duration::from_nanos(budget_ns);
            let backoff = Backoff::new(
                Duration::from_nanos(base_ns),
                Duration::from_nanos(cap_ns),
                seed,
            )
            .with_deadline(deadline);
            let mut total = Duration::ZERO;
            let mut ended = false;
            // Way more than enough iterations: each is at least
            // base/2 ns once the slot is non-zero.
            let mut it = backoff;
            for _ in 0..100_000 {
                match it.next() {
                    Some(d) => total += d,
                    None => {
                        ended = true;
                        break;
                    }
                }
            }
            prop_assert!(ended, "budgeted backoff never exhausted");
            prop_assert!(
                total <= deadline,
                "slept {total:?} past deadline {deadline:?}"
            );
            // Exhaustion is sticky: no delay is ever handed out again.
            prop_assert_eq!(it.next(), None);
            prop_assert_eq!(it.next_delay(), Duration::ZERO);
        }

        /// A budgeted backoff hands out the same delays as an
        /// unbudgeted one with the same seed, until the clamp bites —
        /// the deadline only ever *shortens* the tail.
        #[test]
        fn deadline_prefix_matches_unbounded(seed in any::<u64>()) {
            let base = Duration::from_micros(50);
            let cap = Duration::from_millis(10);
            let bound: Vec<Duration> = Backoff::new(base, cap, seed)
                .with_deadline(Duration::from_millis(20))
                .collect();
            prop_assert!(!bound.is_empty());
            let free: Vec<Duration> =
                Backoff::new(base, cap, seed).take(bound.len()).collect();
            for (i, d) in bound.iter().enumerate().take(bound.len() - 1) {
                prop_assert_eq!(*d, free[i], "delay {i} diverged before the clamp");
            }
            prop_assert!(*bound.last().unwrap() <= free[bound.len() - 1]);
        }

        /// The iterator protocol matches `next_delay` exactly.
        #[test]
        fn iterator_is_next_delay(seed in any::<u64>()) {
            let base = Duration::from_micros(10);
            let cap = Duration::from_millis(5);
            let by_iter: Vec<Duration> =
                Backoff::new(base, cap, seed).take(10).collect();
            let mut manual = Backoff::new(base, cap, seed);
            let by_call: Vec<Duration> =
                (0..10).map(|_| manual.next_delay()).collect();
            prop_assert_eq!(by_iter, by_call);
        }
    }
}
