//! Crash-safe sharded ensemble store: the indexed on-disk layer beyond
//! the loose-JSON-directory loader in [`crate::ensemble`].
//!
//! Profiles are packed into fixed-size **shards**, each record framed as
//! `[u32 len][u32 crc32c(payload)][payload]`, and committed under a
//! generation-numbered **manifest** (`MANIFEST-<gen>`, written via
//! temp-file + rename). The v2 manifest carries per-shard digests, the
//! per-profile byte ranges, and a **columnar metadata index** — one
//! [`MetaBlock`] per key (presence mask + lazily-parsed values) — so
//! [`StoreReader::select`] over a typed [`MetaPred`] decodes only the
//! keys the predicate names and [`StoreReader::load_matching`] skips
//! whole shards the predicate excludes without even opening them.
//! Readers auto-detect v1 (row-metadata) manifests; [`Store::append`]
//! commits new profiles as a new generation that reuses existing
//! shards, and [`Store::compact`] re-packs fragmented or salvaged
//! shards (doubling as the v1/v2 → v3 migrator).
//!
//! The v3 format keeps the v2 manifest body but switches record
//! payloads from JSON documents to the `TKP3` binary profile encoding
//! ([`crate::binprofile`]): name-table-interned strings plus columnar
//! metric arrays, decoded by a bounds-checked cursor instead of a parse
//! tree. Payload encoding is detected per record (binary payloads lead
//! with the `TKP3` magic, JSON with `{`), so shards written by
//! different format generations — e.g. a v3 append reusing v2 shards —
//! stay readable record by record.
//!
//! ## Commit protocol
//!
//! 1. New shard files are written under names unique to the new
//!    generation (`shard-<gen>-<idx>.tks`). They are invisible to
//!    readers until a manifest references them, so a crash mid-write
//!    leaves only an orphan.
//! 2. The manifest is written to a dot-temp file, synced, then renamed
//!    to `MANIFEST-<gen>` — the atomic commit point.
//! 3. Only after the rename are generations older than the retention
//!    window garbage-collected; the previous generation stays readable
//!    until the new one is durable.
//!
//! Every writer crash point is enumerable and injectable
//! ([`StoreOptions::crash_after`]); the crash-point matrix test aborts
//! the writer at each one and asserts [`Store::recover`] always yields
//! exactly one complete generation — never a mix.
//!
//! ## Verification and recovery
//!
//! [`Store::fsck`] deep-verifies every generation (manifest self-CRC,
//! shard digests, per-record CRCs) and classifies what it finds into the
//! same typed [`DiagKind`]s the lenient ingest path uses
//! ([`DiagKind::TornShard`], [`DiagKind::ChecksumMismatch`],
//! [`DiagKind::StaleManifest`]). [`Store::recover`] rolls the store back
//! to the newest fully-verifiable generation, or — when no generation
//! verifies — salvages every intact record into a fresh generation.

use crate::ingest::{DiagKind, Diagnostic, IngestReport};
use crate::json::Json;
use crate::metapred::MetaPred;
use crate::parallel::{parallel_map_catch, JobFailure};
use crate::profile::{json_to_value, value_to_json, Profile, ProfileError};
use std::cell::{Cell, OnceCell};
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::io::{self, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use thicket_dataframe::{BoundSource, PredExpr, Value};

/// Magic prefix of every shard file.
pub const SHARD_MAGIC: &[u8; 4] = b"TKS1";
/// Magic prefix of every manifest file (followed by 8 hex CRC chars).
pub const MANIFEST_MAGIC: &[u8; 4] = b"TKM1";
/// Format tag of a v1 manifest body (per-profile metadata rows).
pub const MANIFEST_FORMAT: &str = "thicket-store-1";
/// Format tag of a v2 manifest body (columnar metadata index).
pub const MANIFEST_FORMAT_V2: &str = "thicket-store-2";
/// Format tag of a v3 manifest body (columnar metadata index + binary
/// `TKP3` record payloads).
pub const MANIFEST_FORMAT_V3: &str = "thicket-store-3";

/// Bytes of framing ahead of every record payload: `[u32 len][u32 crc]`.
/// Derived from the frame layout so reader accounting, writer
/// placement, and the salvage walk can never drift apart.
pub const RECORD_HEADER_BYTES: usize = size_of::<u32>() + size_of::<u32>();

/// Which on-disk manifest format a writer emits. Readers auto-detect
/// the version from the body's format tag; [`Store::compact`] migrates
/// older stores to the newest format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ManifestVersion {
    /// Row-oriented metadata: every [`StoreEntry`] carries its full
    /// `Vec<(String, Value)>`.
    V1,
    /// Columnar metadata index: one [`MetaBlock`] per key (presence
    /// mask + lazily-parsed value block), entries carry no metadata.
    V2,
    /// v2 manifest body, but record payloads use the binary `TKP3`
    /// profile encoding ([`crate::binprofile`]) instead of JSON.
    #[default]
    V3,
}

impl ManifestVersion {
    /// Does this version index metadata columnarly (v2 and later)?
    pub fn columnar(self) -> bool {
        !matches!(self, ManifestVersion::V1)
    }
}

// ---------------------------------------------------------------------
// CRC32C (Castagnoli), table-driven software implementation.
// ---------------------------------------------------------------------

const fn crc32c_table() -> [u32; 256] {
    // Reflected Castagnoli polynomial.
    const POLY: u32 = 0x82f6_3b78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32C_TABLE: [u32; 256] = crc32c_table();

/// Eight lookup tables for slice-by-8: `TABLES[k][b]` advances a CRC
/// whose byte `b` still has `k` more input bytes after it in the
/// current 8-byte chunk. `TABLES[0]` is the classic byte-at-a-time
/// table.
const fn crc32c_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    t[0] = crc32c_table();
    let mut i = 0;
    while i < 256 {
        let mut crc = t[0][i];
        let mut k = 1;
        while k < 8 {
            crc = (crc >> 8) ^ t[0][(crc & 0xff) as usize];
            t[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    t
}

static CRC32C_TABLES: [[u32; 256]; 8] = crc32c_tables();

/// CRC-32C (Castagnoli) of `bytes` — the checksum guarding shard
/// records and manifest bodies. Catches any single-bit flip.
///
/// Slice-by-8: each iteration folds eight input bytes through eight
/// precomputed tables, ~5× the throughput of the byte-at-a-time loop
/// this replaced. Every record load and fsck pass runs through here,
/// so CRC throughput is directly on the ingest hot path.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let t = &CRC32C_TABLES;
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32C_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------
// Errors, options, reports.
// ---------------------------------------------------------------------

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// Structural corruption that the requested operation cannot work
    /// around (recover can usually do better — see [`Store::recover`]).
    Corrupt(String),
    /// No verifiable generation exists in the directory.
    NoGeneration(String),
    /// A profile failed to (de)serialize.
    Profile(Box<ProfileError>),
    /// The crash-point harness aborted the writer (fault injection
    /// only; never produced by a real write).
    InjectedCrash {
        /// Which enumerated crash point fired.
        point: usize,
        /// The writer step the point models.
        label: &'static str,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O: {e}"),
            StoreError::Corrupt(m) => write!(f, "store corrupt: {m}"),
            StoreError::NoGeneration(m) => write!(f, "no usable generation: {m}"),
            StoreError::Profile(e) => write!(f, "store profile: {e}"),
            StoreError::InjectedCrash { point, label } => {
                write!(f, "injected crash at point {point} ({label})")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ProfileError> for StoreError {
    fn from(e: ProfileError) -> Self {
        StoreError::Profile(Box::new(e))
    }
}

/// Writer knobs.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Target payload bytes per shard; a shard closes once it holds at
    /// least this many payload bytes (every shard holds ≥ 1 record).
    pub shard_bytes: usize,
    /// How many generations *before* the new one to retain after a
    /// commit (`1` keeps the previous generation as a fallback; `0`
    /// garbage-collects everything but the new generation).
    pub keep_generations: usize,
    /// Fault injection: abort the writer when the crash point with this
    /// index is reached, leaving the directory exactly as a crash at
    /// that step would. `None` for normal operation. The total number
    /// of points a write passes is reported in
    /// [`WriteReport::crash_points`].
    pub crash_after: Option<usize>,
    /// Manifest format to write (v3 by default; v1 and v2 are kept
    /// writable so migration can be exercised end to end).
    pub format: ManifestVersion,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            shard_bytes: 256 * 1024,
            keep_generations: 1,
            crash_after: None,
            format: ManifestVersion::V3,
        }
    }
}

/// What a successful [`Store::save`] or [`Store::append`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteReport {
    /// The generation this write committed.
    pub generation: u64,
    /// Number of shard files written.
    pub shards: usize,
    /// Number of profiles the committed generation holds in total.
    pub profiles: usize,
    /// How many of this call's input profiles were newly added (for
    /// [`Store::save`] that is all of them; [`Store::append`] skips
    /// profiles whose hash the store already holds).
    pub appended: usize,
    /// Number of enumerated crash points the write passed through (the
    /// valid `crash_after` range for this input is `0..crash_points`).
    pub crash_points: usize,
}

/// What a successful [`Store::compact`] did.
#[derive(Debug, Clone)]
pub struct CompactReport {
    /// The generation the compaction committed.
    pub generation: u64,
    /// Number of shard files the new generation uses.
    pub shards: usize,
    /// Number of profiles carried into the new generation.
    pub profiles: usize,
    /// Number of enumerated crash points the compaction passed through.
    pub crash_points: usize,
    /// One typed diagnostic per record that could not be carried over
    /// (corrupt payloads are dropped, like [`Store::recover`] salvage).
    pub report: IngestReport,
}

/// Integrity status of one generation, from [`Store::fsck`].
#[derive(Debug, Clone)]
pub struct GenCheck {
    /// Generation number.
    pub generation: u64,
    /// Manifest file name.
    pub manifest: String,
    /// True when the manifest verifies and every referenced shard and
    /// record checks out.
    pub intact: bool,
    /// Classified findings (empty iff `intact`).
    pub findings: Vec<Diagnostic>,
}

/// What [`Store::fsck`] found.
#[derive(Debug, Clone)]
pub struct FsckReport {
    /// Every generation present, newest first.
    pub generations: Vec<GenCheck>,
    /// Shard files referenced by no manifest (e.g. left by a writer
    /// that crashed before its commit point).
    pub orphan_shards: Vec<String>,
    /// Leftover temporary files.
    pub temps: Vec<String>,
    /// Newest generation that is fully intact, if any.
    pub newest_intact: Option<u64>,
}

impl FsckReport {
    /// True when the newest generation is intact and nothing else is
    /// lying around (no broken generations, orphans, or temps).
    pub fn is_clean(&self) -> bool {
        self.orphan_shards.is_empty()
            && self.temps.is_empty()
            && self.generations.iter().all(|g| g.intact)
            && self
                .generations
                .first()
                .is_some_and(|g| Some(g.generation) == self.newest_intact)
    }

    /// All findings across generations, newest generation first.
    pub fn findings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.generations.iter().flat_map(|g| g.findings.iter())
    }
}

impl fmt::Display for FsckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fsck: {} generation(s), newest intact: {}",
            self.generations.len(),
            match self.newest_intact {
                Some(g) => g.to_string(),
                None => "none".into(),
            }
        )?;
        for g in &self.generations {
            writeln!(
                f,
                "  gen {} ({}): {}",
                g.generation,
                g.manifest,
                if g.intact { "intact" } else { "BROKEN" }
            )?;
            for d in &g.findings {
                writeln!(f, "    {d}")?;
            }
        }
        for o in &self.orphan_shards {
            writeln!(f, "  orphan shard: {o}")?;
        }
        for t in &self.temps {
            writeln!(f, "  temp file: {t}")?;
        }
        Ok(())
    }
}

/// What [`Store::recover`] did.
#[derive(Debug, Clone)]
pub struct RecoverReport {
    /// The generation the store serves after recovery.
    pub generation: u64,
    /// Records salvaged out of broken shards into a fresh generation
    /// (0 when an intact generation could simply be restored).
    pub salvaged: usize,
    /// Files deleted during recovery (broken manifests, unreferenced or
    /// corrupt shards, temps).
    pub removed: Vec<String>,
    /// One typed diagnostic per record/manifest that could not be
    /// carried into the recovered generation.
    pub report: IngestReport,
}

// ---------------------------------------------------------------------
// Manifest model.
// ---------------------------------------------------------------------

/// One shard as the manifest describes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardInfo {
    /// File name (relative to the store directory).
    pub file: String,
    /// Total file length in bytes (magic included).
    pub bytes: u64,
    /// CRC32C of the whole file.
    pub crc: u32,
    /// Number of records.
    pub records: usize,
}

/// One profile as the manifest indexes it: identity, byte range, and
/// the scalar metadata fields a [`StoreReader::load_entries_where`]
/// predicate can filter on without touching the shard.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreEntry {
    /// Deterministic profile identity ([`Profile::profile_hash`]).
    pub hash: i64,
    /// Index into [`Manifest::shards`].
    pub shard: usize,
    /// Byte offset of the record *payload* within the shard file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC32C of the payload.
    pub crc: u32,
    /// Scalar metadata fields, **sorted by key** (since v2; v1
    /// manifests are re-sorted at parse time) so lookups are a binary
    /// search instead of a per-call linear scan. Empty in a v2
    /// manifest's raw entries — [`StoreReader::entries`] materializes
    /// it from the columnar index on demand.
    pub meta: Vec<(String, Value)>,
}

impl StoreEntry {
    /// Metadata lookup by key (binary search; `meta` is key-sorted).
    pub fn meta(&self, key: &str) -> Option<&Value> {
        self.meta
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| &self.meta[i].1)
    }
}

/// One key's column in the v2 manifest's metadata index: a presence
/// mask plus the key's values for the profiles that carry it, held as
/// unparsed JSON text until first use. Selection against a predicate
/// decodes only the blocks whose keys the predicate names.
#[derive(Debug, Clone)]
pub struct MetaBlock {
    key: String,
    /// `present[i]` ⇔ profile `i` carries this key.
    present: Vec<bool>,
    /// Compact JSON array of the present profiles' values, in profile
    /// order — *not* parsed until [`MetaBlock::values`] is called.
    raw: String,
    /// Lazily decoded values, full profile length with `Value::Null`
    /// in absent slots (the presence mask stays authoritative: an
    /// absent key and a stored `Null` are distinguishable).
    decoded: OnceLock<Result<Vec<Value>, String>>,
}

impl PartialEq for MetaBlock {
    fn eq(&self, other: &Self) -> bool {
        // The decode cache is derived state, not identity.
        self.key == other.key && self.present == other.present && self.raw == other.raw
    }
}

impl MetaBlock {
    /// The metadata key this block indexes.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Whether profile `i` carries this key.
    pub fn present_at(&self, i: usize) -> bool {
        self.present.get(i).copied().unwrap_or(false)
    }

    /// The full presence mask, one flag per profile in storage order —
    /// the predicate engine binds this directly as a columnar view.
    pub fn present(&self) -> &[bool] {
        &self.present
    }

    /// True once this block's value text has been parsed — selection
    /// must leave blocks for keys a predicate never names undecoded.
    pub fn is_decoded(&self) -> bool {
        self.decoded.get().is_some()
    }

    /// Decode (once) and return the full-length value column;
    /// `Value::Null` fills absent slots.
    pub fn values(&self) -> Result<&[Value], String> {
        self.decoded
            .get_or_init(|| {
                let doc = Json::parse(&self.raw)
                    .map_err(|e| format!("meta column {}: {e}", self.key))?;
                let arr = doc
                    .as_arr()
                    .ok_or_else(|| format!("meta column {}: not an array", self.key))?;
                let n_present = self.present.iter().filter(|&&p| p).count();
                if arr.len() != n_present {
                    return Err(format!(
                        "meta column {}: {} values for {} present rows",
                        self.key,
                        arr.len(),
                        n_present
                    ));
                }
                let mut full = vec![Value::Null; self.present.len()];
                let mut vals = arr.iter();
                for (slot, &p) in full.iter_mut().zip(&self.present) {
                    if p {
                        *slot = json_to_value(vals.next().expect("counted above"));
                    }
                }
                Ok(full)
            })
            .as_deref()
            .map_err(|e| e.clone())
    }
}

/// Build the sorted columnar index from per-profile key-sorted rows.
/// The decode cache is pre-filled (the writer just had the values).
fn build_columns(rows: &[Vec<(String, Value)>]) -> Vec<MetaBlock> {
    let mut keys: BTreeSet<&str> = BTreeSet::new();
    for row in rows {
        for (k, _) in row {
            keys.insert(k);
        }
    }
    keys.into_iter()
        .map(|key| {
            let mut present = vec![false; rows.len()];
            let mut vals = Vec::new();
            let mut full = vec![Value::Null; rows.len()];
            for (i, row) in rows.iter().enumerate() {
                if let Ok(pos) = row.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
                    present[i] = true;
                    vals.push(value_to_json(&row[pos].1));
                    full[i] = row[pos].1.clone();
                }
            }
            let decoded = OnceLock::new();
            let _ = decoded.set(Ok(full));
            MetaBlock {
                key: key.to_string(),
                present,
                raw: Json::Arr(vals).to_string_compact(),
                decoded,
            }
        })
        .collect()
}

/// A profile's scalar metadata as a key-sorted row (the order
/// [`StoreEntry::meta`]'s binary search requires).
fn sorted_meta(p: &Profile) -> Vec<(String, Value)> {
    let mut meta: Vec<(String, Value)> = p
        .metadata_iter()
        .map(|(k, v)| (k.to_string(), v.clone()))
        .collect();
    meta.sort_by(|a, b| a.0.cmp(&b.0));
    meta
}

/// Presence mask → lowercase hex, one byte per 8 profiles, LSB-first
/// within each byte.
fn mask_to_hex(present: &[bool]) -> String {
    let mut out = String::with_capacity(present.len().div_ceil(8) * 2);
    for chunk in present.chunks(8) {
        let mut byte = 0u8;
        for (bit, &p) in chunk.iter().enumerate() {
            if p {
                byte |= 1 << bit;
            }
        }
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// Hex mask → presence vector of exactly `n` profiles. Rejects wrong
/// lengths and stray set bits past `n`.
fn mask_from_hex(hex: &str, n: usize) -> Result<Vec<bool>, String> {
    let expect = n.div_ceil(8) * 2;
    if hex.len() != expect {
        return Err(format!("mask is {} hex chars, expected {expect}", hex.len()));
    }
    let mut present = Vec::with_capacity(n);
    for (bi, pair) in hex.as_bytes().chunks(2).enumerate() {
        let s = std::str::from_utf8(pair).map_err(|_| "mask not UTF-8".to_string())?;
        let byte = u8::from_str_radix(s, 16).map_err(|_| "mask not hex".to_string())?;
        for bit in 0..8 {
            let i = bi * 8 + bit;
            let set = byte & (1 << bit) != 0;
            if i < n {
                present.push(set);
            } else if set {
                return Err("mask has bits past the profile count".into());
            }
        }
    }
    Ok(present)
}

/// A parsed, self-CRC-verified manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Generation number.
    pub generation: u64,
    /// Which on-disk format the body used (auto-detected at parse).
    pub version: ManifestVersion,
    /// Shard descriptors, index-addressed by [`StoreEntry::shard`].
    pub shards: Vec<ShardInfo>,
    /// Per-profile index, in storage order. Under
    /// [`ManifestVersion::V2`] the entries carry no metadata (it lives
    /// in [`Manifest::columns`]).
    pub profiles: Vec<StoreEntry>,
    /// v2 columnar metadata index, one block per key, key-sorted.
    /// Empty for v1.
    pub columns: Vec<MetaBlock>,
}

impl Manifest {
    /// The column indexing `key`, if any profile carries it (v2 only).
    pub fn column(&self, key: &str) -> Option<&MetaBlock> {
        self.columns
            .binary_search_by(|b| b.key.as_str().cmp(key))
            .ok()
            .map(|i| &self.columns[i])
    }

    /// Every profile's key-sorted metadata row: borrowed from the
    /// entries (v1) or decoded out of every column (v2). Strict — a
    /// column that fails to decode fails the whole call.
    fn meta_rows(&self) -> Result<Vec<Vec<(String, Value)>>, String> {
        if !self.version.columnar() {
            return Ok(self.profiles.iter().map(|e| e.meta.clone()).collect());
        }
        let mut rows = vec![Vec::new(); self.profiles.len()];
        for b in &self.columns {
            let vals = b.values()?;
            for (i, row) in rows.iter_mut().enumerate() {
                if b.present_at(i) {
                    row.push((b.key.clone(), vals[i].clone()));
                }
            }
        }
        // Columns are key-sorted, so each row came out sorted.
        Ok(rows)
    }

    /// [`Manifest::meta_rows`], but undecodable columns are skipped
    /// instead of failing (for best-effort entry materialization; fsck
    /// reports the damage).
    fn meta_rows_lossy(&self) -> Vec<Vec<(String, Value)>> {
        if !self.version.columnar() {
            return self.profiles.iter().map(|e| e.meta.clone()).collect();
        }
        let mut rows = vec![Vec::new(); self.profiles.len()];
        for b in &self.columns {
            if let Ok(vals) = b.values() {
                for (i, row) in rows.iter_mut().enumerate() {
                    if b.present_at(i) {
                        row.push((b.key.clone(), vals[i].clone()));
                    }
                }
            }
        }
        rows
    }

    pub(crate) fn to_file_bytes(&self) -> Vec<u8> {
        let shards = Json::Arr(
            self.shards
                .iter()
                .map(|s| {
                    Json::Obj(vec![
                        ("file".into(), Json::Str(s.file.clone())),
                        ("bytes".into(), Json::Num(s.bytes as f64)),
                        ("crc".into(), Json::Num(s.crc as f64)),
                        ("records".into(), Json::Num(s.records as f64)),
                    ])
                })
                .collect(),
        );
        let profiles = Json::Arr(
            self.profiles
                .iter()
                .map(|p| {
                    let mut fields = vec![
                        // Full-range i64: goes through a decimal string
                        // so it survives the JSON f64 round trip.
                        ("hash".into(), Json::Str(p.hash.to_string())),
                        ("shard".into(), Json::Num(p.shard as f64)),
                        ("offset".into(), Json::Num(p.offset as f64)),
                        ("len".into(), Json::Num(p.len as f64)),
                        ("crc".into(), Json::Num(p.crc as f64)),
                    ];
                    if self.version == ManifestVersion::V1 {
                        fields.push((
                            "meta".into(),
                            Json::Obj(
                                p.meta
                                    .iter()
                                    .map(|(k, v)| (k.clone(), value_to_json(v)))
                                    .collect(),
                            ),
                        ));
                    }
                    Json::Obj(fields)
                })
                .collect(),
        );
        let mut body_fields = vec![
            (
                "format".into(),
                Json::Str(
                    match self.version {
                        ManifestVersion::V1 => MANIFEST_FORMAT,
                        ManifestVersion::V2 => MANIFEST_FORMAT_V2,
                        ManifestVersion::V3 => MANIFEST_FORMAT_V3,
                    }
                    .into(),
                ),
            ),
            ("generation".into(), Json::Num(self.generation as f64)),
            ("shards".into(), shards),
            ("profiles".into(), profiles),
        ];
        if self.version.columnar() {
            // Each column's values ship as a JSON *string* holding the
            // compact array text: a reader that never references the
            // key scans past one string token instead of parsing every
            // value.
            body_fields.push((
                "columns".into(),
                Json::Arr(
                    self.columns
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("key".into(), Json::Str(b.key.clone())),
                                ("mask".into(), Json::Str(mask_to_hex(&b.present))),
                                ("values".into(), Json::Str(b.raw.clone())),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        let body = Json::Obj(body_fields).to_string_compact();
        let mut out = Vec::with_capacity(body.len() + 13);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(format!("{:08x}", crc32c(body.as_bytes())).as_bytes());
        out.push(b'\n');
        out.extend_from_slice(body.as_bytes());
        out
    }

    /// Parse and self-verify a manifest file's bytes, auto-detecting
    /// the format version.
    pub(crate) fn from_file_bytes(bytes: &[u8]) -> Result<Manifest, String> {
        if bytes.len() < 13 || &bytes[..4] != MANIFEST_MAGIC {
            return Err("bad manifest magic".into());
        }
        let hex = std::str::from_utf8(&bytes[4..12]).map_err(|_| "bad CRC header")?;
        let want = u32::from_str_radix(hex, 16).map_err(|_| "bad CRC header")?;
        if bytes[12] != b'\n' {
            return Err("bad manifest header".into());
        }
        let body = &bytes[13..];
        let got = crc32c(body);
        if got != want {
            return Err(format!("manifest body CRC {got:08x} != header {want:08x}"));
        }
        let text = std::str::from_utf8(body).map_err(|_| "manifest body not UTF-8")?;
        let doc = Json::parse(text).map_err(|e| format!("manifest JSON: {e}"))?;
        let version = match doc.get("format").and_then(Json::as_str) {
            Some(MANIFEST_FORMAT) => ManifestVersion::V1,
            Some(MANIFEST_FORMAT_V2) => ManifestVersion::V2,
            Some(MANIFEST_FORMAT_V3) => ManifestVersion::V3,
            _ => return Err("unsupported manifest format".into()),
        };
        let generation = doc
            .get("generation")
            .and_then(Json::as_i64)
            .filter(|&g| g > 0)
            .ok_or("missing generation")? as u64;
        let shards = doc
            .get("shards")
            .and_then(Json::as_arr)
            .ok_or("missing shards")?
            .iter()
            .map(|s| {
                Some(ShardInfo {
                    file: s.get("file")?.as_str()?.to_string(),
                    bytes: s.get("bytes")?.as_i64().filter(|&v| v >= 0)? as u64,
                    crc: s.get("crc")?.as_i64().filter(|&v| v >= 0)? as u32,
                    records: s.get("records")?.as_i64().filter(|&v| v >= 0)? as usize,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed shard entry")?;
        let profiles = doc
            .get("profiles")
            .and_then(Json::as_arr)
            .ok_or("missing profiles")?
            .iter()
            .map(|p| {
                let mut meta: Vec<(String, Value)> = if version.columnar() {
                    Vec::new()
                } else {
                    p.get("meta")?
                        .as_obj()?
                        .iter()
                        .map(|(k, v)| (k.clone(), json_to_value(v)))
                        .collect()
                };
                // v1 rows were written in profile insertion order;
                // StoreEntry::meta binary-searches, so sort on entry.
                meta.sort_by(|a, b| a.0.cmp(&b.0));
                Some(StoreEntry {
                    hash: p.get("hash")?.as_str()?.parse::<i64>().ok()?,
                    shard: p.get("shard")?.as_i64().filter(|&v| v >= 0)? as usize,
                    offset: p.get("offset")?.as_i64().filter(|&v| v >= 0)? as u64,
                    len: p.get("len")?.as_i64().filter(|&v| v >= 0)? as u32,
                    crc: p.get("crc")?.as_i64().filter(|&v| v >= 0)? as u32,
                    meta,
                })
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("malformed profile entry")?;
        // Validate every declared byte range against the shard it names
        // **at parse time** — readers allocate and slice on these, so a
        // corrupt offset or length must be caught here (as a typed
        // manifest error → `StaleManifest` under fsck), never by an
        // oversized allocation or an out-of-bounds seek later.
        let record_min = (SHARD_MAGIC.len() + RECORD_HEADER_BYTES) as u64;
        for p in &profiles {
            if p.shard >= shards.len() {
                return Err(format!(
                    "profile references shard {} of {}",
                    p.shard,
                    shards.len()
                ));
            }
            let info = &shards[p.shard];
            let end = p.offset.checked_add(p.len as u64);
            if p.offset < record_min || end.is_none() || end.unwrap() > info.bytes {
                return Err(format!(
                    "profile byte range {}+{} exceeds shard {} ({} bytes)",
                    p.offset, p.len, info.file, info.bytes
                ));
            }
        }
        let mut columns = if !version.columnar() {
            Vec::new()
        } else {
            doc
                .get("columns")
                .and_then(Json::as_arr)
                .ok_or("missing columns")?
                .iter()
                .map(|c| {
                    Some(MetaBlock {
                        key: c.get("key")?.as_str()?.to_string(),
                        present: mask_from_hex(c.get("mask")?.as_str()?, profiles.len()).ok()?,
                        raw: c.get("values")?.as_str()?.to_string(),
                        decoded: OnceLock::new(),
                    })
                })
                .collect::<Option<Vec<_>>>()
                .ok_or("malformed meta column")?
        };
        columns.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(Manifest {
            generation,
            version,
            shards,
            profiles,
            columns,
        })
    }
}

// ---------------------------------------------------------------------
// Directory naming.
// ---------------------------------------------------------------------

fn manifest_name(gen: u64) -> String {
    format!("MANIFEST-{gen:06}")
}

fn shard_name(gen: u64, idx: usize) -> String {
    format!("shard-{gen:06}-{idx:04}.tks")
}

/// `MANIFEST-<gen>` → gen.
fn parse_manifest_name(name: &str) -> Option<u64> {
    name.strip_prefix("MANIFEST-")?.parse().ok()
}

/// `shard-<gen>-<idx>.tks` → (gen, idx).
fn parse_shard_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("shard-")?.strip_suffix(".tks")?;
    let (g, i) = rest.split_once('-')?;
    Some((g.parse().ok()?, i.parse().ok()?))
}

fn list_dir(dir: &Path) -> io::Result<Vec<String>> {
    let mut names: Vec<String> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .filter(|e| e.path().is_file())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    Ok(names)
}

/// Manifest generations present, ascending.
fn list_generations(dir: &Path) -> io::Result<Vec<u64>> {
    let mut gens: Vec<u64> = list_dir(dir)?
        .iter()
        .filter_map(|n| parse_manifest_name(n))
        .collect();
    gens.sort_unstable();
    Ok(gens)
}

// ---------------------------------------------------------------------
// Writer with enumerable crash points.
// ---------------------------------------------------------------------

/// Counts the writer's enumerated crash points and aborts at the
/// injected one. Each `tick` is a distinct "the process died exactly
/// here" scenario.
struct CrashClock {
    next: usize,
    trigger: Option<usize>,
}

impl CrashClock {
    fn tick(&mut self, label: &'static str) -> Result<(), StoreError> {
        let point = self.next;
        self.next += 1;
        if self.trigger == Some(point) {
            Err(StoreError::InjectedCrash { point, label })
        } else {
            Ok(())
        }
    }
}

fn sync_file(path: &Path) -> io::Result<()> {
    std::fs::OpenOptions::new().read(true).open(path)?.sync_all()
}

/// Where one payload landed: shard index *within this write's packs*,
/// plus frame coordinates.
#[derive(Debug, Clone, Copy, Default)]
struct Placement {
    shard: usize,
    offset: u64,
    len: u32,
    crc: u32,
}

/// Encode one profile as a record payload in the target format's
/// encoding: binary `TKP3` for v3, a JSON document otherwise.
fn encode_payload(p: &Profile, format: ManifestVersion) -> Vec<u8> {
    match format {
        ManifestVersion::V3 => crate::binprofile::encode_profile(p),
        _ => p.to_string_pretty().into_bytes(),
    }
}

/// Greedy packing: a shard closes once it carries ≥ `shard_bytes` of
/// payload (every shard holds ≥ 1 record). Returns payload indices per
/// shard.
fn pack_shards(payloads: &[Vec<u8>], shard_bytes: usize) -> Vec<Vec<usize>> {
    let mut shards: Vec<Vec<usize>> = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    let mut open_bytes = 0usize;
    for (i, pl) in payloads.iter().enumerate() {
        open.push(i);
        open_bytes += pl.len();
        if open_bytes >= shard_bytes {
            shards.push(std::mem::take(&mut open));
            open_bytes = 0;
        }
    }
    if !open.is_empty() {
        shards.push(open);
    }
    shards
}

/// Write the packed shard files under generation `gen` (final names —
/// invisible until a manifest references them). Two crash points per
/// shard: mid-write (a torn file) and after the full write.
fn write_shards(
    dir: &Path,
    gen: u64,
    payloads: &[Vec<u8>],
    packs: &[Vec<usize>],
    clock: &mut CrashClock,
) -> Result<(Vec<ShardInfo>, Vec<Placement>), StoreError> {
    let mut infos = Vec::with_capacity(packs.len());
    let mut placements = vec![Placement::default(); payloads.len()];
    for (si, members) in packs.iter().enumerate() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SHARD_MAGIC);
        for &pi in members {
            let pl = &payloads[pi];
            let crc = crc32c(pl);
            placements[pi] = Placement {
                shard: si,
                offset: (bytes.len() + RECORD_HEADER_BYTES) as u64,
                len: pl.len() as u32,
                crc,
            };
            bytes.extend_from_slice(&(pl.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc.to_le_bytes());
            bytes.extend_from_slice(pl);
        }
        let path = dir.join(shard_name(gen, si));
        // Model a crash mid-write: only a prefix reached the disk.
        std::fs::write(&path, &bytes[..bytes.len() / 2])?;
        clock.tick("mid-shard-write")?;
        std::fs::write(&path, &bytes)?;
        sync_file(&path)?;
        clock.tick("shard-written")?;
        infos.push(ShardInfo {
            file: shard_name(gen, si),
            bytes: bytes.len() as u64,
            crc: crc32c(&bytes),
            records: members.len(),
        });
    }
    Ok((infos, placements))
}

/// Manifest commit: dot-temp, sync, rename (the atomic commit point).
fn commit_manifest(dir: &Path, manifest: &Manifest, clock: &mut CrashClock) -> Result<(), StoreError> {
    let gen = manifest.generation;
    let bytes = manifest.to_file_bytes();
    let tmp = dir.join(format!(".{}.tmp", manifest_name(gen)));
    std::fs::write(&tmp, &bytes[..bytes.len() / 2])?;
    clock.tick("mid-manifest-write")?;
    std::fs::write(&tmp, &bytes)?;
    sync_file(&tmp)?;
    clock.tick("manifest-written")?;
    std::fs::rename(&tmp, dir.join(manifest_name(gen)))?;
    clock.tick("manifest-committed")?;
    Ok(())
}

/// GC generations before `cutoff` — manifests first (a shardless
/// manifest is unambiguously broken; a manifestless shard is
/// unambiguously an orphan). Shards are then deleted **by reference**,
/// not by generation number: an appended generation's manifest keeps
/// referencing older shard files, which must survive the GC of the
/// manifest that originally wrote them.
fn gc_generations(dir: &Path, cutoff: u64, clock: &mut CrashClock) -> Result<(), StoreError> {
    for name in list_dir(dir)? {
        if parse_manifest_name(&name).is_some_and(|g| g < cutoff) {
            std::fs::remove_file(dir.join(&name))?;
        }
    }
    clock.tick("gc-manifests")?;
    let mut referenced: HashSet<String> = HashSet::new();
    for name in list_dir(dir)? {
        if parse_manifest_name(&name).is_some() {
            if let Ok(bytes) = std::fs::read(dir.join(&name)) {
                if let Ok(m) = Manifest::from_file_bytes(&bytes) {
                    referenced.extend(m.shards.iter().map(|s| s.file.clone()));
                }
            }
        }
    }
    for name in list_dir(dir)? {
        if parse_shard_name(&name).is_some_and(|(g, _)| g < cutoff) && !referenced.contains(&name) {
            std::fs::remove_file(dir.join(&name))?;
        }
    }
    Ok(())
}

/// Read-only probe for the newest self-verifying manifest, counting
/// every manifest byte read along the way (for
/// [`StoreReader::bytes_read`] accounting).
fn newest_manifest(dir: &Path) -> Result<Option<(Manifest, u64)>, StoreError> {
    let mut gens = list_generations(dir)?;
    gens.reverse();
    let mut bytes_total = 0u64;
    for gen in gens {
        let bytes = std::fs::read(dir.join(manifest_name(gen)))?;
        bytes_total += bytes.len() as u64;
        if let Ok(m) = Manifest::from_file_bytes(&bytes) {
            if m.generation == gen {
                return Ok(Some((m, bytes_total)));
            }
        }
    }
    Ok(None)
}

/// The store facade: save / open / fsck / recover on a directory.
pub struct Store;

impl Store {
    /// Write `profiles` as a new generation with default options.
    pub fn save(dir: impl AsRef<Path>, profiles: &[Profile]) -> Result<WriteReport, StoreError> {
        Store::save_opts(dir, profiles, &StoreOptions::default())
    }

    /// Write `profiles` as a new generation.
    ///
    /// The write follows the commit protocol documented at the module
    /// level; with [`StoreOptions::crash_after`] set it aborts at the
    /// chosen crash point, leaving the directory exactly as a crash at
    /// that step would have.
    pub fn save_opts(
        dir: impl AsRef<Path>,
        profiles: &[Profile],
        opts: &StoreOptions,
    ) -> Result<WriteReport, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut clock = CrashClock {
            next: 0,
            trigger: opts.crash_after,
        };
        // Point 0: crash before anything is written.
        clock.tick("begin")?;

        let gen = list_generations(dir)?.last().copied().unwrap_or(0) + 1;
        let payloads: Vec<Vec<u8>> = profiles
            .iter()
            .map(|p| encode_payload(p, opts.format))
            .collect();
        let packs = pack_shards(&payloads, opts.shard_bytes);
        let (shard_infos, placements) = write_shards(dir, gen, &payloads, &packs, &mut clock)?;

        let rows: Vec<Vec<(String, Value)>> = profiles.iter().map(sorted_meta).collect();
        let entries: Vec<StoreEntry> = profiles
            .iter()
            .zip(&placements)
            .zip(&rows)
            .map(|((p, pl), row)| StoreEntry {
                hash: p.profile_hash(),
                shard: pl.shard,
                offset: pl.offset,
                len: pl.len,
                crc: pl.crc,
                meta: row.clone(),
            })
            .collect();
        let columns = if opts.format.columnar() {
            build_columns(&rows)
        } else {
            Vec::new()
        };
        let manifest = Manifest {
            generation: gen,
            version: opts.format,
            shards: shard_infos,
            profiles: entries,
            columns,
        };
        commit_manifest(dir, &manifest, &mut clock)?;
        gc_generations(dir, gen.saturating_sub(opts.keep_generations as u64), &mut clock)?;

        Ok(WriteReport {
            generation: gen,
            shards: packs.len(),
            profiles: profiles.len(),
            appended: profiles.len(),
            crash_points: clock.next,
        })
    }

    /// [`Store::append`] with default options.
    pub fn append(dir: impl AsRef<Path>, profiles: &[Profile]) -> Result<WriteReport, StoreError> {
        Store::append_opts(dir, profiles, &StoreOptions::default())
    }

    /// Commit `profiles` **on top of** the newest verified generation
    /// as a new generation that reuses the existing shard files —
    /// nothing already stored is rewritten. Profiles whose hash the
    /// store already holds (and in-batch duplicates) are skipped;
    /// [`WriteReport::appended`] counts what was actually added.
    ///
    /// The write follows the same stage-then-rename protocol as
    /// [`Store::save`]: new shards land under the new generation's
    /// names, the new manifest (old shards + old entries + the new
    /// ones) is renamed into place, and only then are out-of-retention
    /// generations GC'd — by reference, so shard files the new manifest
    /// still points at survive their original manifest's collection.
    /// On an empty directory this is exactly [`Store::save_opts`].
    pub fn append_opts(
        dir: impl AsRef<Path>,
        profiles: &[Profile],
        opts: &StoreOptions,
    ) -> Result<WriteReport, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        // Read-only probe (no crash point: nothing has mutated yet).
        let Some((base, _)) = newest_manifest(dir)? else {
            return Store::save_opts(dir, profiles, opts);
        };
        let base_rows = base.meta_rows().map_err(StoreError::Corrupt)?;
        let mut clock = CrashClock {
            next: 0,
            trigger: opts.crash_after,
        };
        clock.tick("begin")?;

        let gen = list_generations(dir)?
            .last()
            .copied()
            .unwrap_or(0)
            .max(base.generation)
            + 1;
        let mut seen: HashSet<i64> = base.profiles.iter().map(|e| e.hash).collect();
        let fresh: Vec<&Profile> = profiles
            .iter()
            .filter(|p| seen.insert(p.profile_hash()))
            .collect();
        let payloads: Vec<Vec<u8>> = fresh
            .iter()
            .map(|p| encode_payload(p, opts.format))
            .collect();
        let packs = pack_shards(&payloads, opts.shard_bytes);
        let (new_infos, placements) = write_shards(dir, gen, &payloads, &packs, &mut clock)?;

        let shard_base = base.shards.len();
        let fresh_rows: Vec<Vec<(String, Value)>> =
            fresh.iter().map(|p| sorted_meta(p)).collect();
        let mut entries = base.profiles.clone();
        for (i, e) in entries.iter_mut().enumerate() {
            e.meta = base_rows[i].clone();
        }
        entries.extend(fresh.iter().zip(&placements).zip(&fresh_rows).map(
            |((p, pl), row)| StoreEntry {
                hash: p.profile_hash(),
                shard: shard_base + pl.shard,
                offset: pl.offset,
                len: pl.len,
                crc: pl.crc,
                meta: row.clone(),
            },
        ));
        let all_rows: Vec<Vec<(String, Value)>> =
            base_rows.into_iter().chain(fresh_rows).collect();
        let columns = if opts.format.columnar() {
            build_columns(&all_rows)
        } else {
            Vec::new()
        };
        let mut shards = base.shards.clone();
        shards.extend(new_infos);
        let manifest = Manifest {
            generation: gen,
            version: opts.format,
            shards,
            profiles: entries,
            columns,
        };
        let total = manifest.profiles.len();
        commit_manifest(dir, &manifest, &mut clock)?;
        gc_generations(dir, gen.saturating_sub(opts.keep_generations as u64), &mut clock)?;

        Ok(WriteReport {
            generation: gen,
            shards: packs.len(),
            profiles: total,
            appended: fresh.len(),
            crash_points: clock.next,
        })
    }

    /// [`Store::compact`] with default options.
    pub fn compact(dir: impl AsRef<Path>) -> Result<CompactReport, StoreError> {
        Store::compact_opts(dir, &StoreOptions::default())
    }

    /// Rewrite the newest verified generation into freshly-packed full
    /// shards ([`StoreOptions::shard_bytes`]) — the answer to
    /// fragmentation from repeated appends or salvages. Record payloads
    /// already in the target format's encoding are carried over
    /// byte-for-byte (CRC-verified, never reparsed); payloads in the
    /// *other* encoding (JSON under a v3 target, binary under v1/v2)
    /// are transcoded, which is what makes `compact` the format
    /// migrator. Corrupt records are dropped with typed diagnostics
    /// like [`Store::recover`] salvage. The rewrite runs under the same
    /// stage-then-rename protocol with the same enumerable crash
    /// points, so an interruption leaves the previous generation
    /// serving.
    ///
    /// Because the output manifest defaults to
    /// [`ManifestVersion::V3`], `compact` doubles as the v1/v2 → v3
    /// migrator (and, with an explicit v2 target, the downgrade path).
    /// With `keep_generations = 1` the pre-compaction generation (and
    /// its shards) survives until the next commit; set it to 0 to
    /// reclaim the space immediately.
    pub fn compact_opts(
        dir: impl AsRef<Path>,
        opts: &StoreOptions,
    ) -> Result<CompactReport, StoreError> {
        let dir = dir.as_ref();
        // Read-only phase: load the newest generation's records and
        // metadata before the first crash point (reads never mutate).
        let reader = Store::open(dir)?;
        let base = reader.manifest();
        let rows = base.meta_rows().map_err(StoreError::Corrupt)?;
        let mut raw: Vec<(usize, Result<PayloadSlice, Diagnostic>)> =
            Vec::with_capacity(base.profiles.len());
        for si in 0..base.shards.len() {
            let members: Vec<usize> = (0..base.profiles.len())
                .filter(|&i| base.profiles[i].shard == si)
                .collect();
            if !members.is_empty() {
                reader.read_shard_members(si, &members, &mut raw)?;
            }
        }
        let mut diagnostics = Vec::new();
        let mut kept: Vec<usize> = Vec::with_capacity(raw.len());
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(raw.len());
        let want_binary = opts.format == ManifestVersion::V3;
        for (i, r) in raw {
            match r {
                // A payload already in the target encoding is carried
                // byte-for-byte; one in the other encoding is
                // transcoded (the migration path). A record that fails
                // to transcode is dropped with a typed diagnostic, like
                // salvage.
                Ok(payload) => {
                    let bytes = payload.as_slice();
                    if crate::binprofile::is_binary_payload(bytes) == want_binary {
                        kept.push(i);
                        payloads.push(bytes.to_vec());
                        continue;
                    }
                    match crate::binprofile::decode_payload(bytes) {
                        Ok(p) => {
                            kept.push(i);
                            payloads.push(encode_payload(&p, opts.format));
                        }
                        Err(e) => diagnostics.push(Diagnostic {
                            source: format!(
                                "{}#{}",
                                base.shards[base.profiles[i].shard].file,
                                record_index_of(base, i)
                            ),
                            kind: DiagKind::from_profile_error(&e),
                        }),
                    }
                }
                Err(d) => diagnostics.push(d),
            }
        }

        let mut clock = CrashClock {
            next: 0,
            trigger: opts.crash_after,
        };
        clock.tick("begin")?;
        let gen = list_generations(dir)?.last().copied().unwrap_or(0) + 1;
        let packs = pack_shards(&payloads, opts.shard_bytes);
        let (shard_infos, placements) = write_shards(dir, gen, &payloads, &packs, &mut clock)?;

        let kept_rows: Vec<Vec<(String, Value)>> =
            kept.iter().map(|&i| rows[i].clone()).collect();
        let entries: Vec<StoreEntry> = kept
            .iter()
            .zip(&placements)
            .zip(&kept_rows)
            .map(|((&i, pl), row)| StoreEntry {
                hash: base.profiles[i].hash,
                shard: pl.shard,
                offset: pl.offset,
                len: pl.len,
                crc: pl.crc,
                meta: row.clone(),
            })
            .collect();
        let columns = if opts.format.columnar() {
            build_columns(&kept_rows)
        } else {
            Vec::new()
        };
        let manifest = Manifest {
            generation: gen,
            version: opts.format,
            shards: shard_infos,
            profiles: entries,
            columns,
        };
        let attempted = base.profiles.len();
        let loaded = manifest.profiles.len();
        commit_manifest(dir, &manifest, &mut clock)?;
        gc_generations(dir, gen.saturating_sub(opts.keep_generations as u64), &mut clock)?;

        Ok(CompactReport {
            generation: gen,
            shards: packs.len(),
            profiles: loaded,
            crash_points: clock.next,
            report: IngestReport {
                attempted,
                loaded,
                diagnostics,
                pushdown: None,
            },
        })
    }

    /// Open the newest generation whose manifest self-verifies.
    ///
    /// Verification here is manifest-level only (cheap); record CRCs
    /// are checked as records are read, and [`Store::fsck`] deep-checks
    /// everything.
    pub fn open(dir: impl AsRef<Path>) -> Result<StoreReader, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        if list_generations(&dir)?.is_empty() {
            return Err(StoreError::NoGeneration(format!(
                "no manifest in {}",
                dir.display()
            )));
        }
        match newest_manifest(&dir)? {
            // bytes_read starts at the manifest bytes consumed while
            // probing: pushdown accounting reflects true I/O, not just
            // shard payloads.
            Some((m, manifest_bytes)) => Ok(StoreReader {
                dir,
                manifest: m,
                bytes_read: Cell::new(manifest_bytes),
                materialized: OnceCell::new(),
            }),
            None => Err(StoreError::NoGeneration(format!(
                "no manifest in {} verifies (run Store::recover)",
                dir.display()
            ))),
        }
    }

    /// Deep-verify every generation and classify all corruption.
    pub fn fsck(dir: impl AsRef<Path>) -> Result<FsckReport, StoreError> {
        let dir = dir.as_ref();
        let names = list_dir(dir)?;
        let mut gens: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_manifest_name(n))
            .collect();
        gens.sort_unstable();
        gens.reverse();

        let mut generations = Vec::with_capacity(gens.len());
        let mut referenced: HashSet<String> = HashSet::new();
        for gen in gens {
            let mname = manifest_name(gen);
            let mut findings = Vec::new();
            match std::fs::read(dir.join(&mname))
                .map_err(|e| e.to_string())
                .and_then(|b| Manifest::from_file_bytes(&b))
            {
                Err(why) => findings.push(Diagnostic {
                    source: mname.clone(),
                    kind: DiagKind::StaleManifest {
                        manifest: format!("{mname}: {why}"),
                    },
                }),
                Ok(m) => {
                    if m.generation != gen {
                        findings.push(Diagnostic {
                            source: mname.clone(),
                            kind: DiagKind::StaleManifest {
                                manifest: format!(
                                    "{mname}: body claims generation {}",
                                    m.generation
                                ),
                            },
                        });
                    }
                    for (si, info) in m.shards.iter().enumerate() {
                        referenced.insert(info.file.clone());
                        findings.extend(check_shard(dir, info, entry_ranges(&m, si)));
                    }
                    // Deep-verify the v2 columnar index: every block
                    // must decode and agree with its presence mask.
                    for b in &m.columns {
                        if let Err(why) = b.values() {
                            findings.push(Diagnostic {
                                source: mname.clone(),
                                kind: DiagKind::StaleManifest {
                                    manifest: format!("{mname}: {why}"),
                                },
                            });
                        }
                    }
                }
            }
            let intact = findings.is_empty();
            generations.push(GenCheck {
                generation: gen,
                manifest: mname,
                intact,
                findings,
            });
        }

        let orphan_shards: Vec<String> = names
            .iter()
            .filter(|n| parse_shard_name(n).is_some() && !referenced.contains(*n))
            .cloned()
            .collect();
        let temps: Vec<String> = names
            .iter()
            .filter(|n| n.starts_with('.') && n.ends_with(".tmp"))
            .cloned()
            .collect();
        let newest_intact = generations
            .iter()
            .filter(|g| g.intact)
            .map(|g| g.generation)
            .max();
        Ok(FsckReport {
            generations,
            orphan_shards,
            temps,
            newest_intact,
        })
    }

    /// Repair the directory to a consistent state:
    ///
    /// * If some generation is fully intact, the newest such generation
    ///   becomes the store's sole content set — broken manifests, their
    ///   exclusive shards, orphans, and temps are deleted (older intact
    ///   generations within retention are kept untouched).
    /// * If **no** generation verifies, every CRC-intact record
    ///   reachable from any manifest or shard file is salvaged into a
    ///   fresh generation (deduplicated by profile hash, first
    ///   occurrence in shard order wins), and every record that could
    ///   not be salvaged is reported as a typed diagnostic.
    ///
    /// Either way the resulting directory passes [`Store::fsck`]
    /// cleanly and [`Store::open`] serves exactly one complete
    /// generation.
    pub fn recover(dir: impl AsRef<Path>) -> Result<RecoverReport, StoreError> {
        let dir = dir.as_ref();
        let fsck = Store::fsck(dir)?;
        let mut removed = Vec::new();
        let mut diagnostics = Vec::new();

        let remove = |d: &Path, name: &str, removed: &mut Vec<String>| {
            if std::fs::remove_file(d.join(name)).is_ok() {
                removed.push(name.to_string());
            }
        };

        for t in &fsck.temps {
            remove(dir, t, &mut removed);
        }

        if let Some(keep) = fsck.newest_intact {
            // Roll back to the newest intact generation: drop every
            // broken generation's files and all orphans. Older intact
            // generations stay (they are the retention window).
            let mut kept_shards: HashSet<String> = HashSet::new();
            let mut kept_profiles = 0usize;
            for g in fsck.generations.iter().filter(|g| g.intact) {
                if let Ok(bytes) = std::fs::read(dir.join(&g.manifest)) {
                    if let Ok(m) = Manifest::from_file_bytes(&bytes) {
                        if g.generation == keep {
                            kept_profiles = m.profiles.len();
                        }
                        kept_shards.extend(m.shards.iter().map(|s| s.file.clone()));
                    }
                }
            }
            for g in fsck.generations.iter().filter(|g| !g.intact) {
                diagnostics.extend(g.findings.iter().cloned());
                remove(dir, &g.manifest, &mut removed);
            }
            for name in list_dir(dir)? {
                if parse_shard_name(&name).is_some() && !kept_shards.contains(&name) {
                    remove(dir, &name, &mut removed);
                }
            }
            let attempted = kept_profiles + diagnostics.len();
            return Ok(RecoverReport {
                generation: keep,
                salvaged: 0,
                removed,
                report: IngestReport {
                    attempted,
                    loaded: kept_profiles,
                    diagnostics,
                    pushdown: None,
                },
            });
        }

        // No generation verifies: salvage every intact record from
        // every shard file present, newest generation's shards first so
        // its copy of a profile wins the hash dedupe.
        let mut shard_files: Vec<(u64, usize, String)> = list_dir(dir)?
            .into_iter()
            .filter_map(|n| parse_shard_name(&n).map(|(g, i)| (g, i, n)))
            .collect();
        shard_files.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        let mut seen: HashSet<i64> = HashSet::new();
        let mut salvaged: Vec<Profile> = Vec::new();
        for (_, _, name) in &shard_files {
            let bytes = std::fs::read(dir.join(name))?;
            let (records, finding) = walk_shard(&bytes, name);
            for (ri, payload) in records {
                match crate::binprofile::decode_payload(payload) {
                    Ok(p) => {
                        if seen.insert(p.profile_hash()) {
                            salvaged.push(p);
                        }
                        // A hash-duplicate across generations is the
                        // same profile's older copy, not a fault: no
                        // diagnostic.
                    }
                    Err(e) => diagnostics.push(Diagnostic {
                        source: format!("{name}#{ri}"),
                        kind: DiagKind::from_profile_error(&e),
                    }),
                }
            }
            if let Some(d) = finding {
                diagnostics.push(d);
            }
        }
        for g in &fsck.generations {
            diagnostics.extend(
                g.findings
                    .iter()
                    .filter(|d| matches!(d.kind, DiagKind::StaleManifest { .. }))
                    .cloned(),
            );
        }
        if salvaged.is_empty() {
            return Err(StoreError::NoGeneration(format!(
                "nothing salvageable in {}",
                dir.display()
            )));
        }

        // Rewrite the survivors as a fresh generation, then drop every
        // older file.
        let old_files: Vec<String> = list_dir(dir)?
            .into_iter()
            .filter(|n| parse_shard_name(n).is_some() || parse_manifest_name(n).is_some())
            .collect();
        let report = Store::save_opts(dir, &salvaged, &StoreOptions::default())?;
        for name in old_files {
            remove(dir, &name, &mut removed);
        }
        let salvaged_count = salvaged.len();
        Ok(RecoverReport {
            generation: report.generation,
            salvaged: salvaged_count,
            removed,
            report: IngestReport {
                attempted: salvaged_count + diagnostics.len(),
                loaded: salvaged_count,
                diagnostics,
                pushdown: None,
            },
        })
    }
}

/// Expected `(offset, len, crc)` triples of shard `si`'s records in
/// storage order, for cross-checking during fsck.
fn entry_ranges(m: &Manifest, si: usize) -> Vec<(u64, u32, u32)> {
    let mut ranges: Vec<(u64, u32, u32)> = m
        .profiles
        .iter()
        .filter(|e| e.shard == si)
        .map(|e| (e.offset, e.len, e.crc))
        .collect();
    ranges.sort_unstable_by_key(|(off, _, _)| *off);
    ranges
}

/// Walk a shard byte image, returning every CRC-intact record as
/// `(index, payload)` plus at most one classified finding for the first
/// structural problem (torn tail or checksum mismatch).
///
/// The walk is resilient: a record with a bad CRC does not stop it
/// (framing is still trusted as long as lengths stay in bounds), so
/// later intact records remain salvageable.
fn walk_shard<'a>(bytes: &'a [u8], name: &str) -> (Vec<(usize, &'a [u8])>, Option<Diagnostic>) {
    let mut out = Vec::new();
    if bytes.len() < 4 || &bytes[..4] != SHARD_MAGIC {
        return (
            out,
            Some(Diagnostic {
                source: name.to_string(),
                kind: DiagKind::ChecksumMismatch {
                    shard: name.to_string(),
                    record: 0,
                },
            }),
        );
    }
    let mut pos = SHARD_MAGIC.len();
    let mut ri = 0usize;
    let mut finding = None;
    while pos < bytes.len() {
        // The length prefix is only trusted after checking it fits in
        // the bytes that actually remain — a flipped length byte lands
        // as a torn-shard finding, never an out-of-bounds slice.
        if bytes.len() - pos < RECORD_HEADER_BYTES {
            finding = finding.or(Some(Diagnostic {
                source: format!("{name}#{ri}"),
                kind: DiagKind::TornShard {
                    shard: name.to_string(),
                },
            }));
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + RECORD_HEADER_BYTES].try_into().unwrap());
        if bytes.len() - pos - RECORD_HEADER_BYTES < len {
            finding = finding.or(Some(Diagnostic {
                source: format!("{name}#{ri}"),
                kind: DiagKind::TornShard {
                    shard: name.to_string(),
                },
            }));
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER_BYTES..pos + RECORD_HEADER_BYTES + len];
        if crc32c(payload) == crc {
            out.push((ri, payload));
        } else {
            finding = finding.or(Some(Diagnostic {
                source: format!("{name}#{ri}"),
                kind: DiagKind::ChecksumMismatch {
                    shard: name.to_string(),
                    record: ri,
                },
            }));
        }
        pos += RECORD_HEADER_BYTES + len;
        ri += 1;
    }
    (out, finding)
}

/// Deep-check one shard against its manifest descriptor.
fn check_shard(
    dir: &Path,
    info: &ShardInfo,
    expected: Vec<(u64, u32, u32)>,
) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    let bytes = match std::fs::read(dir.join(&info.file)) {
        Ok(b) => b,
        Err(e) => {
            findings.push(Diagnostic {
                source: info.file.clone(),
                kind: DiagKind::Io(format!("{}: {e}", info.file)),
            });
            return findings;
        }
    };
    if crc32c(&bytes) == info.crc && bytes.len() as u64 == info.bytes {
        // The file digest matches what the manifest promised — but the
        // manifest's *per-record* claims can still lie (a corrupted or
        // rewritten entry range), so verify each declared byte range
        // against the shard image before trusting it.
        for (ri, &(offset, len, crc)) in expected.iter().enumerate() {
            let bad = offset
                .checked_add(len as u64)
                .is_none_or(|end| end > bytes.len() as u64)
                || crc32c(&bytes[offset as usize..(offset + len as u64) as usize]) != crc;
            if bad {
                findings.push(Diagnostic {
                    source: format!("{}#{ri}", info.file),
                    kind: DiagKind::StaleManifest {
                        manifest: format!(
                            "{}#{ri}: manifest entry range {offset}+{len} disagrees with shard bytes",
                            info.file
                        ),
                    },
                });
            }
        }
        // Every frame is bit-intact — but a corruptor that re-frames a
        // record (rewriting the frame CRC and manifest to match) keeps
        // all digests consistent while still breaking the payload, so
        // deep verification must run each record through the decoder.
        let (records, _) = walk_shard(&bytes, &info.file);
        for (ri, payload) in records {
            if let Err(e) = crate::binprofile::decode_payload(payload) {
                findings.push(Diagnostic {
                    source: format!("{}#{ri}", info.file),
                    kind: DiagKind::from_profile_error(&e),
                });
            }
        }
        return findings;
    }
    // Digest mismatch: walk the records to classify precisely.
    let (intact, finding) = walk_shard(&bytes, &info.file);
    if let Some(d) = finding {
        findings.push(d);
    }
    // A record whose payload CRC matches its *frame* but disagrees with
    // the manifest (or extra/missing records) still breaks the digest:
    // classify against the manifest's expectations.
    if findings.is_empty() {
        if intact.len() != expected.len() || bytes.len() as u64 != info.bytes {
            findings.push(Diagnostic {
                source: info.file.clone(),
                kind: DiagKind::StaleManifest {
                    manifest: format!(
                        "{}: shard holds {} intact records, manifest expects {}",
                        info.file,
                        intact.len(),
                        expected.len()
                    ),
                },
            });
        } else {
            // Same framing, different bytes → some record's content and
            // CRC were rewritten together; surface as checksum trouble.
            findings.push(Diagnostic {
                source: info.file.clone(),
                kind: DiagKind::ChecksumMismatch {
                    shard: info.file.clone(),
                    record: 0,
                },
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Reader with metadata pushdown.
// ---------------------------------------------------------------------

/// A read handle on one verified generation.
///
/// All loads are lenient in the ingest sense: corrupt records surface
/// as typed diagnostics in an [`IngestReport`], byte-identical for any
/// worker-thread count, and the healthy subset is returned.
pub struct StoreReader {
    dir: PathBuf,
    manifest: Manifest,
    /// Bytes read so far (manifest probing + shard headers, payloads,
    /// and magics), for pushdown accounting.
    bytes_read: Cell<u64>,
    /// v2 entries with metadata materialized out of the columnar index
    /// (built on first [`StoreReader::entries`] call).
    materialized: OnceCell<Vec<StoreEntry>>,
}

impl StoreReader {
    /// The generation this reader serves.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The manifest's per-profile index, in storage order, with
    /// metadata populated. For a v2 manifest this decodes **every**
    /// column on first call (cached) — typed selection via
    /// [`StoreReader::select`] decodes only the predicate's keys, so
    /// prefer [`MetaPred`] on hot paths.
    pub fn entries(&self) -> &[StoreEntry] {
        if self.manifest.version == ManifestVersion::V1 {
            return &self.manifest.profiles;
        }
        self.materialized.get_or_init(|| {
            let rows = self.manifest.meta_rows_lossy();
            self.manifest
                .profiles
                .iter()
                .zip(rows)
                .map(|(e, meta)| StoreEntry {
                    meta,
                    ..e.clone()
                })
                .collect()
        })
    }

    /// The manifest (shard descriptors included).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Every metadata key this store can answer predicates about
    /// without shard I/O: the columnar index keys (v2/v3), or the
    /// union of per-entry keys (v1). The loader's planner uses this to
    /// decide which conjuncts push below the read.
    pub fn meta_keys(&self) -> BTreeSet<String> {
        if self.manifest.version.columnar() {
            self.manifest
                .columns
                .iter()
                .map(|b| b.key.clone())
                .collect()
        } else {
            self.manifest
                .profiles
                .iter()
                .flat_map(|e| e.meta.iter().map(|(k, _)| k.clone()))
                .collect()
        }
    }

    /// Total bytes this reader has read so far — manifest bytes from
    /// [`Store::open`] plus shard I/O. Sparse selections are charged
    /// per record frame (`RECORD_HEADER_BYTES` + payload); dense
    /// selections bulk-read whole shard files and are charged the file
    /// size. Metadata-pushdown reads do strictly less I/O than a full
    /// load whenever the predicate excludes enough.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.get()
    }

    /// Entry indices (storage order) matching a typed predicate,
    /// without any shard I/O. On a v2 manifest only the columns for
    /// [`MetaPred::keys`] are decoded — non-referenced metadata is
    /// never parsed. A named column that fails to decode is
    /// [`StoreError::Corrupt`] (fsck classifies the damage).
    pub fn select(&self, pred: &MetaPred) -> Result<Vec<usize>, StoreError> {
        self.select_expr(&pred.to_expr())
    }

    /// [`StoreReader::select`] for an already-compiled [`PredExpr`] —
    /// the unified engine's entry point. On a columnar manifest each
    /// named key binds its `MetaBlock` (values + presence mask) straight
    /// into the vectorized evaluator; unreferenced columns stay
    /// undecoded. A v1 manifest falls back to a per-entry scalar walk.
    pub fn select_expr(&self, expr: &PredExpr) -> Result<Vec<usize>, StoreError> {
        let n = self.manifest.profiles.len();
        if !self.manifest.version.columnar() {
            return Ok((0..n)
                .filter(|&i| {
                    let e = &self.manifest.profiles[i];
                    expr.eval_lookup(&mut |k| e.meta(k).cloned())
                })
                .collect());
        }
        let mut src = BoundSource::new(n);
        for key in expr.fields() {
            if let Some(b) = self.manifest.column(key) {
                let vals = b.values().map_err(StoreError::Corrupt)?;
                src.bind_slice(key, vals, Some(b.present()));
            }
            // A key no profile carries simply never matches:
            // same semantics as a row whose meta lacks it.
        }
        Ok(expr.eval(&src).positions())
    }

    /// Load every profile.
    pub fn load_all(&self) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        self.load_matching(&MetaPred::True)
    }

    /// Load the profiles matching a typed predicate: columnar
    /// selection ([`StoreReader::select`]) followed by range reads
    /// that skip shards the predicate excludes entirely.
    pub fn load_matching(
        &self,
        pred: &MetaPred,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        self.load_matching_threads(pred, crate::parallel::default_threads(self.manifest.profiles.len()))
    }

    /// [`StoreReader::load_matching`] with an explicit worker count
    /// for the payload-parse fan-out. Results and diagnostics are
    /// byte-identical for any `threads ≥ 1`.
    pub fn load_matching_threads(
        &self,
        pred: &MetaPred,
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        let selected = self.select(pred)?;
        self.load_selected(&selected, threads)
    }

    /// Load the profiles matching a compiled [`PredExpr`]: vectorized
    /// columnar selection ([`StoreReader::select_expr`]) followed by
    /// range reads that skip shards the predicate excludes entirely.
    pub fn load_matching_expr(
        &self,
        expr: &PredExpr,
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        let selected = self.select_expr(expr)?;
        self.load_selected(&selected, threads)
    }

    /// Closure selection over materialized entries: the engine behind
    /// the loader builder's entry-closure escape hatch. Unlike
    /// [`StoreReader::load_matching`]
    /// this materializes every entry's metadata before evaluating
    /// `pred`; prefer a typed [`MetaPred`] wherever one can express the
    /// selection.
    pub fn load_entries_where(
        &self,
        mut pred: impl FnMut(&StoreEntry) -> bool,
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        let selected: Vec<usize> = self
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| pred(e))
            .map(|(i, _)| i)
            .collect();
        self.load_selected(&selected, threads)
    }

    /// Read, verify, and parse the records at `selected` entry indices
    /// (storage order), skipping shards with no selected member.
    fn load_selected(
        &self,
        selected: &[usize],
        threads: usize,
    ) -> Result<(Vec<Profile>, IngestReport), StoreError> {
        // Read the selected ranges, shard by shard, in storage order.
        let mut raw: Vec<(usize, Result<PayloadSlice, Diagnostic>)> =
            Vec::with_capacity(selected.len());
        for si in 0..self.manifest.shards.len() {
            let members: Vec<usize> = selected
                .iter()
                .copied()
                .filter(|&i| self.manifest.profiles[i].shard == si)
                .collect();
            if members.is_empty() {
                continue; // whole shard skipped: not even opened.
            }
            self.read_shard_members(si, &members, &mut raw)?;
        }

        // Partition into decode jobs (payloads move, never copy — a
        // bulk-read shard is shared by all its records through the Arc)
        // and an ordered skeleton that remembers where failures sit.
        let mut order: Vec<(usize, Option<Diagnostic>)> = Vec::with_capacity(raw.len());
        let mut jobs: Vec<(usize, PayloadSlice)> = Vec::with_capacity(raw.len());
        for (i, r) in raw {
            match r {
                Ok(p) => {
                    jobs.push((i, p));
                    order.push((i, None));
                }
                Err(d) => order.push((i, Some(d))),
            }
        }
        // Per-record encoding dispatch: binary `TKP3` payloads decode
        // through the bounds-checked cursor, anything else through the
        // JSON parser — shards may mix encodings across generations.
        let parsed = parallel_map_catch(&jobs, threads, |(_, payload)| {
            crate::binprofile::decode_payload(payload.as_slice())
        });

        let mut profiles = Vec::with_capacity(jobs.len());
        let mut diagnostics = Vec::new();
        let mut parsed_iter = parsed.into_iter();
        for (i, d) in order {
            match d {
                Some(d) => diagnostics.push(d),
                None => match parsed_iter.next().expect("job per ok record") {
                    Ok(p) => profiles.push(p),
                    Err(JobFailure::Error(e)) => diagnostics.push(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::from_profile_error(&e),
                    }),
                    Err(JobFailure::Panic(m)) => diagnostics.push(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::WorkerPanic(m),
                    }),
                },
            }
        }
        let report = IngestReport {
            attempted: selected.len(),
            loaded: profiles.len(),
            diagnostics,
            pushdown: None,
        };
        Ok((profiles, report))
    }

    /// Read the framed records for `members` (entry indices, all in
    /// shard `si`), verifying framing and CRC as we go. Pushes one
    /// `(entry index, payload-or-diagnostic)` per member, in member
    /// order.
    ///
    /// Dense selections (members cover at least half the shard's bytes)
    /// read the whole file once and hand every record an `Arc` slice of
    /// that buffer; sparse selections seek to each record's frame so
    /// skipped records cost no I/O. `bytes_read` reflects whichever
    /// actually happened.
    fn read_shard_members(
        &self,
        si: usize,
        members: &[usize],
        out: &mut Vec<(usize, Result<PayloadSlice, Diagnostic>)>,
    ) -> Result<(), StoreError> {
        let info = &self.manifest.shards[si];
        let path = self.dir.join(&info.file);
        let member_frame_bytes: u64 = members
            .iter()
            .map(|&i| RECORD_HEADER_BYTES as u64 + self.manifest.profiles[i].len as u64)
            .sum();
        if member_frame_bytes.saturating_mul(2) >= info.bytes {
            return self.read_shard_bulk(si, members, out);
        }
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                // The whole shard is unreadable: every member gets the
                // same classified diagnostic.
                for &i in members {
                    out.push((
                        i,
                        Err(Diagnostic {
                            source: info.file.clone(),
                            kind: DiagKind::Io(format!("{}: {e}", info.file)),
                        }),
                    ));
                }
                return Ok(());
            }
        };
        let file_len = file.metadata().map(|m| m.len()).unwrap_or(0);
        for &i in members {
            let entry = &self.manifest.profiles[i];
            // Framing extends past EOF → the shard is torn. Manifest
            // parsing already bounds every entry against its shard's
            // *declared* size; this re-checks against the file's
            // *actual* size (overflow-proof) before the length is used
            // to allocate, so a truncated file or a stale manifest can
            // never trigger an oversized read.
            let payload_end = entry.offset.checked_add(entry.len as u64);
            if payload_end.is_none()
                || payload_end.unwrap() > file_len
                || entry.offset < RECORD_HEADER_BYTES as u64
            {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::TornShard {
                            shard: info.file.clone(),
                        },
                    }),
                ));
                continue;
            }
            let mut header = [0u8; RECORD_HEADER_BYTES];
            let mut payload = vec![0u8; entry.len as usize];
            let read = (|| -> io::Result<()> {
                file.seek(SeekFrom::Start(entry.offset - RECORD_HEADER_BYTES as u64))?;
                file.read_exact(&mut header)?;
                file.read_exact(&mut payload)?;
                Ok(())
            })();
            self.bytes_read
                .set(self.bytes_read.get() + (RECORD_HEADER_BYTES + entry.len as usize) as u64);
            if let Err(e) = read {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::Io(format!("{}: {e}", info.file)),
                    }),
                ));
                continue;
            }
            let framed_len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let framed_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
            let ok = framed_len == entry.len
                && framed_crc == entry.crc
                && crc32c(&payload) == entry.crc;
            if ok {
                out.push((i, Ok(PayloadSlice::owned(payload))));
            } else {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::ChecksumMismatch {
                            shard: info.file.clone(),
                            record: record_index_of(&self.manifest, i),
                        },
                    }),
                ));
            }
        }
        Ok(())
    }

    /// Dense-selection counterpart of [`Self::read_shard_members`]: one
    /// `fs::read` for the whole shard, then every member validates its
    /// frame against a shared `Arc` of that buffer. No seeks, no
    /// per-record allocation.
    fn read_shard_bulk(
        &self,
        si: usize,
        members: &[usize],
        out: &mut Vec<(usize, Result<PayloadSlice, Diagnostic>)>,
    ) -> Result<(), StoreError> {
        let info = &self.manifest.shards[si];
        let bytes = match std::fs::read(self.dir.join(&info.file)) {
            Ok(b) => Arc::new(b),
            Err(e) => {
                for &i in members {
                    out.push((
                        i,
                        Err(Diagnostic {
                            source: info.file.clone(),
                            kind: DiagKind::Io(format!("{}: {e}", info.file)),
                        }),
                    ));
                }
                return Ok(());
            }
        };
        self.bytes_read
            .set(self.bytes_read.get() + bytes.len() as u64);
        let file_len = bytes.len() as u64;
        for &i in members {
            let entry = &self.manifest.profiles[i];
            // Same torn-shard guard as the seek path: every declared
            // range is proven inside the actual file before slicing.
            let payload_end = entry.offset.checked_add(entry.len as u64);
            if payload_end.is_none()
                || payload_end.unwrap() > file_len
                || entry.offset < RECORD_HEADER_BYTES as u64
            {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::TornShard {
                            shard: info.file.clone(),
                        },
                    }),
                ));
                continue;
            }
            let start = entry.offset as usize;
            let header = &bytes[start - RECORD_HEADER_BYTES..start];
            let payload = &bytes[start..start + entry.len as usize];
            let framed_len = u32::from_le_bytes(header[..4].try_into().unwrap());
            let framed_crc = u32::from_le_bytes(header[4..].try_into().unwrap());
            let ok = framed_len == entry.len
                && framed_crc == entry.crc
                && crc32c(payload) == entry.crc;
            if ok {
                out.push((
                    i,
                    Ok(PayloadSlice::shared(
                        Arc::clone(&bytes),
                        start..start + entry.len as usize,
                    )),
                ));
            } else {
                out.push((
                    i,
                    Err(Diagnostic {
                        source: record_source(&self.manifest, i),
                        kind: DiagKind::ChecksumMismatch {
                            shard: info.file.clone(),
                            record: record_index_of(&self.manifest, i),
                        },
                    }),
                ));
            }
        }
        Ok(())
    }
}

/// A record payload: either its own buffer (sparse seek reads) or a
/// range of a whole-shard read shared by every record in the shard
/// (dense bulk reads). Decoders borrow the slice either way — nothing
/// is copied between disk and the parser.
struct PayloadSlice {
    bytes: Arc<Vec<u8>>,
    range: std::ops::Range<usize>,
}

impl PayloadSlice {
    fn owned(bytes: Vec<u8>) -> Self {
        let range = 0..bytes.len();
        PayloadSlice {
            bytes: Arc::new(bytes),
            range,
        }
    }

    fn shared(bytes: Arc<Vec<u8>>, range: std::ops::Range<usize>) -> Self {
        PayloadSlice { bytes, range }
    }

    fn as_slice(&self) -> &[u8] {
        &self.bytes[self.range.clone()]
    }
}

/// `shard-file#record-index` label for a record-scoped diagnostic.
/// Walks the manifest, so only call it on the error path.
fn record_source(m: &Manifest, i: usize) -> String {
    format!(
        "{}#{}",
        m.shards[m.profiles[i].shard].file,
        record_index_of(m, i)
    )
}

/// Zero-based record index of entry `i` within its shard (entries are
/// stored in offset order per shard).
fn record_index_of(m: &Manifest, i: usize) -> usize {
    let e = &m.profiles[i];
    m.profiles
        .iter()
        .filter(|o| o.shard == e.shard && o.offset < e.offset)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rajaperf::{simulate_cpu_run, CpuRunConfig};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("thicket-store-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn runs(n: u64) -> Vec<Profile> {
        (0..n)
            .map(|seed| {
                let mut cfg = CpuRunConfig::quartz_default();
                cfg.seed = seed;
                simulate_cpu_run(&cfg)
            })
            .collect()
    }

    fn hashes(ps: &[Profile]) -> Vec<i64> {
        let mut h: Vec<i64> = ps.iter().map(|p| p.profile_hash()).collect();
        h.sort_unstable();
        h
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 / common test vectors for CRC-32C.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
    }

    #[test]
    fn save_open_roundtrip() {
        let dir = tmp("roundtrip");
        let profiles = runs(6);
        let report = Store::save(&dir, &profiles).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.profiles, 6);
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.generation(), 1);
        assert_eq!(reader.entries().len(), 6);
        let (loaded, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean(), "{rep}");
        assert_eq!(hashes(&loaded), hashes(&profiles));
        // fsck of a fresh store is clean.
        let fsck = Store::fsck(&dir).unwrap();
        assert!(fsck.is_clean(), "{fsck}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn small_shard_target_splits_shards() {
        let dir = tmp("split");
        let profiles = runs(8);
        let opts = StoreOptions {
            shard_bytes: 1, // every record closes its shard
            ..StoreOptions::default()
        };
        let report = Store::save_opts(&dir, &profiles, &opts).unwrap();
        assert_eq!(report.shards, 8);
        let reader = Store::open(&dir).unwrap();
        let (loaded, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(hashes(&loaded), hashes(&profiles));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn second_save_bumps_generation_and_retains_previous() {
        let dir = tmp("generations");
        let first = runs(3);
        let second = runs(5);
        Store::save(&dir, &first).unwrap();
        let r2 = Store::save(&dir, &second).unwrap();
        assert_eq!(r2.generation, 2);
        // Newest generation wins.
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.generation(), 2);
        let (loaded, _) = reader.load_all().unwrap();
        assert_eq!(hashes(&loaded), hashes(&second));
        // Previous generation's manifest is retained (keep_generations = 1).
        assert!(dir.join(manifest_name(1)).exists());
        // A third save garbage-collects generation 1.
        Store::save(&dir, &first).unwrap();
        assert!(!dir.join(manifest_name(1)).exists());
        assert!(dir.join(manifest_name(2)).exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn load_matching_pushdown_reads_fewer_bytes() {
        let dir = tmp("pushdown");
        let profiles = runs(8);
        let opts = StoreOptions {
            shard_bytes: 1,
            ..StoreOptions::default()
        };
        Store::save_opts(&dir, &profiles, &opts).unwrap();

        // Both sides pay the same manifest bytes (counted since the
        // bytes_read fix), so shard skipping still shows through.
        let full = Store::open(&dir).unwrap();
        let (all, _) = full.load_all().unwrap();
        let full_bytes = full.bytes_read();

        let filtered = Store::open(&dir).unwrap();
        let (subset, rep) = filtered
            .load_matching(&MetaPred::eq("seed", 2i64))
            .unwrap();
        assert!(rep.is_clean());
        assert!(filtered.bytes_read() < full_bytes);
        assert_eq!(subset.len(), 1);
        assert!(all.len() > subset.len());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn bytes_read_is_exact_frame_accounting() {
        // One record per shard, so each shard's cost is its single
        // record's frame: header + payload.
        let dir = tmp("bytes-exact");
        let opts = StoreOptions {
            shard_bytes: 1,
            ..StoreOptions::default()
        };
        Store::save_opts(&dir, &runs(4), &opts).unwrap();

        let reader = Store::open(&dir).unwrap();
        let manifest_bytes = std::fs::metadata(dir.join(manifest_name(reader.manifest().generation)))
            .unwrap()
            .len();
        assert_eq!(
            reader.bytes_read(),
            manifest_bytes,
            "opening costs exactly the manifest file"
        );

        // A full load is dense in every shard, so each shard is one
        // whole-file bulk read: the cost is exactly the sum of on-disk
        // shard sizes, which the manifest's declared sizes must match.
        let (all, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(all.len(), 4);
        let shard_bytes_total: u64 = reader
            .manifest()
            .shards
            .iter()
            .map(|info| {
                let on_disk = std::fs::metadata(dir.join(&info.file)).unwrap().len();
                assert_eq!(on_disk, info.bytes, "{}", info.file);
                info.bytes
            })
            .sum();
        assert_eq!(reader.bytes_read(), manifest_bytes + shard_bytes_total);

        // Pushdown on one-record shards: the selected shard is dense
        // (its one record is most of the file), so the cost is that
        // shard's file size; skipped shards are never opened.
        let filtered = Store::open(&dir).unwrap();
        let (subset, rep) = filtered.load_matching(&MetaPred::eq("seed", 2i64)).unwrap();
        assert!(rep.is_clean());
        assert_eq!(subset.len(), 1);
        let entry = filtered
            .entries()
            .iter()
            .find(|e| e.meta("seed") == Some(&Value::Int(2)))
            .cloned()
            .unwrap();
        let selected_shard = filtered.manifest().shards[entry.shard].bytes;
        assert_eq!(filtered.bytes_read(), manifest_bytes + selected_shard);
        std::fs::remove_dir_all(dir).ok();

        // Pushdown inside a multi-record shard takes the sparse seek
        // path: the charge is exactly the selected record's frame
        // (header + payload), derived from the layout constant.
        let dir = tmp("bytes-exact-sparse");
        Store::save_opts(&dir, &runs(8), &StoreOptions::default()).unwrap();
        let sparse = Store::open(&dir).unwrap();
        assert_eq!(sparse.manifest().shards.len(), 1, "one shared shard");
        let manifest_bytes = std::fs::metadata(dir.join(manifest_name(sparse.manifest().generation)))
            .unwrap()
            .len();
        let (subset, rep) = sparse.load_matching(&MetaPred::eq("seed", 2i64)).unwrap();
        assert!(rep.is_clean());
        assert_eq!(subset.len(), 1);
        let entry = sparse
            .entries()
            .iter()
            .find(|e| e.meta("seed") == Some(&Value::Int(2)))
            .cloned()
            .unwrap();
        assert_eq!(
            sparse.bytes_read(),
            manifest_bytes + (RECORD_HEADER_BYTES as u64 + entry.len as u64)
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn select_decodes_only_named_columns() {
        let dir = tmp("lazy-columns");
        Store::save(&dir, &runs(6)).unwrap();
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.manifest().version, ManifestVersion::V3);
        assert!(
            reader.manifest().columns.len() > 2,
            "quartz runs carry several metadata keys"
        );
        let idx = reader.select(&MetaPred::lt("seed", 3i64)).unwrap();
        assert_eq!(idx, vec![0, 1, 2]);
        for b in &reader.manifest().columns {
            assert_eq!(
                b.is_decoded(),
                b.key() == "seed",
                "column {} decode state after a seed-only selection",
                b.key()
            );
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn columnar_selection_matches_row_selection() {
        let dir = tmp("col-vs-row");
        let profiles = runs(7);
        Store::save(&dir, &profiles).unwrap();
        let reader = Store::open(&dir).unwrap();
        let preds = [
            MetaPred::True,
            MetaPred::eq("cluster", "quartz"),
            MetaPred::eq("seed", 3i64).not(),
            MetaPred::is_in("seed", [1i64, 5, 99]),
            MetaPred::ge("seed", 2i64).and(MetaPred::lt("seed", 6i64)),
            MetaPred::eq("no-such-key", 1i64),
            MetaPred::eq("no-such-key", 1i64).not(),
        ];
        for pred in &preds {
            let columnar = reader.select(pred).unwrap();
            let by_rows: Vec<usize> = reader
                .entries()
                .iter()
                .enumerate()
                .filter(|(_, e)| pred.eval_with(&mut |k| e.meta(k)))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(columnar, by_rows, "pred: {pred}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn manifest_roundtrip_and_self_check() {
        let m = Manifest {
            generation: 7,
            version: ManifestVersion::V1,
            shards: vec![ShardInfo {
                file: shard_name(7, 0),
                bytes: 100,
                crc: 42,
                records: 1,
            }],
            profiles: vec![StoreEntry {
                hash: i64::MIN + 3,
                shard: 0,
                offset: 12,
                len: 88,
                crc: 7,
                meta: vec![
                    ("cluster".into(), Value::from("quartz")),
                    ("size".into(), Value::Int(1 << 60)),
                ],
            }],
            columns: Vec::new(),
        };
        let bytes = m.to_file_bytes();
        let back = Manifest::from_file_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        // Any body mutation breaks the self-CRC.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x20;
        assert!(Manifest::from_file_bytes(&bad).is_err());
        // Truncation breaks it too.
        assert!(Manifest::from_file_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn v2_manifest_roundtrips_columns_and_masks() {
        let rows = vec![
            vec![
                ("cluster".to_string(), Value::from("quartz")),
                ("size".to_string(), Value::Int(1 << 60)),
            ],
            vec![("cluster".to_string(), Value::from("lassen"))],
        ];
        let m = Manifest {
            generation: 3,
            version: ManifestVersion::V2,
            shards: vec![ShardInfo {
                file: shard_name(3, 0),
                bytes: 64,
                crc: 9,
                records: 2,
            }],
            profiles: (0..2)
                .map(|i| StoreEntry {
                    hash: i as i64,
                    shard: 0,
                    offset: 12 + i as u64,
                    len: 4,
                    crc: 1,
                    meta: Vec::new(),
                })
                .collect(),
            columns: build_columns(&rows),
        };
        let bytes = m.to_file_bytes();
        let back = Manifest::from_file_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.version, ManifestVersion::V2);
        // Parsed columns start undecoded; decode recovers the values
        // and the presence mask distinguishes absent from Null.
        let size = back.column("size").unwrap();
        assert!(!size.is_decoded());
        assert_eq!(size.values().unwrap(), &[Value::Int(1 << 60), Value::Null]);
        assert!(size.present_at(0) && !size.present_at(1));
        assert!(back.column("cluster").unwrap().present_at(1));
        assert!(back.column("nope").is_none());
        // meta_rows reconstructs the per-profile rows, key-sorted.
        assert_eq!(back.meta_rows().unwrap(), rows);
    }

    #[test]
    fn mask_hex_roundtrip_and_strictness() {
        for n in [0usize, 1, 7, 8, 9, 17] {
            let present: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
            let hex = mask_to_hex(&present);
            assert_eq!(mask_from_hex(&hex, n).unwrap(), present);
        }
        assert!(mask_from_hex("ff", 4).is_err(), "stray high bits");
        assert!(mask_from_hex("0f", 9).is_err(), "too short");
        assert!(mask_from_hex("zz", 8).is_err(), "not hex");
    }

    #[test]
    fn append_reuses_shards_and_skips_duplicates() {
        let dir = tmp("append");
        let first = runs(3);
        let more = runs(5); // seeds 0..5 — first three duplicate the store
        let r1 = Store::save(&dir, &first).unwrap();
        let r2 = Store::append(&dir, &more).unwrap();
        assert_eq!(r2.generation, 2);
        assert_eq!(r2.appended, 2, "3 of 5 already stored");
        assert_eq!(r2.profiles, 5);
        // Generation 1's shard files are still the ones serving the old
        // profiles: nothing was rewritten.
        assert!(dir.join(shard_name(1, 0)).exists());
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.generation(), 2);
        let (loaded, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean(), "{rep}");
        assert_eq!(hashes(&loaded), hashes(&more));
        assert!(Store::fsck(&dir).unwrap().is_clean());
        // Appending only duplicates commits a no-op generation.
        let r3 = Store::append(&dir, &first).unwrap();
        assert_eq!(r3.appended, 0);
        assert_eq!(r3.profiles, 5);
        assert_eq!(r3.shards, 0);
        // A typed predicate still selects across old + new entries.
        let reader = Store::open(&dir).unwrap();
        let (subset, _) = reader.load_matching(&MetaPred::ge("seed", 3i64)).unwrap();
        assert_eq!(subset.len(), 2);
        // Once gen 1 leaves the retention window, its shards survive
        // while still referenced by the live manifest.
        assert!(!dir.join(manifest_name(1)).exists());
        assert!(dir.join(shard_name(1, 0)).exists());
        assert_eq!(r1.profiles, 3);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn append_to_empty_dir_is_save() {
        let dir = tmp("append-empty");
        let report = Store::append(&dir, &runs(2)).unwrap();
        assert_eq!(report.generation, 1);
        assert_eq!(report.appended, 2);
        let (loaded, _) = Store::open(&dir).unwrap().load_all().unwrap();
        assert_eq!(loaded.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_repacks_fragmented_shards() {
        let dir = tmp("compact");
        let profiles = runs(8);
        let fragmented = StoreOptions {
            shard_bytes: 1, // every record its own shard
            ..StoreOptions::default()
        };
        let r = Store::save_opts(&dir, &profiles, &fragmented).unwrap();
        assert_eq!(r.shards, 8);
        let c = Store::compact(&dir).unwrap();
        assert_eq!(c.shards, 1, "default shard size swallows all 8");
        assert_eq!(c.profiles, 8);
        assert!(c.report.is_clean(), "{}", c.report);
        let reader = Store::open(&dir).unwrap();
        assert_eq!(reader.generation(), c.generation);
        let (loaded, rep) = reader.load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(hashes(&loaded), hashes(&profiles));
        assert!(Store::fsck(&dir).unwrap().is_clean());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_migrates_old_formats_to_v3() {
        for old in [ManifestVersion::V1, ManifestVersion::V2] {
            let dir = tmp(&format!("migrate-{old:?}"));
            let profiles = runs(4);
            let old_opts = StoreOptions {
                format: old,
                ..StoreOptions::default()
            };
            Store::save_opts(&dir, &profiles, &old_opts).unwrap();
            // The old format loads unchanged through the auto-detecting
            // reader.
            let reader = Store::open(&dir).unwrap();
            assert_eq!(reader.manifest().version, old);
            let (loaded, rep) = reader.load_all().unwrap();
            assert!(rep.is_clean());
            assert_eq!(hashes(&loaded), hashes(&profiles));
            if old.columnar() {
                let idx = reader.select(&MetaPred::eq("seed", 1i64)).unwrap();
                assert_eq!(idx.len(), 1);
            }
            // Compaction rewrites it as v3 — binary record payloads
            // under an intact columnar index.
            Store::compact(&dir).unwrap();
            let reader = Store::open(&dir).unwrap();
            assert_eq!(reader.manifest().version, ManifestVersion::V3);
            assert!(reader.manifest().column("seed").is_some());
            let (migrated, rep) = reader.load_all().unwrap();
            assert!(rep.is_clean());
            assert_eq!(hashes(&migrated), hashes(&profiles));
            assert!(Store::fsck(&dir).unwrap().is_clean());
            std::fs::remove_dir_all(dir).ok();
        }
    }

    #[test]
    fn store_entry_meta_is_key_sorted_binary_search() {
        let dir = tmp("meta-sorted");
        Store::save(&dir, &runs(1)).unwrap();
        let reader = Store::open(&dir).unwrap();
        let e = &reader.entries()[0];
        let keys: Vec<&str> = e.meta.iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "meta rows must be key-sorted");
        for (k, v) in &e.meta {
            assert_eq!(e.meta(k), Some(v));
        }
        assert_eq!(e.meta("zzz-no-such-key"), None);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn crash_points_are_enumerable() {
        let dir = tmp("points");
        let report = Store::save(&dir, &runs(3)).unwrap();
        assert!(report.crash_points >= 7, "{}", report.crash_points);
        // Asking for a crash beyond the last point is a clean write.
        let dir2 = tmp("points-beyond");
        let opts = StoreOptions {
            crash_after: Some(report.crash_points + 10),
            ..StoreOptions::default()
        };
        Store::save_opts(&dir2, &runs(3), &opts).unwrap();
        std::fs::remove_dir_all(dir).ok();
        std::fs::remove_dir_all(dir2).ok();
    }

    #[test]
    fn crash_before_commit_preserves_old_generation() {
        let dir = tmp("crash-precommit");
        let old = runs(3);
        Store::save(&dir, &old).unwrap();
        // Crash at point 1 = mid-shard-write of the new generation.
        let opts = StoreOptions {
            crash_after: Some(1),
            ..StoreOptions::default()
        };
        let err = Store::save_opts(&dir, &runs(5), &opts).unwrap_err();
        assert!(matches!(err, StoreError::InjectedCrash { .. }), "{err}");
        // The torn new shard is an orphan; fsck flags it, open still
        // serves generation 1, recover cleans it.
        let fsck = Store::fsck(&dir).unwrap();
        assert!(!fsck.is_clean());
        assert_eq!(fsck.newest_intact, Some(1));
        let (loaded, rep) = Store::open(&dir).unwrap().load_all().unwrap();
        assert!(rep.is_clean());
        assert_eq!(hashes(&loaded), hashes(&old));
        let rec = Store::recover(&dir).unwrap();
        assert_eq!(rec.generation, 1);
        assert!(Store::fsck(&dir).unwrap().is_clean());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_store_dir_errors() {
        let dir = tmp("empty");
        std::fs::create_dir_all(&dir).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::NoGeneration(_))
        ));
        assert!(Store::recover(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn zero_profile_store_roundtrips() {
        let dir = tmp("zero");
        let report = Store::save(&dir, &[]).unwrap();
        assert_eq!(report.profiles, 0);
        let (loaded, rep) = Store::open(&dir).unwrap().load_all().unwrap();
        assert!(loaded.is_empty());
        assert!(rep.is_clean());
        std::fs::remove_dir_all(dir).ok();
    }
}
