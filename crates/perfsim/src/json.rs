//! A small, self-contained JSON reader/writer.
//!
//! The profile on-disk format needs a structured serialization; `serde`
//! alone cannot write files (no format crate is available offline), so
//! this module implements the subset of JSON we need: objects, arrays,
//! strings with escapes, finite numbers, booleans, and null. Object key
//! order is preserved on write and read (profiles diff cleanly).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (integers kept exact up to 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with preserved key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view (round-trip-exact numbers only).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if *n == n.trunc() && n.abs() < 9.3e18 => Some(*n as i64),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(*n, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    ///
    /// The parser is total over arbitrary input: malformed bytes yield a
    /// typed [`JsonError`] (with the failing byte offset and a
    /// [`JsonErrorKind`] separating truncation from syntax errors), and
    /// container nesting is capped at [`MAX_NESTING_DEPTH`] so
    /// adversarial `[[[[…` input cannot overflow the stack.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_num(n: f64, out: &mut String) {
    if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // {:?} prints shortest round-trip representation.
        out.push_str(&format!("{n:?}"));
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container (array/object) nesting depth [`Json::parse`]
/// accepts. Real profiles nest a handful of levels; the cap exists so a
/// hostile `[[[[…` document errors instead of overflowing the stack.
pub const MAX_NESTING_DEPTH: usize = 128;

/// Classification of a [`JsonError`], for callers that branch on *why*
/// parsing failed (e.g. ingest diagnostics distinguishing a truncated
/// file from a syntactically mangled one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed content within complete input.
    Syntax,
    /// The input ended mid-document (truncated file); the offset is
    /// where the usable bytes ran out.
    Truncated,
    /// Container nesting exceeded [`MAX_NESTING_DEPTH`].
    TooDeep,
}

/// JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
    /// Failure classification.
    pub kind: JsonErrorKind,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        self.err_kind(JsonErrorKind::Syntax, message)
    }

    /// A truncation error: the document ended where more was required.
    fn err_eof(&self, message: &str) -> JsonError {
        self.err_kind(JsonErrorKind::Truncated, message)
    }

    fn err_kind(&self, kind: JsonErrorKind, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
            kind,
        }
    }

    /// Bump the nesting depth on container entry (paired with
    /// [`Parser::exit_container`] on the success path; error paths
    /// abandon the parser wholesale, so no decrement is needed there).
    fn enter_container(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(self.err_kind(
                JsonErrorKind::TooDeep,
                &format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
            ));
        }
        Ok(())
    }

    fn exit_container(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(self.err(&format!("expected {:?}", b as char))),
            None => Err(self.err_eof(&format!("expected {:?}, found end of input", b as char))),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err_eof("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err_eof("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err_eof("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs: read the low half if present.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                self.pos += 5;
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                if self.pos + 4 >= self.bytes.len() {
                                    return Err(self.err_eof("truncated surrogate"));
                                }
                                let hex2 = std::str::from_utf8(
                                    &self.bytes[self.pos + 1..self.pos + 5],
                                )
                                .map_err(|_| self.err("bad surrogate"))?;
                                let low = u32::from_str_radix(hex2, 16)
                                    .map_err(|_| self.err("bad surrogate"))?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    // Bulk-consume a run of plain ASCII (no quote, no
                    // backslash): the common case, one validation per
                    // run instead of per character.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c < 0x80 && c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("ASCII run is valid UTF-8"),
                    );
                }
                Some(c) => {
                    // Consume one multi-byte UTF-8 character, validating
                    // only its own bytes (validating the whole remaining
                    // input here would make string parsing quadratic).
                    let width = match c {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = self.pos + width;
                    if end > self.bytes.len() {
                        return Err(self.err_eof("truncated UTF-8 character"));
                    }
                    let ch = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| self.err("invalid UTF-8"))?
                        .chars()
                        .next()
                        .expect("non-empty slice");
                    out.push(ch);
                    self.pos += width;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter_container()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.exit_container();
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.exit_container();
                    return Ok(Json::Arr(items));
                }
                Some(_) => return Err(self.err("expected ',' or ']'")),
                None => return Err(self.err_eof("unterminated array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter_container()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.exit_container();
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.exit_container();
                    return Ok(Json::Obj(members));
                }
                Some(_) => return Err(self.err("expected ',' or '}'")),
                None => return Err(self.err_eof("unterminated object")),
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-3.5", Json::Num(-3.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v);
            assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn nested_structure() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("MAIN".into())),
            (
                "metrics".into(),
                Json::Obj(vec![("time".into(), Json::Num(1.5))]),
            ),
            (
                "children".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Null]),
            ),
        ]);
        let text = v.to_string_compact();
        assert_eq!(
            text,
            r#"{"name":"MAIN","metrics":{"time":1.5},"children":[1,null]}"#
        );
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "tab\t newline\n quote\" backslash\\ unicode\u{1F600}";
        let v = Json::Str(s.into());
        let parsed = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
        // Explicit escape forms parse too.
        assert_eq!(
            Json::parse(r#""aA\n""#).unwrap().as_str(),
            Some("aA\n")
        );
        // Surrogate pair.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn numbers_with_exponents() {
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::parse("-2.5E-2").unwrap().as_f64(), Some(-0.025));
        // Big integers keep exact text form through write_num.
        let big = Json::Num(-5810787656424201390.0);
        let t = big.to_string_compact();
        assert!(Json::parse(&t).is_ok());
    }

    #[test]
    fn integer_view() {
        assert_eq!(Json::parse("7").unwrap().as_i64(), Some(7));
        assert_eq!(Json::parse("7.5").unwrap().as_i64(), None);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" {\n \"a\" : [ 1 , 2 ] ,\t\"b\": {} } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().as_obj().unwrap().len(), 0);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "", "{", "[1,", "\"unterminated", "tru", "{\"a\"}", "1 2", "{'a':1}",
            "[1,]",
        ] {
            assert!(Json::parse(bad).is_err(), "should fail: {bad:?}");
        }
    }

    #[test]
    fn object_key_order_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn get_on_non_object_is_none() {
        assert_eq!(Json::Num(1.0).get("x"), None);
        assert_eq!(Json::parse("[1]").unwrap().get("x"), None);
    }

    #[test]
    fn truncated_inputs_flagged_with_offset() {
        for text in [
            "{\"a\": 1",        // unterminated object
            "[1, 2",            // unterminated array
            "\"unterminated",   // unterminated string
            "{\"a\":",          // value missing at EOF
            "",                 // empty input
            "{\"a\": \"\\u00",  // truncated escape
        ] {
            let err = Json::parse(text).unwrap_err();
            assert_eq!(err.kind, JsonErrorKind::Truncated, "{text:?}: {err}");
            assert!(err.offset <= text.len(), "{text:?}");
        }
        // Syntax errors within complete input are NOT truncation.
        let err = Json::parse("{'a':1}").unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::Syntax);
    }

    #[test]
    fn nesting_depth_capped_without_stack_overflow() {
        // Way past any plausible stack budget if recursion were unbounded.
        let hostile = "[".repeat(200_000);
        let err = Json::parse(&hostile).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep);
        let hostile_obj = "{\"k\":".repeat(200_000);
        assert_eq!(Json::parse(&hostile_obj).unwrap_err().kind, JsonErrorKind::TooDeep);
        // Depth counts *current* nesting, so a long flat sibling chain at
        // shallow depth stays fine.
        let flat = format!("[{}1]", "[1],".repeat(500));
        assert!(Json::parse(&flat).is_ok());
        // Exactly at the limit parses; one past fails.
        let at_limit = format!("{}1{}", "[".repeat(MAX_NESTING_DEPTH), "]".repeat(MAX_NESTING_DEPTH));
        assert!(Json::parse(&at_limit).is_ok());
        let past = format!("{}1{}", "[".repeat(MAX_NESTING_DEPTH + 1), "]".repeat(MAX_NESTING_DEPTH + 1));
        assert_eq!(Json::parse(&past).unwrap_err().kind, JsonErrorKind::TooDeep);
    }
}
