//! Top-down CPU pipeline metric synthesis (Yasin 2014; paper §5.1.1).
//!
//! The real methodology derives four top-level categories — retiring,
//! frontend bound, backend bound, bad speculation — from hardware
//! counters. The simulator derives them from the roofline decomposition:
//! memory pressure (the share of time the kernel is bandwidth-limited)
//! shifts cycles from *retiring* into *backend bound*, which is exactly
//! the qualitative behaviour the paper's Figure 14 discusses.

use crate::noise::Noise;

/// Top-level top-down category shares; always sums to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopDown {
    /// Useful work actually retired.
    pub retiring: f64,
    /// Stalls on instruction fetch/decode.
    pub frontend_bound: f64,
    /// Stalls on data/memory/execution resources.
    pub backend_bound: f64,
    /// Work thrown away on mispredicted paths.
    pub bad_speculation: f64,
}

/// Derive top-down shares from the compute-time / memory-time split of a
/// kernel pass. `t_flops` and `t_mem` are the roofline components.
pub fn top_down(t_flops: f64, t_mem: f64, noise: &mut Noise) -> TopDown {
    let total = (t_flops + t_mem).max(1e-15);
    let mem_pressure = t_mem / total;
    // Small, kernel-independent fixed costs.
    let frontend_bound = (0.02 + 0.03 * noise.uniform(0.0, 1.0)).min(0.08);
    let bad_speculation = (0.005 + 0.02 * noise.uniform(0.0, 1.0)).min(0.04);
    let remaining = 1.0 - frontend_bound - bad_speculation;
    // Memory pressure converts retiring slots into backend stalls.
    let backend_bound = remaining * (0.28 + 0.68 * mem_pressure);
    let retiring = remaining - backend_bound;
    TopDown {
        retiring,
        frontend_bound,
        backend_bound,
        bad_speculation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let mut n = Noise::new(1);
        for (f, m) in [(1.0, 0.1), (0.1, 1.0), (0.5, 0.5), (0.0, 1.0)] {
            let td = top_down(f, m, &mut n);
            let sum = td.retiring + td.frontend_bound + td.backend_bound + td.bad_speculation;
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(td.retiring > 0.0);
            assert!(td.backend_bound > 0.0);
        }
    }

    #[test]
    fn memory_bound_kernels_are_backend_bound() {
        let mut n = Noise::new(2);
        let streaming = top_down(0.05, 1.0, &mut n);
        let compute = top_down(1.0, 0.3, &mut n);
        assert!(streaming.backend_bound > 0.75);
        assert!(compute.retiring > streaming.retiring);
        assert!(compute.backend_bound < streaming.backend_bound);
    }

    #[test]
    fn minor_categories_stay_small() {
        let mut n = Noise::new(3);
        for _ in 0..50 {
            let td = top_down(0.7, 0.7, &mut n);
            assert!(td.frontend_bound < 0.1);
            assert!(td.bad_speculation < 0.05);
        }
    }
}
