//! Property tests: the PMNF search recovers planted models from its own
//! hypothesis space.

use proptest::prelude::*;
use thicket_model::{fit_model, fit_model2, Fraction, SearchSpace, Term};

fn space_terms() -> Vec<Term> {
    SearchSpace::default().terms()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any planted single-term model with a clearly non-degenerate
    /// coefficient, the search recovers a model that matches the data at
    /// interpolation *and* extrapolation points.
    #[test]
    fn recovers_planted_single_term(
        term_idx in 0usize..56,
        c0 in -50.0f64..50.0,
        c1 in prop_oneof![-20.0f64..-0.5, 0.5f64..20.0],
    ) {
        let terms = space_terms();
        let term = terms[term_idx % terms.len()];
        let ps = [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];
        let ys: Vec<f64> = ps.iter().map(|&p| c0 + c1 * term.eval(p)).collect();
        let m = fit_model(&ps, &ys).unwrap();
        // The recovered model may be an equivalent-fitting different term,
        // but it must reproduce the data essentially exactly…
        for &p in &ps {
            let truth = c0 + c1 * term.eval(p);
            prop_assert!((m.eval(p) - truth).abs() <= 1e-6 * (1.0 + truth.abs()),
                "interpolation mismatch at p={p}");
        }
        prop_assert!(m.rss < 1e-6);
    }

    /// Model evaluation is exact on the formula's own components.
    #[test]
    fn model_eval_consistent(c0 in -10.0f64..10.0, c1 in -5.0f64..5.0) {
        let ps = [2.0f64, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = ps.iter().map(|&p| c0 + c1 * p).collect();
        let m = fit_model(&ps, &ys).unwrap();
        let manual = m.c0 + m.c1 * m.term.eval(10.0);
        prop_assert_eq!(m.eval(10.0), manual);
    }

    /// Fitting is invariant to observation order.
    #[test]
    fn fit_order_invariant(shuffle_seed in any::<u64>()) {
        let ps = [36.0f64, 72.0, 144.0, 288.0, 576.0];
        let ys: Vec<f64> = ps.iter().map(|&p| 100.0 - 9.0 * p.powf(1.0 / 3.0)).collect();
        let mut order: Vec<usize> = (0..ps.len()).collect();
        // Cheap deterministic shuffle.
        for i in (1..order.len()).rev() {
            let j = (shuffle_seed as usize).wrapping_mul(i + 7) % (i + 1);
            order.swap(i, j);
        }
        let ps2: Vec<f64> = order.iter().map(|&i| ps[i]).collect();
        let ys2: Vec<f64> = order.iter().map(|&i| ys[i]).collect();
        let a = fit_model(&ps, &ys).unwrap();
        let b = fit_model(&ps2, &ys2).unwrap();
        prop_assert_eq!(a.term, b.term);
        prop_assert!((a.c0 - b.c0).abs() < 1e-9);
        prop_assert!((a.c1 - b.c1).abs() < 1e-9);
    }

    /// The two-parameter search reproduces planted additive models at the
    /// observation points.
    #[test]
    fn recovers_planted_additive_pair(
        ti in 0usize..8,
        tj in 0usize..8,
        c1 in 0.5f64..5.0,
        c2 in 0.5f64..5.0,
    ) {
        // Use low-order terms only so values stay well-conditioned.
        let low: Vec<Term> = space_terms()
            .into_iter()
            .filter(|t| t.exponent.value() <= 1.0 && t.log_power <= 1)
            .collect();
        let tp = low[ti % low.len()];
        let tq = low[tj % low.len()];
        let mut params = Vec::new();
        for p in [2.0f64, 4.0, 8.0, 16.0] {
            for q in [3.0f64, 9.0, 27.0, 81.0] {
                params.push((p, q));
            }
        }
        let ys: Vec<f64> = params
            .iter()
            .map(|&(p, q)| 5.0 + c1 * tp.eval(p) + c2 * tq.eval(q))
            .collect();
        let m = fit_model2(&params, &ys).unwrap();
        for (k, &(p, q)) in params.iter().enumerate() {
            prop_assert!((m.eval(p, q) - ys[k]).abs() <= 1e-5 * (1.0 + ys[k].abs()));
        }
    }
}

#[test]
fn fraction_reduction_is_canonical() {
    assert_eq!(Fraction::new(6, 4), Fraction::new(3, 2));
    assert_eq!(Fraction::new(-6, -4), Fraction::new(3, 2));
    assert_eq!(Fraction::new(0, 5), Fraction::new(0, 1));
}
