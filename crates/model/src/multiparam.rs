//! Multi-parameter performance modeling.
//!
//! Extra-P supports models over several parameters (e.g. MPI ranks *and*
//! problem size). Following its multi-parameter approach, we search
//! additive two-parameter hypotheses
//!
//! ```text
//! f(p, q) = c₀ + c₁·t₁(p) + c₂·t₂(q) [+ c₃·t₁(p)·t₂(q)]
//! ```
//!
//! where `t₁`, `t₂` range over the single-parameter PMNF term lattice and
//! the optional product term captures interaction. Each hypothesis is an
//! ordinary linear least-squares problem solved via normal equations;
//! selection is by RSS with a complexity tie-break (no-interaction
//! preferred).

use crate::{smape, ModelError, SearchSpace, Term};
use std::fmt;

/// A fitted two-parameter model.
#[derive(Debug, Clone)]
pub struct Model2 {
    /// Constant coefficient.
    pub c0: f64,
    /// Coefficient of the first parameter's term.
    pub c1: f64,
    /// First parameter's term (in `p`).
    pub term_p: Term,
    /// Coefficient of the second parameter's term.
    pub c2: f64,
    /// Second parameter's term (in `q`).
    pub term_q: Term,
    /// Interaction coefficient (0 when the additive model was selected).
    pub c3: f64,
    /// Whether the interaction term is part of the model.
    pub has_interaction: bool,
    /// Residual sum of squares.
    pub rss: f64,
    /// SMAPE (%) on the training points.
    pub smape: f64,
}

impl Model2 {
    /// Evaluate at `(p, q)`.
    pub fn eval(&self, p: f64, q: f64) -> f64 {
        let tp = self.term_p.eval(p);
        let tq = self.term_q.eval(q);
        self.c0 + self.c1 * tp + self.c2 * tq + self.c3 * tp * tq
    }

    /// Human-readable formula.
    pub fn formula(&self) -> String {
        let mut s = format!(
            "{:.6} + {:.6} * {} + {:.6} * {}",
            self.c0,
            self.c1,
            self.term_p,
            self.c2,
            term_in(&self.term_q, 'q'),
        );
        if self.has_interaction {
            s.push_str(&format!(
                " + {:.6} * {} * {}",
                self.c3,
                self.term_p,
                term_in(&self.term_q, 'q')
            ));
        }
        s
    }
}

fn term_in(term: &Term, var: char) -> String {
    term.to_string().replace('p', &var.to_string())
}

impl fmt::Display for Model2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.formula())
    }
}

/// Solve the normal equations `(XᵀX) β = Xᵀy` for a small design matrix
/// (rows of `x` are feature vectors). Returns `None` when the system is
/// singular.
fn least_squares(x: &[Vec<f64>], y: &[f64]) -> Option<Vec<f64>> {
    let k = x.first()?.len();
    let n = x.len();
    if n < k {
        return None;
    }
    // Build XᵀX (k×k) and Xᵀy (k).
    let mut a = vec![vec![0.0; k + 1]; k];
    for i in 0..k {
        #[allow(clippy::needless_range_loop)]
        for j in 0..k {
            let mut acc = 0.0;
            for row in x {
                acc += row[i] * row[j];
            }
            a[i][j] = acc;
        }
        let mut acc = 0.0;
        for (row, yy) in x.iter().zip(y.iter()) {
            acc += row[i] * yy;
        }
        a[i][k] = acc;
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..k {
        let pivot = (col..k).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        let div = a[col][col];
        for v in a[col].iter_mut() {
            *v /= div;
        }
        for row in 0..k {
            if row != col {
                let factor = a[row][col];
                if factor != 0.0 {
                    let pivot_row = a[col].clone();
                    for (cell, p) in a[row].iter_mut().zip(pivot_row.iter()) {
                        *cell -= factor * p;
                    }
                }
            }
        }
    }
    Some(a.iter().map(|row| row[k]).collect())
}

/// Fit the best two-parameter model to `(p, q) → y` observations using
/// the default search space for both parameters.
pub fn fit_model2(params: &[(f64, f64)], measurements: &[f64]) -> Result<Model2, ModelError> {
    fit_model2_in(params, measurements, &SearchSpace::default())
}

/// Fit the best two-parameter model within `space` (used for both
/// parameters).
pub fn fit_model2_in(
    params: &[(f64, f64)],
    measurements: &[f64],
    space: &SearchSpace,
) -> Result<Model2, ModelError> {
    if params.len() != measurements.len() {
        return Err(ModelError::LengthMismatch);
    }
    if let Some(&(p, q)) = params.iter().find(|(p, q)| *p <= 0.0 || *q <= 0.0) {
        return Err(ModelError::NonPositiveParameter(if p <= 0.0 { p } else { q }));
    }
    let distinct = |vals: Vec<f64>| {
        let mut v = vals;
        v.sort_by(f64::total_cmp);
        v.dedup();
        v.len()
    };
    if distinct(params.iter().map(|(p, _)| *p).collect()) < 3
        || distinct(params.iter().map(|(_, q)| *q).collect()) < 3
    {
        return Err(ModelError::TooFewPoints);
    }

    let terms = space.terms();
    let mut best: Option<Model2> = None;
    for tp in &terms {
        let xp: Vec<f64> = params.iter().map(|(p, _)| tp.eval(*p)).collect();
        for tq in &terms {
            let xq: Vec<f64> = params.iter().map(|(_, q)| tq.eval(*q)).collect();
            for interaction in [false, true] {
                let rows: Vec<Vec<f64>> = xp
                    .iter()
                    .zip(xq.iter())
                    .map(|(&a, &b)| {
                        if interaction {
                            vec![1.0, a, b, a * b]
                        } else {
                            vec![1.0, a, b]
                        }
                    })
                    .collect();
                let Some(beta) = least_squares(&rows, measurements) else {
                    continue;
                };
                let predicted: Vec<f64> = rows
                    .iter()
                    .map(|r| r.iter().zip(beta.iter()).map(|(a, b)| a * b).sum())
                    .collect();
                let rss: f64 = predicted
                    .iter()
                    .zip(measurements.iter())
                    .map(|(p, y)| (p - y) * (p - y))
                    .sum();
                if !rss.is_finite() {
                    continue;
                }
                let candidate = Model2 {
                    c0: beta[0],
                    c1: beta[1],
                    term_p: *tp,
                    c2: beta[2],
                    term_q: *tq,
                    c3: if interaction { beta[3] } else { 0.0 },
                    has_interaction: interaction,
                    rss,
                    smape: smape(measurements, &predicted),
                };
                let better = match &best {
                    None => true,
                    Some(b) => {
                        let close = (candidate.rss - b.rss).abs() <= 1e-6 * (1.0 + b.rss.abs());
                        if close {
                            // Prefer additive (simpler) hypotheses.
                            !candidate.has_interaction && b.has_interaction
                        } else {
                            candidate.rss < b.rss
                        }
                    }
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
    }
    best.ok_or(ModelError::NoFit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fraction;

    fn grid() -> Vec<(f64, f64)> {
        let mut out = Vec::new();
        for p in [2.0f64, 4.0, 8.0, 16.0, 32.0] {
            for q in [16.0f64, 64.0, 256.0, 1024.0] {
                out.push((p, q));
            }
        }
        out
    }

    #[test]
    fn recovers_additive_model() {
        // y = 10 + 3·p + 0.5·√q
        let params = grid();
        let y: Vec<f64> = params
            .iter()
            .map(|(p, q)| 10.0 + 3.0 * p + 0.5 * q.sqrt())
            .collect();
        let m = fit_model2(&params, &y).unwrap();
        assert_eq!(m.term_p.exponent, Fraction::new(1, 1));
        assert_eq!(m.term_q.exponent, Fraction::new(1, 2));
        assert!(!m.has_interaction);
        assert!((m.c0 - 10.0).abs() < 1e-6);
        assert!((m.c1 - 3.0).abs() < 1e-8);
        assert!((m.c2 - 0.5).abs() < 1e-8);
        assert!(m.smape < 1e-6);
        assert!(m.formula().contains("q^(1/2)"));
    }

    #[test]
    fn recovers_interaction_model() {
        // y = 1 + 2·p·log2(q): dominated by the cross term. The additive
        // family cannot represent it; the interaction must win.
        let params = grid();
        let y: Vec<f64> = params
            .iter()
            .map(|(p, q)| 1.0 + 2.0 * p * q.log2())
            .collect();
        let m = fit_model2(&params, &y).unwrap();
        assert!(m.has_interaction);
        let err = (m.eval(64.0, 4096.0) - (1.0 + 2.0 * 64.0 * 12.0)).abs();
        assert!(err < 1e-3, "extrapolation error {err}");
    }

    #[test]
    fn eval_matches_formula_components() {
        let params = grid();
        let y: Vec<f64> = params.iter().map(|(p, q)| 5.0 + p + q).collect();
        let m = fit_model2(&params, &y).unwrap();
        for &(p, q) in &params {
            assert!((m.eval(p, q) - (5.0 + p + q)).abs() < 1e-6);
        }
    }

    #[test]
    fn error_conditions() {
        assert_eq!(
            fit_model2(&[(1.0, 1.0)], &[1.0, 2.0]).unwrap_err(),
            ModelError::LengthMismatch
        );
        assert!(matches!(
            fit_model2(&[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)], &[1.0; 3]),
            Err(ModelError::NonPositiveParameter(_))
        ));
        // Too few distinct q values.
        let params: Vec<(f64, f64)> = vec![(1.0, 2.0), (2.0, 2.0), (4.0, 2.0), (8.0, 2.0)];
        assert_eq!(
            fit_model2(&params, &[1.0; 4]).unwrap_err(),
            ModelError::TooFewPoints
        );
    }

    #[test]
    fn least_squares_solves_known_system() {
        // y = 2 + 3a - b over a few points.
        let x = vec![
            vec![1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0],
            vec![1.0, 2.0, 3.0],
        ];
        let y = vec![2.0, 5.0, 1.0, 5.0];
        let beta = least_squares(&x, &y).unwrap();
        assert!((beta[0] - 2.0).abs() < 1e-9);
        assert!((beta[1] - 3.0).abs() < 1e-9);
        assert!((beta[2] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn least_squares_singular_returns_none() {
        // Second column is all zeros.
        let x = vec![vec![1.0, 0.0], vec![1.0, 0.0], vec![1.0, 0.0]];
        let y = vec![1.0, 2.0, 3.0];
        assert!(least_squares(&x, &y).is_none());
    }

    #[test]
    fn noisy_additive_fit_close() {
        let params = grid();
        let y: Vec<f64> = params
            .iter()
            .enumerate()
            .map(|(i, (p, q))| {
                let clean = 4.0 + 0.2 * p * p + 1.5 * q.log2();
                clean * (1.0 + 0.004 * if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let m = fit_model2(&params, &y).unwrap();
        assert!(m.smape < 2.0);
        let truth = 4.0 + 0.2 * 64.0 * 64.0 + 1.5 * 11.0;
        let pred = m.eval(64.0, 2048.0);
        assert!((pred - truth).abs() / truth < 0.25, "pred {pred} vs {truth}");
    }
}
