//! # thicket-model
//!
//! An Extra-P-style empirical performance modeler (paper §4.2.3).
//!
//! Extra-P fits analytical scaling functions to ensembles of measurements
//! taken at a few parameter values (e.g. MPI rank counts) so performance
//! can be extrapolated to larger scales. Its model family is the
//! *Performance Model Normal Form* (PMNF); like Extra-P's default
//! single-term search, we fit hypotheses of the shape
//!
//! ```text
//! f(p) = c₀ + c₁ · p^(i/d) · log₂(p)^j
//! ```
//!
//! over a lattice of rational exponents `i/d` and log powers `j`, solving
//! each hypothesis by ordinary least squares on the transformed predictor.
//!
//! Hypothesis selection has two regimes. Without repeated measurements
//! the smallest residual wins (tie-broken toward simpler terms). With
//! replicates — the common case for ensembles, e.g. five MARBL runs per
//! rank count — the within-replicate scatter gives a model-free estimate
//! of pure measurement error, and any hypothesis whose lack-of-fit is
//! statistically consistent with that pure error is *adequate*; among
//! adequate hypotheses the simplest term wins. This is the classical
//! lack-of-fit decomposition, and it is what keeps near-degenerate pairs
//! such as `p^(1/3)` vs `p^(1/4)·log₂(p)` from being decided by noise:
//! both fit, so the simpler (log-free) form is reported, mirroring
//! Extra-P's bias against overfitting. The paper's Figure 11 model,
//! `200.23 + (−18.28)·p^(1/3)`, is inside this space.
//!
//! ```
//! use thicket_model::fit_model;
//!
//! let p = [36.0f64, 72.0, 144.0, 288.0, 576.0, 1152.0];
//! let y: Vec<f64> = p.iter().map(|p| 200.0 - 18.0 * p.powf(1.0 / 3.0)).collect();
//! let m = fit_model(&p, &y).unwrap();
//! assert_eq!(m.term.to_string(), "p^(1/3)");
//! assert!((m.c0 - 200.0).abs() < 1e-6);
//! assert!((m.c1 + 18.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod multiparam;

pub use multiparam::{fit_model2, fit_model2_in, Model2};

use std::fmt;
use thicket_stats::linear_fit;

/// A rational exponent `num/den` in lowest terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fraction {
    /// Numerator (may be zero).
    pub num: i32,
    /// Denominator (always positive).
    pub den: i32,
}

impl Fraction {
    /// New fraction, reduced to lowest terms. Panics on zero denominator.
    pub fn new(num: i32, den: i32) -> Self {
        assert!(den != 0, "fraction denominator must be nonzero");
        let (mut num, mut den) = if den < 0 { (-num, -den) } else { (num, den) };
        let g = gcd(num.unsigned_abs(), den.unsigned_abs()).max(1) as i32;
        num /= g;
        den /= g;
        Fraction { num, den }
    }

    /// Floating-point value.
    pub fn value(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// `true` for 0/1.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// One PMNF term `p^(i/d) · log₂(p)^j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Term {
    /// Rational exponent of `p`.
    pub exponent: Fraction,
    /// Power of `log₂(p)`.
    pub log_power: u32,
}

impl Term {
    /// Evaluate the term at `p` (`p` must be positive).
    pub fn eval(&self, p: f64) -> f64 {
        let poly = p.powf(self.exponent.value());
        let log = if self.log_power == 0 {
            1.0
        } else {
            p.log2().powi(self.log_power as i32)
        };
        poly * log
    }

    /// Complexity used for tie-breaking: prefer lower log powers and
    /// smaller |exponent|.
    fn complexity(&self) -> (u32, f64) {
        (self.log_power, self.exponent.value().abs())
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if !self.exponent.is_zero() {
            if self.exponent.den == 1 {
                parts.push(format!("p^{}", self.exponent.num));
            } else {
                parts.push(format!("p^({})", self.exponent));
            }
        }
        if self.log_power == 1 {
            parts.push("log2(p)".to_string());
        } else if self.log_power > 1 {
            parts.push(format!("log2(p)^{}", self.log_power));
        }
        if parts.is_empty() {
            f.write_str("1")
        } else {
            f.write_str(&parts.join(" * "))
        }
    }
}

/// The hypothesis lattice to search.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Candidate exponents of `p`.
    pub exponents: Vec<Fraction>,
    /// Candidate powers of `log₂(p)`.
    pub log_powers: Vec<u32>,
}

impl Default for SearchSpace {
    /// Extra-P's default single-parameter search space: exponents
    /// `{0, 1/4, 1/3, 1/2, 2/3, 3/4, 1, 5/4, 4/3, 3/2, 5/3, 7/4, 2, 9/4,
    /// 7/3, 5/2, 8/3, 11/4, 3}` and log powers `{0, 1, 2}`.
    fn default() -> Self {
        let fracs = [
            (0, 1),
            (1, 4),
            (1, 3),
            (1, 2),
            (2, 3),
            (3, 4),
            (1, 1),
            (5, 4),
            (4, 3),
            (3, 2),
            (5, 3),
            (7, 4),
            (2, 1),
            (9, 4),
            (7, 3),
            (5, 2),
            (8, 3),
            (11, 4),
            (3, 1),
        ];
        SearchSpace {
            exponents: fracs.iter().map(|&(n, d)| Fraction::new(n, d)).collect(),
            log_powers: vec![0, 1, 2],
        }
    }
}

impl SearchSpace {
    /// All candidate terms, excluding the degenerate constant term
    /// (exponent 0, log power 0), which the intercept already covers.
    pub fn terms(&self) -> Vec<Term> {
        let mut out = Vec::new();
        for &e in &self.exponents {
            for &j in &self.log_powers {
                if e.is_zero() && j == 0 {
                    continue;
                }
                out.push(Term {
                    exponent: e,
                    log_power: j,
                });
            }
        }
        out
    }
}

/// A fitted two-coefficient PMNF model `c₀ + c₁ · term(p)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Constant coefficient.
    pub c0: f64,
    /// Term coefficient.
    pub c1: f64,
    /// The selected PMNF term.
    pub term: Term,
    /// Residual sum of squares of the winning fit.
    pub rss: f64,
    /// Adjusted R² of the winning fit.
    pub adjusted_r2: f64,
    /// SMAPE (symmetric mean absolute percentage error, %) on the
    /// training points — the accuracy measure Extra-P reports.
    pub smape: f64,
}

impl Model {
    /// Evaluate the model at parameter value `p`.
    pub fn eval(&self, p: f64) -> f64 {
        self.c0 + self.c1 * self.term.eval(p)
    }

    /// Human-readable formula, e.g.
    /// `200.231242 + -18.278533 * p^(1/3)` (Figure 11 style).
    pub fn formula(&self) -> String {
        format!("{:.6} + {:.6} * {}", self.c0, self.c1, self.term)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.formula())
    }
}

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// x/y lengths differ.
    LengthMismatch,
    /// Need at least three distinct parameter values.
    TooFewPoints,
    /// Parameter values must be positive (log/fractional powers).
    NonPositiveParameter(f64),
    /// No hypothesis produced a valid fit.
    NoFit,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::LengthMismatch => f.write_str("parameter/measurement length mismatch"),
            ModelError::TooFewPoints => {
                f.write_str("need at least three distinct parameter values")
            }
            ModelError::NonPositiveParameter(p) => {
                write!(f, "parameter value {p} is not positive")
            }
            ModelError::NoFit => f.write_str("no hypothesis produced a valid fit"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Fit the best single-term PMNF model with the default search space.
pub fn fit_model(params: &[f64], measurements: &[f64]) -> Result<Model, ModelError> {
    fit_model_in(params, measurements, &SearchSpace::default())
}

/// Fit the best single-term PMNF model within `space`.
pub fn fit_model_in(
    params: &[f64],
    measurements: &[f64],
    space: &SearchSpace,
) -> Result<Model, ModelError> {
    if params.len() != measurements.len() {
        return Err(ModelError::LengthMismatch);
    }
    if let Some(&bad) = params.iter().find(|p| **p <= 0.0) {
        return Err(ModelError::NonPositiveParameter(bad));
    }
    let mut distinct: Vec<f64> = params.to_vec();
    distinct.sort_by(f64::total_cmp);
    distinct.dedup();
    if distinct.len() < 3 {
        return Err(ModelError::TooFewPoints);
    }

    match Replicates::estimate(params, measurements, distinct.len()) {
        Some(reps) => fit_replicated(params, measurements, space, &reps),
        None => fit_unreplicated(params, measurements, space),
    }
}

/// Selection without repeated measurements: smallest RSS wins; within a
/// relative whisker, prefer the simpler term (Extra-P's overfitting bias).
fn fit_unreplicated(
    params: &[f64],
    measurements: &[f64],
    space: &SearchSpace,
) -> Result<Model, ModelError> {
    let mut best: Option<Model> = None;
    for term in space.terms() {
        let x: Vec<f64> = params.iter().map(|&p| term.eval(p)).collect();
        // log2(1) == 0 can zero the predictor; linear_fit rejects the
        // degenerate case for us.
        let Some(fit) = linear_fit(&x, measurements) else {
            continue;
        };
        if !fit.rss.is_finite() {
            continue;
        }
        let candidate = model_from_fit(params, measurements, term, &fit);
        let better = match &best {
            None => true,
            Some(b) => {
                let close = (candidate.rss - b.rss).abs() <= 1e-9 * (1.0 + b.rss.abs());
                if close {
                    candidate.term.complexity() < b.term.complexity()
                } else {
                    candidate.rss < b.rss
                }
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or(ModelError::NoFit)
}

/// Selection with repeated measurements: fit each hypothesis by weighted
/// least squares (weights `1/ȳ²` per replicate group, matching the
/// multiplicative noise of real run-to-run variation), test its weighted
/// lack-of-fit against the weighted pure error, and
///
/// * prefer any *adequate* hypothesis over any inadequate one,
/// * among adequate ones take the fewest log factors, then the smallest
///   weighted residual,
/// * among inadequate ones fall back to the smallest weighted residual.
fn fit_replicated(
    params: &[f64],
    measurements: &[f64],
    space: &SearchSpace,
    reps: &Replicates,
) -> Result<Model, ModelError> {
    let mut best: Option<(Model, bool, f64)> = None; // (model, adequate, wrss)
    for term in space.terms() {
        let x: Vec<f64> = params.iter().map(|&p| term.eval(p)).collect();
        let Some(fit) = thicket_stats::weighted_linear_fit(&x, measurements, &reps.weights)
        else {
            continue;
        };
        if !fit.rss.is_finite() {
            continue;
        }
        let wrss = fit.rss;
        let adequate = reps.adequate(wrss);
        let candidate = model_from_fit(params, measurements, term, &fit);
        let better = match &best {
            None => true,
            Some((b, b_adequate, b_wrss)) => match (adequate, b_adequate) {
                (true, false) => true,
                (false, true) => false,
                (true, true) => {
                    (candidate.term.log_power, wrss) < (b.term.log_power, *b_wrss)
                }
                (false, false) => wrss < *b_wrss,
            },
        };
        if better {
            best = Some((candidate, adequate, wrss));
        }
    }
    best.map(|(m, _, _)| m).ok_or(ModelError::NoFit)
}

/// Assemble a [`Model`] from a (possibly weighted) linear fit. `rss` is
/// always reported unweighted so its units stay meaningful to callers;
/// `adjusted_r2` comes from the fit's own metric.
fn model_from_fit(
    params: &[f64],
    measurements: &[f64],
    term: Term,
    fit: &thicket_stats::LinearFit,
) -> Model {
    let predicted: Vec<f64> = params.iter().map(|&p| fit.predict(term.eval(p))).collect();
    let rss: f64 = measurements
        .iter()
        .zip(&predicted)
        .map(|(y, f)| (y - f) * (y - f))
        .sum();
    Model {
        c0: fit.intercept,
        c1: fit.slope,
        term,
        rss,
        adjusted_r2: fit.adjusted_r2(),
        smape: smape(measurements, &predicted),
    }
}

/// Replicate structure of a measurement design: per-observation weights
/// (`1/ȳ_g²` of the observation's replicate group) and the weighted
/// pure-error sum of squares, for the classical lack-of-fit test under
/// multiplicative noise.
struct Replicates {
    weights: Vec<f64>,
    /// Weighted within-replicate sum of squares.
    wsspe: f64,
    /// Pure-error degrees of freedom (`n - m`).
    df_pe: f64,
    /// Lack-of-fit degrees of freedom (`m - 2` for a two-coefficient fit).
    df_lof: f64,
}

impl Replicates {
    /// Roughly the 95th percentile of the relevant F distributions for
    /// small ensemble designs (F(4,24) ≈ 2.78, F(1,13) ≈ 4.67); a single
    /// conservative constant keeps selection deterministic and simple.
    const F_CRIT: f64 = 3.0;

    /// `None` when the design has no usable replication (fewer than two
    /// pure-error dof, or no lack-of-fit dof left to test).
    fn estimate(params: &[f64], measurements: &[f64], m: usize) -> Option<Replicates> {
        let n = params.len();
        if n < m + 2 || m < 3 {
            return None;
        }
        // Group mean per exact parameter value.
        let mut groups: std::collections::HashMap<u64, (f64, f64)> =
            std::collections::HashMap::with_capacity(m);
        for (&p, &y) in params.iter().zip(measurements) {
            let e = groups.entry(p.to_bits()).or_insert((0.0, 0.0));
            e.0 += 1.0;
            e.1 += y;
        }
        let scale = groups
            .values()
            .map(|&(cnt, sum)| (sum / cnt).abs())
            .sum::<f64>()
            / groups.len() as f64;
        let weight_of = |mean: f64| {
            if scale > 0.0 {
                // Floor tiny group means so no single group dominates.
                let floored = mean.abs().max(1e-6 * scale);
                1.0 / (floored * floored)
            } else {
                1.0
            }
        };
        let mut weights = Vec::with_capacity(n);
        let mut wsspe = 0.0;
        for (&p, &y) in params.iter().zip(measurements) {
            let (cnt, sum) = groups[&p.to_bits()];
            let mean = sum / cnt;
            let w = weight_of(mean);
            weights.push(w);
            wsspe += w * (y - mean) * (y - mean);
        }
        Some(Replicates {
            weights,
            wsspe,
            df_pe: (n - m) as f64,
            df_lof: (m - 2) as f64,
        })
    }

    /// Is a weighted residual this small consistent with pure measurement
    /// error? `F = (SSLOF/df_lof) / (SSPE/df_pe) ≤ F_crit`, written
    /// multiplication-only so an exact-fit SSPE of zero needs no special
    /// case.
    fn adequate(&self, wrss: f64) -> bool {
        let wsslof = (wrss - self.wsspe).max(0.0);
        wsslof * self.df_pe
            <= Self::F_CRIT * self.df_lof * self.wsspe + 1e-12 * (1.0 + self.wsspe)
    }
}

/// Symmetric mean absolute percentage error, in percent.
pub fn smape(actual: &[f64], predicted: &[f64]) -> f64 {
    if actual.is_empty() {
        return f64::NAN;
    }
    let mut acc = 0.0;
    for (a, p) in actual.iter().zip(predicted.iter()) {
        let denom = a.abs() + p.abs();
        if denom > 0.0 {
            acc += (a - p).abs() / denom;
        }
    }
    200.0 * acc / actual.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_reduction_and_display() {
        assert_eq!(Fraction::new(2, 4), Fraction::new(1, 2));
        assert_eq!(Fraction::new(3, -4), Fraction::new(-3, 4));
        assert_eq!(Fraction::new(1, 3).to_string(), "1/3");
        assert_eq!(Fraction::new(2, 1).to_string(), "2");
        assert!((Fraction::new(1, 3).value() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "denominator")]
    fn zero_denominator_panics() {
        Fraction::new(1, 0);
    }

    #[test]
    fn term_display_forms() {
        let t = Term {
            exponent: Fraction::new(1, 3),
            log_power: 0,
        };
        assert_eq!(t.to_string(), "p^(1/3)");
        let t2 = Term {
            exponent: Fraction::new(2, 1),
            log_power: 1,
        };
        assert_eq!(t2.to_string(), "p^2 * log2(p)");
        let t3 = Term {
            exponent: Fraction::new(0, 1),
            log_power: 2,
        };
        assert_eq!(t3.to_string(), "log2(p)^2");
    }

    #[test]
    fn search_space_excludes_constant() {
        let terms = SearchSpace::default().terms();
        assert!(!terms
            .iter()
            .any(|t| t.exponent.is_zero() && t.log_power == 0));
        assert_eq!(terms.len(), 19 * 3 - 1);
    }

    #[test]
    fn recovers_cube_root_model() {
        // The Figure 11 family: y = 200.23 - 18.28 * p^(1/3).
        let p = [36.0f64, 72.0, 144.0, 288.0, 576.0, 1152.0];
        let y: Vec<f64> = p
            .iter()
            .map(|p| 200.231242693312 - 18.278533682209932 * p.powf(1.0 / 3.0))
            .collect();
        let m = fit_model(&p, &y).unwrap();
        assert_eq!(m.term.exponent, Fraction::new(1, 3));
        assert_eq!(m.term.log_power, 0);
        assert!((m.c0 - 200.231242693312).abs() < 1e-6);
        assert!((m.c1 + 18.278533682209932).abs() < 1e-6);
        assert!(m.smape < 1e-6);
        assert!(m.formula().contains("p^(1/3)"));
    }

    #[test]
    fn recovers_linear_and_nlogn() {
        let p = [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0];
        let lin: Vec<f64> = p.iter().map(|p| 5.0 + 0.75 * p).collect();
        let m = fit_model(&p, &lin).unwrap();
        assert_eq!(m.term.exponent, Fraction::new(1, 1));
        assert_eq!(m.term.log_power, 0);

        let nlogn: Vec<f64> = p.iter().map(|p| 1.0 + 2.0 * p * p.log2()).collect();
        let m2 = fit_model(&p, &nlogn).unwrap();
        assert_eq!(m2.term.exponent, Fraction::new(1, 1));
        assert_eq!(m2.term.log_power, 1);
    }

    #[test]
    fn recovers_log_only_model() {
        let p = [2.0f64, 4.0, 8.0, 16.0, 32.0];
        let y: Vec<f64> = p.iter().map(|p| 3.0 + 4.0 * p.log2()).collect();
        let m = fit_model(&p, &y).unwrap();
        assert!(m.term.exponent.is_zero());
        assert_eq!(m.term.log_power, 1);
    }

    #[test]
    fn noisy_fit_still_close() {
        let p = [36.0f64, 72.0, 144.0, 288.0, 576.0, 1152.0];
        // Deterministic ±0.5% "noise".
        let y: Vec<f64> = p
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let clean = 150.0 - 14.0 * p.powf(1.0 / 3.0);
                clean * (1.0 + 0.005 * if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let m = fit_model(&p, &y).unwrap();
        assert!(m.smape < 2.0);
        let pred = m.eval(2304.0);
        let truth = 150.0 - 14.0 * 2304f64.powf(1.0 / 3.0);
        assert!((pred - truth).abs() / truth.abs() < 0.2);
    }

    #[test]
    fn error_conditions() {
        assert_eq!(
            fit_model(&[1.0, 2.0], &[1.0]).unwrap_err(),
            ModelError::LengthMismatch
        );
        assert_eq!(
            fit_model(&[1.0, 2.0], &[1.0, 2.0]).unwrap_err(),
            ModelError::TooFewPoints
        );
        assert_eq!(
            fit_model(&[1.0, 1.0, 1.0, 2.0], &[1.0; 4]).unwrap_err(),
            ModelError::TooFewPoints
        );
        assert!(matches!(
            fit_model(&[0.0, 1.0, 2.0], &[1.0; 3]),
            Err(ModelError::NonPositiveParameter(_))
        ));
    }

    #[test]
    fn constant_measurements_pick_simplest_term() {
        let p = [2.0, 4.0, 8.0, 16.0];
        let y = [5.0, 5.0, 5.0, 5.0];
        let m = fit_model(&p, &y).unwrap();
        // Any term fits exactly with c1 = 0; the complexity tie-break
        // should keep a log-free, low-exponent term.
        assert!((m.c1).abs() < 1e-9);
        assert!((m.eval(1024.0) - 5.0).abs() < 1e-6);
        assert_eq!(m.term.log_power, 0);
    }

    #[test]
    fn smape_basics() {
        assert!(smape(&[], &[]).is_nan());
        assert_eq!(smape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        let s = smape(&[100.0], &[110.0]);
        assert!((s - 200.0 * 10.0 / 210.0).abs() < 1e-9);
    }

    #[test]
    fn replicated_pure_scatter_recovers_exponent() {
        // Group means sit exactly on the planted curve; scatter is purely
        // within-group. The replicated path must report the planted term
        // with no log factor.
        let mut p = Vec::new();
        let mut y = Vec::new();
        for &ranks in &[36.0f64, 72.0, 144.0, 288.0, 576.0, 1152.0] {
            let truth = 150.0 - 12.0 * ranks.powf(1.0 / 3.0);
            for delta in [-0.02, -0.01, 0.0, 0.01, 0.02] {
                p.push(ranks);
                y.push(truth * (1.0 + delta));
            }
        }
        let m = fit_model(&p, &y).unwrap();
        assert_eq!(m.term.exponent, Fraction::new(1, 3));
        assert_eq!(m.term.log_power, 0);
        assert!((m.c0 - 150.0).abs() < 2.0);
    }

    #[test]
    fn replicated_multiplicative_noise_recovers_exponent() {
        // Multiplicative (heteroscedastic) noise, the regime where plain
        // RSS selection can latch onto a log-bearing near-twin such as
        // p^(1/4)·log2(p). Deterministic LCG noise, several seeds.
        for seed in [1u64, 2, 3, 4, 5, 6, 7, 8] {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            let mut next_unit = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let mut p = Vec::new();
            let mut y = Vec::new();
            for &ranks in &[36.0f64, 72.0, 144.0, 288.0, 576.0, 1152.0] {
                let truth = 200.0 - 18.0 * ranks.powf(1.0 / 3.0);
                for _ in 0..5 {
                    // ~2% relative noise via a crude normal approximation.
                    let z = next_unit() + next_unit() + next_unit() - 1.5;
                    p.push(ranks);
                    y.push(truth * (1.0 + 0.02 * z * 2.0));
                }
            }
            let m = fit_model(&p, &y).unwrap();
            assert_eq!(
                m.term.exponent,
                Fraction::new(1, 3),
                "seed {seed}: fitted {}",
                m.formula()
            );
            assert_eq!(m.term.log_power, 0, "seed {seed}");
        }
    }

    #[test]
    fn repeated_parameter_values_ok() {
        // Five runs per rank count (the paper averages five MARBL runs).
        let mut p = Vec::new();
        let mut y = Vec::new();
        for &ranks in &[36.0f64, 144.0, 576.0] {
            for rep in 0..5 {
                p.push(ranks);
                y.push(100.0 - 9.0 * ranks.powf(1.0 / 3.0) + 0.01 * rep as f64);
            }
        }
        let m = fit_model(&p, &y).unwrap();
        assert_eq!(m.term.exponent, Fraction::new(1, 3));
    }
}
