//! A minimal SVG document builder: primitives, linear scales, and nice
//! axis ticks — the drawing layer under [`crate::charts`].

use std::fmt::Write as _;

/// The default categorical palette (colorblind-friendly Okabe–Ito).
pub fn palette(i: usize) -> &'static str {
    const COLORS: [&str; 8] = [
        "#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#F0E442", "#000000",
    ];
    COLORS[i % COLORS.len()]
}

/// An SVG canvas with pixel coordinates.
#[derive(Debug, Clone)]
pub struct SvgCanvas {
    width: f64,
    height: f64,
    body: String,
}

impl SvgCanvas {
    /// New canvas of the given pixel size with a white background.
    pub fn new(width: f64, height: f64) -> Self {
        let mut c = SvgCanvas {
            width,
            height,
            body: String::new(),
        };
        c.rect(0.0, 0.0, width, height, "#ffffff", None);
        c
    }

    /// Canvas width.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Canvas height.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Filled (and optionally stroked) rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, stroke: Option<&str>) {
        let stroke_attr = stroke
            .map(|s| format!(" stroke=\"{s}\" stroke-width=\"1\""))
            .unwrap_or_default();
        let _ = writeln!(
            self.body,
            "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{h:.2}\" fill=\"{fill}\"{stroke_attr}/>"
        );
    }

    /// Line segment.
    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width}\"/>"
        );
    }

    /// Dashed line segment.
    pub fn dashed_line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        let _ = writeln!(
            self.body,
            "<line x1=\"{x1:.2}\" y1=\"{y1:.2}\" x2=\"{x2:.2}\" y2=\"{y2:.2}\" stroke=\"{stroke}\" stroke-width=\"{width}\" stroke-dasharray=\"6 4\"/>"
        );
    }

    /// Filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) {
        let _ = writeln!(
            self.body,
            "<circle cx=\"{cx:.2}\" cy=\"{cy:.2}\" r=\"{r:.2}\" fill=\"{fill}\"/>"
        );
    }

    /// Polyline through the given points.
    pub fn polyline(&mut self, points: &[(f64, f64)], stroke: &str, width: f64) {
        if points.is_empty() {
            return;
        }
        let pts: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("{x:.2},{y:.2}"))
            .collect();
        let _ = writeln!(
            self.body,
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{stroke}\" stroke-width=\"{width}\"/>",
            pts.join(" ")
        );
    }

    /// Text anchored at `(x, y)`. `anchor` is `start`, `middle`, or `end`.
    pub fn text(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str, fill: &str) {
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size}\" text-anchor=\"{anchor}\" fill=\"{fill}\" font-family=\"sans-serif\">{}</text>",
            escape(content)
        );
    }

    /// Text rotated 90° counter-clockwise around its anchor.
    pub fn vtext(&mut self, x: f64, y: f64, content: &str, size: f64, anchor: &str, fill: &str) {
        let _ = writeln!(
            self.body,
            "<text x=\"{x:.2}\" y=\"{y:.2}\" font-size=\"{size}\" text-anchor=\"{anchor}\" fill=\"{fill}\" font-family=\"sans-serif\" transform=\"rotate(-90 {x:.2} {y:.2})\">{}</text>",
            escape(content)
        );
    }

    /// Finish the document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{:.0}\" height=\"{:.0}\" viewBox=\"0 0 {:.0} {:.0}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// A linear map from data space `[lo, hi]` to pixel space `[p0, p1]`
/// (pixel range may be inverted for y axes).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Data-space lower bound.
    pub lo: f64,
    /// Data-space upper bound.
    pub hi: f64,
    /// Pixel coordinate of `lo`.
    pub p0: f64,
    /// Pixel coordinate of `hi`.
    pub p1: f64,
}

impl Scale {
    /// Build a scale; degenerate data ranges are padded.
    pub fn new(lo: f64, hi: f64, p0: f64, p1: f64) -> Scale {
        let (lo, hi) = if (hi - lo).abs() < 1e-300 {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        Scale { lo, hi, p0, p1 }
    }

    /// Map a data value to pixels.
    pub fn map(&self, v: f64) -> f64 {
        self.p0 + (v - self.lo) / (self.hi - self.lo) * (self.p1 - self.p0)
    }
}

/// "Nice" tick positions covering `[lo, hi]` with about `n` ticks.
pub fn ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if !(lo.is_finite() && hi.is_finite()) || hi <= lo || n == 0 {
        return vec![lo];
    }
    let raw_step = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw_step.log10().floor());
    let norm = raw_step / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (lo / step).ceil() * step;
    let mut out = Vec::new();
    let mut t = start;
    while t <= hi + step * 1e-9 {
        // Snap tiny float error to zero.
        out.push(if t.abs() < step * 1e-9 { 0.0 } else { t });
        t += step;
    }
    out
}

/// Format a tick label compactly.
pub fn tick_label(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.1e}")
    } else if v == v.trunc() {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_document_well_formed() {
        let mut c = SvgCanvas::new(100.0, 50.0);
        c.line(0.0, 0.0, 10.0, 10.0, "#000", 1.0);
        c.circle(5.0, 5.0, 2.0, "#f00");
        c.text(1.0, 1.0, "a<b&c", 10.0, "start", "#000");
        c.polyline(&[(0.0, 0.0), (1.0, 1.0)], "#00f", 1.5);
        let s = c.finish();
        assert!(s.starts_with("<svg"));
        assert!(s.ends_with("</svg>\n"));
        assert!(s.contains("a&lt;b&amp;c"));
        assert_eq!(s.matches("<line").count(), 1);
    }

    #[test]
    fn scale_maps_linearly() {
        let s = Scale::new(0.0, 10.0, 100.0, 200.0);
        assert_eq!(s.map(0.0), 100.0);
        assert_eq!(s.map(10.0), 200.0);
        assert_eq!(s.map(5.0), 150.0);
        // Inverted pixel range (y axis).
        let y = Scale::new(0.0, 1.0, 200.0, 0.0);
        assert_eq!(y.map(1.0), 0.0);
    }

    #[test]
    fn degenerate_scale_padded() {
        let s = Scale::new(3.0, 3.0, 0.0, 100.0);
        assert!(s.map(3.0).is_finite());
        assert!((s.map(3.0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn tick_positions_nice() {
        let t = ticks(0.0, 10.0, 5);
        assert_eq!(t, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let t2 = ticks(0.0, 0.97, 4);
        assert!(t2.contains(&0.0));
        assert!(t2.len() >= 3);
        assert_eq!(ticks(5.0, 5.0, 4), vec![5.0]);
    }

    #[test]
    fn tick_labels_compact() {
        assert_eq!(tick_label(0.0), "0");
        assert_eq!(tick_label(2.0), "2");
        assert_eq!(tick_label(0.25), "0.25");
        assert_eq!(tick_label(1.5e7), "1.5e7");
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(palette(0), palette(8));
        assert_ne!(palette(0), palette(1));
    }
}
