//! Terminal (plain-text) heatmap and histogram renderers — the quick
//! built-in visualizations of paper §4.3.1 in a non-graphical medium.

use thicket_stats::Histogram;

const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];

/// Render a labelled matrix as a text heatmap. Values are normalized
/// per-column (matching the paper's Figure 12, where each metric gets its
/// own color scale because magnitudes differ).
pub fn text_heatmap(row_labels: &[String], col_labels: &[String], values: &[Vec<f64>]) -> String {
    assert_eq!(row_labels.len(), values.len(), "one row label per row");
    assert!(
        values.iter().all(|r| r.len() == col_labels.len()),
        "ragged heatmap rows"
    );
    let label_w = row_labels.iter().map(String::len).max().unwrap_or(0);
    let col_w = col_labels.iter().map(|c| c.len().max(9)).collect::<Vec<_>>();

    // Per-column min/max.
    let ncols = col_labels.len();
    let mut lo = vec![f64::INFINITY; ncols];
    let mut hi = vec![f64::NEG_INFINITY; ncols];
    for row in values {
        for (j, v) in row.iter().enumerate() {
            if v.is_finite() {
                lo[j] = lo[j].min(*v);
                hi[j] = hi[j].max(*v);
            }
        }
    }

    let mut out = String::new();
    out.push_str(&" ".repeat(label_w));
    for (j, c) in col_labels.iter().enumerate() {
        out.push_str(&format!("  {:>width$}", c, width = col_w[j]));
    }
    out.push('\n');
    for (i, row) in values.iter().enumerate() {
        out.push_str(&format!("{:<width$}", row_labels[i], width = label_w));
        for (j, v) in row.iter().enumerate() {
            let norm = if hi[j] > lo[j] {
                (v - lo[j]) / (hi[j] - lo[j])
            } else {
                0.5
            };
            let shade = SHADES[((norm * 4.0).round() as usize).min(4)];
            let cell = format!("{shade}{shade} {v:.4}");
            out.push_str(&format!("  {:>width$}", cell, width = col_w[j]));
        }
        out.push('\n');
    }
    out
}

/// Render a histogram as horizontal text bars.
pub fn text_histogram(hist: &Histogram, width: usize) -> String {
    let max_count = hist.counts.iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for (i, &count) in hist.counts.iter().enumerate() {
        let bar_len = count * width / max_count;
        out.push_str(&format!(
            "[{:>10.4}, {:>10.4})  {:<width$} {}\n",
            hist.edges[i],
            hist.edges[i + 1],
            "█".repeat(bar_len),
            count,
            width = width,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_stats::histogram;

    #[test]
    fn heatmap_layout() {
        let s = text_heatmap(
            &["Apps_VOL3D".into(), "Lcals_HYDRO_1D".into()],
            &["std".into()],
            &[vec![0.1], vec![0.9]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("std"));
        assert!(lines[1].starts_with("Apps_VOL3D"));
        // The max cell uses the darkest shade, the min the lightest.
        assert!(lines[2].contains('█'));
        assert!(!lines[1].contains('█'));
    }

    #[test]
    fn heatmap_constant_column_mid_shade() {
        let s = text_heatmap(
            &["a".into(), "b".into()],
            &["m".into()],
            &[vec![2.0], vec![2.0]],
        );
        assert_eq!(s.matches('▒').count(), 4);
    }

    #[test]
    #[should_panic(expected = "one row label")]
    fn heatmap_label_mismatch_panics() {
        text_heatmap(&["a".into()], &["m".into()], &[vec![1.0], vec![2.0]]);
    }

    #[test]
    fn histogram_bars_scale() {
        let h = histogram(&[0.0, 0.1, 0.2, 0.9], 2).unwrap();
        let s = text_histogram(&h, 20);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        // First bin (3 samples) has the full-width bar.
        assert_eq!(lines[0].matches('█').count(), 20);
        assert!(lines[1].matches('█').count() < 20);
        assert!(lines[0].ends_with('3'));
    }
}
