//! Self-contained HTML report assembly — the static stand-in for the
//! paper's interactive Jupyter-notebook visualizations (§4.3.2): every
//! chart and table of an analysis session in one file a browser can open.

/// Builder for a single-file HTML report with embedded SVGs and
/// preformatted tables.
#[derive(Debug, Clone)]
pub struct HtmlReport {
    title: String,
    sections: Vec<Section>,
}

#[derive(Debug, Clone)]
struct Section {
    heading: String,
    blocks: Vec<Block>,
}

#[derive(Debug, Clone)]
enum Block {
    Paragraph(String),
    Preformatted(String),
    Svg(String),
}

impl HtmlReport {
    /// New report with a page title.
    pub fn new(title: impl Into<String>) -> Self {
        HtmlReport {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Start a new section.
    pub fn section(&mut self, heading: impl Into<String>) -> &mut Self {
        self.sections.push(Section {
            heading: heading.into(),
            blocks: Vec::new(),
        });
        self
    }

    fn current(&mut self) -> &mut Section {
        if self.sections.is_empty() {
            self.sections.push(Section {
                heading: String::new(),
                blocks: Vec::new(),
            });
        }
        self.sections.last_mut().expect("non-empty")
    }

    /// Add prose to the current section.
    pub fn paragraph(&mut self, text: impl Into<String>) -> &mut Self {
        let block = Block::Paragraph(text.into());
        self.current().blocks.push(block);
        self
    }

    /// Add a preformatted block (tables, trees) to the current section.
    pub fn pre(&mut self, text: impl Into<String>) -> &mut Self {
        let block = Block::Preformatted(text.into());
        self.current().blocks.push(block);
        self
    }

    /// Embed an SVG document (as produced by the chart constructors)
    /// inline in the current section.
    pub fn svg(&mut self, svg: impl Into<String>) -> &mut Self {
        let block = Block::Svg(svg.into());
        self.current().blocks.push(block);
        self
    }

    /// Number of sections so far.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// `true` when no section has been added.
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Render the complete HTML document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
        out.push_str(&format!("<title>{}</title>\n", escape(&self.title)));
        out.push_str(
            "<style>\n\
             body { font-family: sans-serif; margin: 2em auto; max-width: 70em; color: #222; }\n\
             h1 { border-bottom: 2px solid #0072B2; padding-bottom: .2em; }\n\
             h2 { color: #0072B2; margin-top: 2em; }\n\
             pre { background: #f6f8fa; padding: 1em; overflow-x: auto; font-size: 12px; }\n\
             figure { margin: 1em 0; }\n\
             </style>\n</head>\n<body>\n",
        );
        out.push_str(&format!("<h1>{}</h1>\n", escape(&self.title)));
        for s in &self.sections {
            if !s.heading.is_empty() {
                out.push_str(&format!("<h2>{}</h2>\n", escape(&s.heading)));
            }
            for b in &s.blocks {
                match b {
                    Block::Paragraph(t) => out.push_str(&format!("<p>{}</p>\n", escape(t))),
                    Block::Preformatted(t) => {
                        out.push_str(&format!("<pre>{}</pre>\n", escape(t)))
                    }
                    // SVG is structured markup we produced; embed as-is.
                    Block::Svg(svg) => out.push_str(&format!("<figure>\n{svg}</figure>\n")),
                }
            }
        }
        out.push_str("</body>\n</html>\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_sections_in_order() {
        let mut r = HtmlReport::new("Study <1>");
        r.section("Scaling")
            .paragraph("both clusters scale")
            .pre("a  b\n1  2");
        r.section("Models").svg("<svg xmlns=\"x\"></svg>");
        let html = r.render();
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<title>Study &lt;1&gt;</title>"));
        let scaling = html.find("Scaling").unwrap();
        let models = html.find("Models").unwrap();
        assert!(scaling < models);
        assert!(html.contains("<pre>a  b\n1  2</pre>"));
        assert!(html.contains("<figure>\n<svg"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn blocks_without_section_get_default() {
        let mut r = HtmlReport::new("t");
        r.paragraph("orphan");
        assert!(r.render().contains("<p>orphan</p>"));
        assert!(!r.is_empty());
    }

    #[test]
    fn text_is_escaped_but_svg_is_not() {
        let mut r = HtmlReport::new("t");
        r.section("s").pre("if a < b & c > d");
        r.svg("<svg><rect/></svg>");
        let html = r.render();
        assert!(html.contains("a &lt; b &amp; c &gt; d"));
        assert!(html.contains("<svg><rect/></svg>"));
    }
}
