//! Flame-graph rendering of a single profile's call tree: node width ∝
//! inclusive metric, depth stacked downward — the classic single-run
//! hot-spot view complementing the ensemble charts.

use crate::svg::{palette, SvgCanvas};
use thicket_graph::{Graph, NodeId};

/// Render a flame graph. `metric` must be *inclusive-like*: a node's
/// value should be at least the sum of its children's (children are
/// clamped into the parent's span otherwise). Nodes without a value take
/// the sum of their children. Returns the SVG document.
pub fn flame_graph<F>(graph: &Graph, metric: F, title: &str) -> String
where
    F: Fn(NodeId) -> Option<f64>,
{
    let width = 960.0;
    let row_h = 22.0;
    let top = 50.0;

    // Effective inclusive value per node (fill gaps bottom-up).
    let mut value = vec![0.0f64; graph.len()];
    let order = graph.preorder();
    for &id in order.iter().rev() {
        let child_sum: f64 = graph.node(id).children().iter().map(|c| value[c.index()]).sum();
        value[id.index()] = metric(id).unwrap_or(0.0).max(child_sum);
    }
    let total: f64 = graph.roots().iter().map(|r| value[r.index()]).sum();
    let max_depth = order
        .iter()
        .map(|&id| graph.depth(id))
        .max()
        .unwrap_or(0);
    let height = top + row_h * (max_depth + 1) as f64 + 30.0;
    let mut canvas = SvgCanvas::new(width, height);
    canvas.text(width / 2.0, 24.0, title, 13.0, "middle", "#000000");
    if total <= 0.0 {
        canvas.text(width / 2.0, top + 20.0, "(no data)", 11.0, "middle", "#666666");
        return canvas.finish();
    }

    // Recursive layout: each node gets [x0, x1) within its parent.
    #[allow(clippy::too_many_arguments)]
    fn layout(
        g: &Graph,
        id: NodeId,
        x0: f64,
        x1: f64,
        depth: usize,
        value: &[f64],
        canvas: &mut SvgCanvas,
        row_h: f64,
        top: f64,
    ) {
        let w = x1 - x0;
        if w < 0.5 {
            return; // sub-pixel: skip the whole subtree
        }
        let y = top + depth as f64 * row_h;
        let color = palette(depth);
        canvas.rect(x0, y, w - 0.5, row_h - 2.0, color, Some("#ffffff"));
        // Label if it fits (~6.5 px/char at 10 px font).
        let name = g.node(id).name();
        let fit = (w / 6.5) as usize;
        if fit >= 2 {
            let label: String = if name.len() <= fit {
                name.to_string()
            } else {
                format!("{}..", &name[..fit.saturating_sub(2).max(1)])
            };
            canvas.text(x0 + 3.0, y + row_h - 8.0, &label, 10.0, "start", "#ffffff");
        }
        // Children share the span proportionally, left-aligned.
        let mine = value[id.index()].max(1e-300);
        let mut cx = x0;
        for &c in g.node(id).children() {
            let cw = w * (value[c.index()] / mine).min(1.0);
            layout(g, c, cx, cx + cw, depth + 1, value, canvas, row_h, top);
            cx += cw;
        }
    }

    let mut x = 20.0;
    let usable = width - 40.0;
    for &root in graph.roots() {
        let w = usable * value[root.index()] / total;
        layout(graph, root, x, x + w, 0, &value, &mut canvas, row_h, top);
        x += w;
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::Frame;

    fn tree() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let main = g.add_root(Frame::named("main"));
        let a = g.add_child(main, Frame::named("solve"));
        let b = g.add_child(main, Frame::named("io"));
        let c = g.add_child(a, Frame::named("kernel"));
        (g, vec![main, a, b, c])
    }

    #[test]
    fn renders_one_rect_per_visible_node() {
        let (g, ids) = tree();
        let vals = [10.0, 7.0, 3.0, 6.0];
        let svg = flame_graph(
            &g,
            |id| ids.iter().position(|&x| x == id).map(|i| vals[i]),
            "flame",
        );
        // Background + 4 node rects.
        assert_eq!(svg.matches("<rect").count(), 5);
        assert!(svg.contains(">main</text>"));
        assert!(svg.contains(">solve</text>"));
    }

    #[test]
    fn missing_values_fill_from_children() {
        let (g, ids) = tree();
        // Only the leaf has a value; ancestors inherit it.
        let svg = flame_graph(
            &g,
            |id| if id == ids[3] { Some(5.0) } else { None },
            "flame",
        );
        assert!(svg.contains(">main</text>"));
        assert!(svg.contains(">kernel</text>"));
        // io has zero width: not drawn.
        assert!(!svg.contains(">io</text>"));
    }

    #[test]
    fn empty_graph_no_data() {
        let g = Graph::new();
        let svg = flame_graph(&g, |_| None, "flame");
        assert!(svg.contains("(no data)"));
    }

    #[test]
    fn long_names_truncated() {
        let mut g = Graph::new();
        g.add_root(Frame::named(
            "a_very_long_function_name_that_cannot_possibly_fit_in_its_box_at_any_reasonable_zoom_level_whatsoever_really_truly_honestly_it_will_not_fit_anywhere_nice",
        ));
        let svg = flame_graph(&g, |_| Some(1.0), "flame");
        assert!(svg.contains(".."));
    }
}
