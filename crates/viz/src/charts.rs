//! Chart constructors over the SVG canvas: every figure type the paper's
//! evaluation uses.

use crate::svg::{palette, tick_label, ticks, Scale, SvgCanvas};
use thicket_stats::Histogram;

/// Axis transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisScale {
    /// Plain linear axis.
    Linear,
    /// log₂ axis (the paper's strong-scaling plots, Figure 17).
    Log2,
}

impl AxisScale {
    fn fwd(self, v: f64) -> f64 {
        match self {
            AxisScale::Linear => v,
            AxisScale::Log2 => v.max(1e-300).log2(),
        }
    }
}

/// Shared chart options.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Title above the plot.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// Pixel width.
    pub width: f64,
    /// Pixel height.
    pub height: f64,
    /// X-axis transform.
    pub x_scale: AxisScale,
    /// Y-axis transform.
    pub y_scale: AxisScale,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            title: String::new(),
            x_label: String::new(),
            y_label: String::new(),
            width: 640.0,
            height: 420.0,
            x_scale: AxisScale::Linear,
            y_scale: AxisScale::Linear,
        }
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
    /// Draw dashed (the scaling plots' "ideal" reference lines).
    pub dashed: bool,
}

impl Series {
    /// A solid series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            dashed: false,
        }
    }

    /// A dashed series.
    pub fn dashed(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            dashed: true,
        }
    }
}

const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 55.0;

struct Frame2D {
    canvas: SvgCanvas,
    xs: Scale,
    ys: Scale,
    x_axis: AxisScale,
    y_axis: AxisScale,
}

fn frame(series: &[Series], opts: &ChartOptions) -> Frame2D {
    let mut canvas = SvgCanvas::new(opts.width, opts.height);
    let pts: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter())
        .map(|&(x, y)| (opts.x_scale.fwd(x), opts.y_scale.fwd(y)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    let (mut xlo, mut xhi) = bounds(pts.iter().map(|p| p.0));
    let (mut ylo, mut yhi) = bounds(pts.iter().map(|p| p.1));
    pad(&mut xlo, &mut xhi);
    pad(&mut ylo, &mut yhi);
    let xs = Scale::new(xlo, xhi, MARGIN_L, opts.width - MARGIN_R);
    let ys = Scale::new(ylo, yhi, opts.height - MARGIN_B, MARGIN_T);

    // Axis lines.
    canvas.line(
        MARGIN_L,
        opts.height - MARGIN_B,
        opts.width - MARGIN_R,
        opts.height - MARGIN_B,
        "#333333",
        1.0,
    );
    canvas.line(MARGIN_L, MARGIN_T, MARGIN_L, opts.height - MARGIN_B, "#333333", 1.0);

    // Ticks and grid.
    for t in ticks(xlo, xhi, 6) {
        let px = xs.map(t);
        canvas.line(px, opts.height - MARGIN_B, px, opts.height - MARGIN_B + 4.0, "#333333", 1.0);
        canvas.line(px, MARGIN_T, px, opts.height - MARGIN_B, "#eeeeee", 0.5);
        let label = match opts.x_scale {
            AxisScale::Linear => tick_label(t),
            AxisScale::Log2 => format!("2^{}", tick_label(t)),
        };
        canvas.text(px, opts.height - MARGIN_B + 16.0, &label, 10.0, "middle", "#333333");
    }
    for t in ticks(ylo, yhi, 6) {
        let py = ys.map(t);
        canvas.line(MARGIN_L - 4.0, py, MARGIN_L, py, "#333333", 1.0);
        canvas.line(MARGIN_L, py, opts.width - MARGIN_R, py, "#eeeeee", 0.5);
        let label = match opts.y_scale {
            AxisScale::Linear => tick_label(t),
            AxisScale::Log2 => format!("2^{}", tick_label(t)),
        };
        canvas.text(MARGIN_L - 7.0, py + 3.0, &label, 10.0, "end", "#333333");
    }

    // Labels and title.
    canvas.text(opts.width / 2.0, 20.0, &opts.title, 13.0, "middle", "#000000");
    canvas.text(
        (MARGIN_L + opts.width - MARGIN_R) / 2.0,
        opts.height - 14.0,
        &opts.x_label,
        11.0,
        "middle",
        "#000000",
    );
    canvas.vtext(16.0, opts.height / 2.0, &opts.y_label, 11.0, "middle", "#000000");

    Frame2D {
        canvas,
        xs,
        ys,
        x_axis: opts.x_scale,
        y_axis: opts.y_scale,
    }
}

fn bounds(vals: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn pad(lo: &mut f64, hi: &mut f64) {
    let span = (*hi - *lo).max(1e-12);
    *lo -= span * 0.05;
    *hi += span * 0.05;
}

fn legend(canvas: &mut SvgCanvas, series: &[Series]) {
    let x = canvas.width() - 180.0;
    let mut y = MARGIN_T + 8.0;
    for (i, s) in series.iter().enumerate() {
        if s.dashed {
            canvas.dashed_line(x, y - 4.0, x + 22.0, y - 4.0, palette(i), 2.0);
        } else {
            canvas.line(x, y - 4.0, x + 22.0, y - 4.0, palette(i), 2.0);
        }
        canvas.text(x + 28.0, y, &s.name, 10.0, "start", "#000000");
        y += 15.0;
    }
}

/// Scatter plot of one or more series (Figures 10 and 18's scatterplots).
pub fn scatter_chart(series: &[Series], opts: &ChartOptions) -> String {
    let mut f = frame(series, opts);
    for (i, s) in series.iter().enumerate() {
        for &(x, y) in &s.points {
            f.canvas.circle(
                f.xs.map(f.x_axis.fwd(x)),
                f.ys.map(f.y_axis.fwd(y)),
                3.5,
                palette(i),
            );
        }
    }
    legend(&mut f.canvas, series);
    f.canvas.finish()
}

/// Line chart with per-series markers (Figures 11 and 17).
pub fn line_chart(series: &[Series], opts: &ChartOptions) -> String {
    let mut f = frame(series, opts);
    for (i, s) in series.iter().enumerate() {
        let mut pts: Vec<(f64, f64)> = s
            .points
            .iter()
            .map(|&(x, y)| (f.xs.map(f.x_axis.fwd(x)), f.ys.map(f.y_axis.fwd(y))))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        if s.dashed {
            for w in pts.windows(2) {
                f.canvas
                    .dashed_line(w[0].0, w[0].1, w[1].0, w[1].1, palette(i), 1.5);
            }
        } else {
            f.canvas.polyline(&pts, palette(i), 2.0);
            for &(px, py) in &pts {
                f.canvas.circle(px, py, 3.0, palette(i));
            }
        }
    }
    legend(&mut f.canvas, series);
    f.canvas.finish()
}

/// Histogram bar chart (Figure 12 insets).
pub fn histogram_chart(hist: &Histogram, title: &str, x_label: &str) -> String {
    let opts = ChartOptions {
        title: title.to_string(),
        x_label: x_label.to_string(),
        y_label: "count".to_string(),
        ..ChartOptions::default()
    };
    let max_count = hist.counts.iter().copied().max().unwrap_or(1).max(1) as f64;
    let series = vec![Series::new(
        "counts",
        vec![
            (hist.edges[0], 0.0),
            (*hist.edges.last().expect("non-empty edges"), max_count),
        ],
    )];
    let mut f = frame(&series, &opts);
    for (i, &count) in hist.counts.iter().enumerate() {
        let x0 = f.xs.map(hist.edges[i]);
        let x1 = f.xs.map(hist.edges[i + 1]);
        let y0 = f.ys.map(0.0);
        let y1 = f.ys.map(count as f64);
        f.canvas.rect(
            x0,
            y1,
            (x1 - x0).max(1.0),
            (y0 - y1).max(0.0),
            palette(0),
            Some("#ffffff"),
        );
    }
    f.canvas.finish()
}

/// Labelled heatmap with per-column normalization (Figure 12).
pub fn heatmap_chart(
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
    title: &str,
) -> String {
    let cell_w = 110.0;
    let cell_h = 28.0;
    let left = 220.0;
    let top = 60.0;
    let width = left + cell_w * col_labels.len() as f64 + 20.0;
    let height = top + cell_h * row_labels.len() as f64 + 20.0;
    let mut canvas = SvgCanvas::new(width, height);
    canvas.text(width / 2.0, 24.0, title, 13.0, "middle", "#000000");

    // Per-column normalization (metrics have very different scales).
    let ncols = col_labels.len();
    let mut lo = vec![f64::INFINITY; ncols];
    let mut hi = vec![f64::NEG_INFINITY; ncols];
    for row in values {
        for (j, v) in row.iter().enumerate() {
            if v.is_finite() {
                lo[j] = lo[j].min(*v);
                hi[j] = hi[j].max(*v);
            }
        }
    }
    for (j, cl) in col_labels.iter().enumerate() {
        canvas.text(
            left + cell_w * (j as f64 + 0.5),
            top - 10.0,
            cl,
            10.0,
            "middle",
            "#000000",
        );
    }
    for (i, rl) in row_labels.iter().enumerate() {
        let y = top + cell_h * i as f64;
        canvas.text(left - 8.0, y + cell_h / 2.0 + 3.0, rl, 10.0, "end", "#000000");
        for (j, v) in values[i].iter().enumerate() {
            let norm = if hi[j] > lo[j] {
                ((v - lo[j]) / (hi[j] - lo[j])).clamp(0.0, 1.0)
            } else {
                0.5
            };
            let shade = (255.0 - norm * 180.0) as u8;
            let fill = format!("#{0:02x}{0:02x}ff", shade);
            let x = left + cell_w * j as f64;
            canvas.rect(x, y, cell_w - 2.0, cell_h - 2.0, &fill, Some("#cccccc"));
            canvas.text(
                x + cell_w / 2.0,
                y + cell_h / 2.0 + 3.0,
                &format!("{v:.4}"),
                9.0,
                "middle",
                "#000000",
            );
        }
    }
    canvas.finish()
}

/// One stacked bar: a label plus one value per segment category.
#[derive(Debug, Clone)]
pub struct BarStack {
    /// Bar label (below the bar).
    pub label: String,
    /// One value per segment (same order as the category list).
    pub segments: Vec<f64>,
}

/// Grouped stacked-bar chart — the top-down visualization of Figure 14.
/// `groups` pairs a group title (e.g. kernel name) with its bars (e.g.
/// one per problem size); `categories` names the stacked segments
/// (retiring / frontend / backend / bad speculation).
pub fn stacked_bars(
    categories: &[String],
    groups: &[(String, Vec<BarStack>)],
    title: &str,
) -> String {
    let bar_w = 34.0;
    let bar_h = 150.0;
    let gap = 10.0;
    let group_gap = 40.0;
    let left = 60.0;
    let top = 70.0;
    let total_bars: usize = groups.iter().map(|(_, bars)| bars.len()).sum();
    let width = left
        + total_bars as f64 * (bar_w + gap)
        + groups.len() as f64 * group_gap
        + 180.0;
    let height = top + bar_h + 80.0;
    let mut canvas = SvgCanvas::new(width, height);
    canvas.text(width / 2.0, 24.0, title, 13.0, "middle", "#000000");

    // Legend.
    let mut lx = left;
    for (i, cat) in categories.iter().enumerate() {
        canvas.rect(lx, 36.0, 12.0, 12.0, palette(i), None);
        canvas.text(lx + 16.0, 46.0, cat, 10.0, "start", "#000000");
        lx += 16.0 + cat.len() as f64 * 6.5 + 18.0;
    }

    let mut x = left;
    for (gname, bars) in groups {
        let gx0 = x;
        for bar in bars {
            let total: f64 = bar.segments.iter().sum();
            let mut y = top + bar_h;
            for (i, seg) in bar.segments.iter().enumerate() {
                let h = if total > 0.0 { seg / total * bar_h } else { 0.0 };
                y -= h;
                canvas.rect(x, y, bar_w, h, palette(i), Some("#ffffff"));
            }
            canvas.text(
                x + bar_w / 2.0,
                top + bar_h + 14.0,
                &bar.label,
                8.0,
                "middle",
                "#333333",
            );
            x += bar_w + gap;
        }
        canvas.text(
            (gx0 + x - gap) / 2.0,
            top + bar_h + 34.0,
            gname,
            10.0,
            "middle",
            "#000000",
        );
        x += group_gap;
    }
    canvas.finish()
}

/// One parallel-coordinates axis.
#[derive(Debug, Clone)]
pub struct PcpAxis {
    /// Axis name (metadata column).
    pub name: String,
    /// One value per profile (line).
    pub values: Vec<f64>,
}

/// Parallel coordinate plot (Figure 18): one vertical axis per metadata
/// variable, one polyline per profile; `color_class[i]` picks the line
/// color (e.g. 0 = CTS, 1 = AWS).
pub fn parallel_coordinates(axes: &[PcpAxis], color_class: &[usize], title: &str) -> String {
    assert!(!axes.is_empty(), "parallel_coordinates needs axes");
    let n = axes[0].values.len();
    assert!(
        axes.iter().all(|a| a.values.len() == n),
        "all axes need one value per profile"
    );
    assert_eq!(color_class.len(), n, "one color class per profile");

    let width = 160.0 * axes.len() as f64 + 80.0;
    let height = 380.0;
    let top = 60.0;
    let bottom = height - 50.0;
    let mut canvas = SvgCanvas::new(width, height);
    canvas.text(width / 2.0, 24.0, title, 13.0, "middle", "#000000");

    let axis_x: Vec<f64> = (0..axes.len()).map(|i| 80.0 + 160.0 * i as f64).collect();
    let scales: Vec<Scale> = axes
        .iter()
        .map(|a| {
            let (lo, hi) = bounds(a.values.iter().copied().filter(|v| v.is_finite()));
            Scale::new(lo, hi, bottom, top)
        })
        .collect();

    // Axes with min/max labels.
    for (i, a) in axes.iter().enumerate() {
        canvas.line(axis_x[i], top, axis_x[i], bottom, "#333333", 1.0);
        canvas.text(axis_x[i], top - 10.0, &a.name, 10.0, "middle", "#000000");
        canvas.text(
            axis_x[i],
            bottom + 14.0,
            &tick_label(scales[i].lo),
            9.0,
            "middle",
            "#666666",
        );
        canvas.text(
            axis_x[i],
            top - 0.0 + 10.0,
            &tick_label(scales[i].hi),
            9.0,
            "middle",
            "#666666",
        );
    }

    // Profile polylines.
    for (row, &class) in color_class.iter().enumerate() {
        let pts: Vec<(f64, f64)> = axes
            .iter()
            .enumerate()
            .map(|(i, a)| (axis_x[i], scales[i].map(a.values[row])))
            .collect();
        canvas.polyline(&pts, palette(class), 1.2);
    }
    canvas.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_stats::histogram;

    fn opts() -> ChartOptions {
        ChartOptions {
            title: "t".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            ..ChartOptions::default()
        }
    }

    #[test]
    fn scatter_renders_all_points() {
        let s = vec![
            Series::new("a", vec![(1.0, 2.0), (3.0, 4.0)]),
            Series::new("b", vec![(2.0, 1.0)]),
        ];
        let svg = scatter_chart(&s, &opts());
        assert_eq!(svg.matches("<circle").count(), 3);
        assert!(svg.contains(">a</text>"));
        assert!(svg.contains(">b</text>"));
    }

    #[test]
    fn line_chart_sorts_and_marks() {
        let s = vec![Series::new("run", vec![(4.0, 1.0), (1.0, 4.0), (2.0, 2.0)])];
        let svg = line_chart(&s, &opts());
        assert_eq!(svg.matches("<polyline").count(), 1);
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn dashed_ideal_lines() {
        let s = vec![
            Series::new("measured", vec![(1.0, 8.0), (2.0, 5.0)]),
            Series::dashed("ideal", vec![(1.0, 8.0), (2.0, 4.0)]),
        ];
        let svg = line_chart(&s, &opts());
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn log2_tick_labels() {
        let s = vec![Series::new(
            "scaling",
            vec![(1.0, 32.0), (2.0, 16.0), (4.0, 8.0), (64.0, 1.0)],
        )];
        let o = ChartOptions {
            x_scale: AxisScale::Log2,
            y_scale: AxisScale::Log2,
            ..opts()
        };
        let svg = line_chart(&s, &o);
        assert!(svg.contains("2^"));
    }

    #[test]
    fn histogram_chart_bar_count() {
        let h = histogram(&[0.0, 0.5, 1.0, 1.5, 2.0], 4).unwrap();
        let svg = histogram_chart(&h, "dist", "time");
        // 4 bars + background rect.
        assert_eq!(svg.matches("<rect").count(), 5);
    }

    #[test]
    fn heatmap_cells_and_labels() {
        let svg = heatmap_chart(
            &["r1".into(), "r2".into()],
            &["c1".into(), "c2".into(), "c3".into()],
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
            "hm",
        );
        // 6 cells + background.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains(">r1</text>"));
        assert!(svg.contains(">c3</text>"));
    }

    #[test]
    fn stacked_bars_segments() {
        let cats = vec!["Retiring".to_string(), "Backend".to_string()];
        let groups = vec![(
            "Apps_VOL3D".to_string(),
            vec![
                BarStack {
                    label: "1M".into(),
                    segments: vec![0.4, 0.6],
                },
                BarStack {
                    label: "4M".into(),
                    segments: vec![0.3, 0.7],
                },
            ],
        )];
        let svg = stacked_bars(&cats, &groups, "top-down");
        // background + 2 legend swatches + 4 segments.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains("Apps_VOL3D"));
    }

    #[test]
    fn pcp_one_line_per_profile() {
        let axes = vec![
            PcpAxis {
                name: "ranks".into(),
                values: vec![36.0, 72.0, 144.0],
            },
            PcpAxis {
                name: "walltime".into(),
                values: vec![100.0, 60.0, 35.0],
            },
        ];
        let svg = parallel_coordinates(&axes, &[0, 0, 1], "meta");
        assert_eq!(svg.matches("<polyline").count(), 3);
        assert!(svg.contains(">ranks</text>"));
    }

    #[test]
    #[should_panic(expected = "one color class")]
    fn pcp_color_mismatch_panics() {
        let axes = vec![PcpAxis {
            name: "a".into(),
            values: vec![1.0],
        }];
        parallel_coordinates(&axes, &[], "x");
    }

    #[test]
    fn empty_series_render() {
        let svg = scatter_chart(&[Series::new("none", vec![])], &opts());
        assert!(svg.contains("<svg"));
    }
}

/// Box-and-whisker plot: one box per labelled sample (quartiles, median,
/// 1.5·IQR whiskers, outlier dots) — handy for comparing run-time
/// distributions across ensemble configurations.
pub fn box_plot(groups: &[(String, Vec<f64>)], title: &str, y_label: &str) -> String {
    let box_w = 46.0;
    let gap = 30.0;
    let left = 80.0;
    let top = 50.0;
    let plot_h = 280.0;
    let width = left + groups.len() as f64 * (box_w + gap) + 40.0;
    let height = top + plot_h + 60.0;
    let mut canvas = SvgCanvas::new(width, height);
    canvas.text(width / 2.0, 24.0, title, 13.0, "middle", "#000000");
    canvas.vtext(18.0, top + plot_h / 2.0, y_label, 11.0, "middle", "#000000");

    let all: Vec<f64> = groups
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    let (lo, hi) = bounds(all.iter().copied());
    let ys = Scale::new(lo - (hi - lo).max(1e-12) * 0.05, hi + (hi - lo).max(1e-12) * 0.05,
                        top + plot_h, top);

    // Y axis with ticks.
    canvas.line(left - 10.0, top, left - 10.0, top + plot_h, "#333333", 1.0);
    for t in ticks(lo, hi, 5) {
        let py = ys.map(t);
        canvas.line(left - 14.0, py, left - 10.0, py, "#333333", 1.0);
        canvas.text(left - 17.0, py + 3.0, &tick_label(t), 9.0, "end", "#333333");
    }

    for (i, (label, values)) in groups.iter().enumerate() {
        let x = left + i as f64 * (box_w + gap);
        let cx = x + box_w / 2.0;
        canvas.text(cx, top + plot_h + 18.0, label, 10.0, "middle", "#000000");
        let clean: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        if clean.is_empty() {
            continue;
        }
        let q1 = thicket_stats::percentile(&clean, 25.0).expect("non-empty");
        let q2 = thicket_stats::percentile(&clean, 50.0).expect("non-empty");
        let q3 = thicket_stats::percentile(&clean, 75.0).expect("non-empty");
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        let whisk_lo = clean.iter().copied().filter(|v| *v >= lo_fence).fold(f64::INFINITY, f64::min);
        let whisk_hi = clean.iter().copied().filter(|v| *v <= hi_fence).fold(f64::NEG_INFINITY, f64::max);

        // Whiskers.
        canvas.line(cx, ys.map(whisk_lo), cx, ys.map(q1), "#333333", 1.0);
        canvas.line(cx, ys.map(q3), cx, ys.map(whisk_hi), "#333333", 1.0);
        canvas.line(cx - 10.0, ys.map(whisk_lo), cx + 10.0, ys.map(whisk_lo), "#333333", 1.0);
        canvas.line(cx - 10.0, ys.map(whisk_hi), cx + 10.0, ys.map(whisk_hi), "#333333", 1.0);
        // Box + median.
        canvas.rect(
            x,
            ys.map(q3),
            box_w,
            (ys.map(q1) - ys.map(q3)).max(1.0),
            palette(i),
            Some("#333333"),
        );
        canvas.line(x, ys.map(q2), x + box_w, ys.map(q2), "#000000", 1.5);
        // Outliers.
        for &v in clean.iter().filter(|v| **v < lo_fence || **v > hi_fence) {
            canvas.circle(cx, ys.map(v), 2.5, "#666666");
        }
    }
    canvas.finish()
}

#[cfg(test)]
mod box_tests {
    use super::*;

    #[test]
    fn box_plot_draws_boxes_and_outliers() {
        let groups = vec![
            ("CTS".to_string(), vec![1.0, 1.1, 1.2, 1.3, 1.25, 5.0]), // 5.0 outlier
            ("AWS".to_string(), vec![0.8, 0.9, 0.95, 1.0]),
        ];
        let svg = box_plot(&groups, "walltime by cluster", "seconds");
        // Background + 2 boxes.
        assert_eq!(svg.matches("<rect").count(), 3);
        // The outlier dot.
        assert!(svg.matches("<circle").count() >= 1);
        assert!(svg.contains(">CTS</text>"));
    }

    #[test]
    fn box_plot_handles_empty_group() {
        let groups = vec![("empty".to_string(), vec![]), ("one".to_string(), vec![2.0])];
        let svg = box_plot(&groups, "t", "y");
        assert!(svg.contains("<svg"));
    }
}
