//! Metric-annotated call-tree rendering (Hatchet's `tree()`, Figure 8).

use thicket_graph::{Graph, NodeId};

/// Render `graph` with each node annotated by `metric` (formatted to
/// three decimals, blank when absent), in the paper's Figure 8 style:
///
/// ```text
/// 0.001 Base_CUDA
/// ├─ 0.000 Algorithm
/// │  ├─ 0.002 Algorithm_MEMCPY.block_128
/// │  └─ 0.009 Algorithm_MEMCPY.block_256
/// └─ 0.000 Algorithm_MEMSET
/// ```
pub fn render_tree<F>(graph: &Graph, metric: F) -> String
where
    F: Fn(NodeId) -> Option<f64>,
{
    render_tree_with(graph, |id| match metric(id) {
        Some(v) => format!("{v:.3} {}", graph.node(id).name()),
        None => graph.node(id).name().to_string(),
    })
}

/// Render `graph` with a fully custom per-node label.
pub fn render_tree_with<F>(graph: &Graph, label: F) -> String
where
    F: Fn(NodeId) -> String,
{
    let mut out = String::new();
    for &root in graph.roots() {
        walk(graph, root, "", true, true, &label, &mut out);
    }
    out
}

fn walk<F>(
    graph: &Graph,
    id: NodeId,
    prefix: &str,
    is_last: bool,
    is_root: bool,
    label: &F,
    out: &mut String,
) where
    F: Fn(NodeId) -> String,
{
    if is_root {
        out.push_str(&label(id));
        out.push('\n');
    } else {
        out.push_str(prefix);
        out.push_str(if is_last { "└─ " } else { "├─ " });
        out.push_str(&label(id));
        out.push('\n');
    }
    let children = graph.node(id).children();
    let child_prefix = if is_root {
        prefix.to_string()
    } else {
        format!("{prefix}{}", if is_last { "   " } else { "│  " })
    };
    for (i, &c) in children.iter().enumerate() {
        walk(
            graph,
            c,
            &child_prefix,
            i + 1 == children.len(),
            false,
            label,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::Frame;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let root = g.add_root(Frame::named("Base_CUDA"));
        let alg = g.add_child(root, Frame::named("Algorithm"));
        g.add_child(alg, Frame::named("MEMCPY"));
        g.add_child(alg, Frame::named("MEMSET"));
        g.add_child(root, Frame::named("Stream"));
        g
    }

    #[test]
    fn shape_and_connectors() {
        let g = sample();
        let s = render_tree(&g, |_| None);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[0], "Base_CUDA");
        assert_eq!(lines[1], "├─ Algorithm");
        assert_eq!(lines[2], "│  ├─ MEMCPY");
        assert_eq!(lines[3], "│  └─ MEMSET");
        assert_eq!(lines[4], "└─ Stream");
    }

    #[test]
    fn metric_annotations() {
        let g = sample();
        let s = render_tree(&g, |id| Some(id.index() as f64 / 100.0));
        assert!(s.contains("0.000 Base_CUDA"));
        assert!(s.contains("0.020 MEMCPY"));
    }

    #[test]
    fn custom_labels() {
        let g = sample();
        let s = render_tree_with(&g, |id| format!("<{}>", g.node(id).name()));
        assert!(s.starts_with("<Base_CUDA>"));
    }

    #[test]
    fn multi_root_forest() {
        let mut g = Graph::new();
        g.add_root(Frame::named("A"));
        g.add_root(Frame::named("B"));
        let s = render_tree(&g, |_| None);
        assert_eq!(s, "A\nB\n");
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(render_tree(&g, |_| None), "");
    }
}
