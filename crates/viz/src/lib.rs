//! # thicket-viz
//!
//! Static visualization for the Thicket reproduction (paper §4.3): the
//! metric-annotated call-tree renderer Hatchet users know (Figure 8),
//! text heatmaps/histograms for terminal output (Figure 12), and an SVG
//! backend for every chart type the case studies use — scatter plots,
//! line charts (log₂ scaling plots, Figure 17), histograms, heatmaps,
//! stacked top-down bars (Figure 14), and parallel coordinate plots
//! (Figure 18).
//!
//! The paper's interactive Jupyter visualizations are out of scope by
//! design; every figure is reproduced as a static artifact.

#![warn(missing_docs)]

mod charts;
mod flame;
mod report;
mod svg;
mod text;
mod tree;

pub use charts::{
    box_plot, heatmap_chart, histogram_chart, line_chart, parallel_coordinates, scatter_chart,
    stacked_bars, AxisScale, BarStack, ChartOptions, PcpAxis, Series,
};
pub use flame::flame_graph;
pub use report::HtmlReport;
pub use svg::{palette, SvgCanvas};
pub use text::{text_heatmap, text_histogram};
pub use tree::{render_tree, render_tree_with};
