//! Property tests: the memoized query engine against a brute-force oracle
//! that enumerates every descending path and regex-matches it directly.

use proptest::prelude::*;
use std::collections::HashSet;
use thicket_graph::{Frame, Graph, NodeId};
use thicket_query::{pred, Predicate, Query};

fn tree_from(parents: &[usize], names: &[u8]) -> Graph {
    let mut g = Graph::new();
    let mut ids = Vec::new();
    for (i, &p) in parents.iter().enumerate() {
        let name = format!("f{}", names[i % names.len()] % 5);
        let id = if i == 0 {
            g.add_root(Frame::named(&name))
        } else {
            g.add_child(ids[p % i], Frame::named(&name))
        };
        ids.push(id);
    }
    g
}

/// Oracle: enumerate all descending paths (start anywhere, stop anywhere)
/// and match against the expanded atom sequence by brute-force regex
/// recursion on the *path*, then union the nodes of matching paths.
fn oracle(g: &Graph, atoms: &[(bool, Predicate)]) -> HashSet<NodeId> {
    // Enumerate paths.
    let mut paths: Vec<Vec<NodeId>> = Vec::new();
    let mut stack: Vec<Vec<NodeId>> = g.preorder().into_iter().map(|n| vec![n]).collect();
    while let Some(p) = stack.pop() {
        paths.push(p.clone());
        let last = *p.last().unwrap();
        for &c in g.node(last).children() {
            let mut q = p.clone();
            q.push(c);
            stack.push(q);
        }
    }
    fn matches(g: &Graph, path: &[NodeId], atoms: &[(bool, Predicate)]) -> bool {
        match (path.is_empty(), atoms.is_empty()) {
            (true, true) => true,
            (true, false) => atoms.iter().all(|(star, _)| *star),
            (false, true) => false,
            (false, false) => {
                let (star, p) = &atoms[0];
                if *star {
                    // Skip the star, or consume one node and stay.
                    matches(g, path, &atoms[1..])
                        || (p(g.node(path[0])) && matches(g, &path[1..], atoms))
                } else {
                    p(g.node(path[0])) && matches(g, &path[1..], &atoms[1..])
                }
            }
        }
    }
    let mut out = HashSet::new();
    for p in paths {
        if !p.is_empty() && matches(g, &p, atoms) {
            out.extend(p);
        }
    }
    out
}

/// A small pool of predicates, index-selectable so proptest can shrink.
fn predicate(i: u8) -> Predicate {
    match i % 4 {
        0 => pred::any(),
        1 => pred::name_eq("f0"),
        2 => pred::name_contains("1"),
        _ => pred::name_starts_with("f"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine (memoized and not) agrees with the path-enumeration
    /// oracle on random trees and random 1–3 node queries.
    #[test]
    fn engine_matches_oracle(
        parents in proptest::collection::vec(any::<usize>(), 1..14),
        names in proptest::collection::vec(any::<u8>(), 1..6),
        quants in proptest::collection::vec(0u8..3, 1..4),
        preds in proptest::collection::vec(any::<u8>(), 1..4),
    ) {
        let g = tree_from(&parents, &names);
        let mut builder = Query::builder();
        let mut atoms: Vec<(bool, Predicate)> = Vec::new();
        for (i, q) in quants.iter().enumerate() {
            let p = predicate(preds[i % preds.len()]);
            let tok = match q { 0 => ".", 1 => "*", _ => "+" };
            builder = builder.node(tok, p.clone());
            match q {
                0 => atoms.push((false, p)),
                1 => atoms.push((true, p)),
                _ => {
                    atoms.push((false, p.clone()));
                    atoms.push((true, p));
                }
            }
        }
        let query = builder.build();
        let expect = oracle(&g, &atoms);
        prop_assert_eq!(query.apply(&g), expect.clone());
        prop_assert_eq!(query.apply_unmemoized(&g), expect);
    }

    /// An all-`.` query of length k matches exactly the nodes lying on
    /// descending chains of length k.
    #[test]
    fn dot_chain_counts(
        parents in proptest::collection::vec(any::<usize>(), 1..14),
        k in 1usize..4,
    ) {
        let g = tree_from(&parents, &[0]);
        let mut b = Query::builder();
        for _ in 0..k {
            b = b.any(".");
        }
        let hits = b.build().apply(&g);
        // Oracle: nodes on some chain of exactly k nodes.
        let mut expect: HashSet<NodeId> = HashSet::new();
        for start in g.preorder() {
            let mut chains = vec![vec![start]];
            for _ in 1..k {
                let mut next = Vec::new();
                for c in chains {
                    let last = *c.last().unwrap();
                    for &ch in g.node(last).children() {
                        let mut d = c.clone();
                        d.push(ch);
                        next.push(d);
                    }
                }
                chains = next;
            }
            for c in chains {
                expect.extend(c);
            }
        }
        prop_assert_eq!(hits, expect);
    }
}

// ---------------------------------------------------------------------
// Dialect-compiled predicates agree with the legacy closure helpers.

use thicket_query::parse_pred;

/// Index-selectable (dialect source, legacy closure) pairs covering
/// every comparison the dialect compiles into the engine AST.
fn dialect_case(i: u8) -> (&'static str, Predicate) {
    match i % 6 {
        0 => (r#"name == "f0""#, pred::name_eq("f0")),
        1 => (r#"name startswith "f""#, pred::name_starts_with("f")),
        2 => (r#"name endswith "1""#, pred::name_ends_with("1")),
        3 => (r#"name contains "2""#, pred::name_contains("2")),
        4 => (r#"name != "f3""#, pred::not(pred::name_eq("f3"))),
        _ => (r#"name == "f4""#, pred::name_eq("f4")),
    }
}

proptest! {
    /// Parsing a dialect predicate and evaluating the compiled
    /// [`PredExpr`] on every node of a random tree gives exactly the
    /// answers of the handwritten legacy closures — including under
    /// `&&` / `||` / `!` composition.
    #[test]
    fn dialect_compiles_to_legacy_semantics(
        parents in proptest::collection::vec(any::<usize>(), 1..14),
        names in proptest::collection::vec(any::<u8>(), 1..6),
        a in any::<u8>(),
        b in any::<u8>(),
        shape in 0u8..4,
    ) {
        let g = tree_from(&parents, &names);
        let (src_a, legacy_a) = dialect_case(a);
        let (src_b, legacy_b) = dialect_case(b);
        let (source, legacy): (String, Predicate) = match shape {
            0 => (src_a.to_string(), legacy_a),
            1 => (format!("{src_a} and {src_b}"), pred::and(legacy_a, legacy_b)),
            2 => (format!("{src_a} or {src_b}"), pred::or(legacy_a, legacy_b)),
            _ => (format!("not ({src_a})"), pred::not(legacy_a)),
        };
        let compiled = pred::expr(parse_pred(&source).unwrap());
        for id in g.preorder() {
            let node = g.node(id);
            prop_assert_eq!(
                compiled(node),
                legacy(node),
                "dialect `{}` diverges at node {}", source, node.name()
            );
        }
    }
}
