//! # thicket-query
//!
//! The Call Path Query Language (paper §4.1.3, after Hatchet/Lumsden et
//! al.): a query is a sequence of *query nodes*, each a **quantifier**
//! (how many call-tree nodes to match) plus a **predicate** (what a
//! matching node must satisfy). Applying a query to a call graph finds
//! every descending path that matches the whole sequence and returns the
//! union of nodes on matching paths — which the thicket then turns into a
//! filtered call tree and performance-data subset (Figure 8).
//!
//! ```
//! use thicket_graph::{Frame, Graph};
//! use thicket_query::{Query, pred};
//!
//! let mut g = Graph::new();
//! let root = g.add_root(Frame::named("Base_CUDA"));
//! let alg = g.add_child(root, Frame::named("Algorithm"));
//! let memcpy = g.add_child(alg, Frame::named("Algorithm_MEMCPY"));
//! g.add_child(memcpy, Frame::named("Algorithm_MEMCPY.block_128"));
//! g.add_child(memcpy, Frame::named("Algorithm_MEMCPY.block_256"));
//!
//! // QueryMatcher().match(".", name == Base_CUDA).rel("*")
//! //               .rel(".", name ends with block_128)
//! let q = Query::builder()
//!     .node(".", pred::name_eq("Base_CUDA"))
//!     .any("*")
//!     .node(".", pred::name_ends_with("block_128"))
//!     .build();
//! let hits = q.apply(&g);
//! assert_eq!(hits.len(), 4); // root, Algorithm, MEMCPY, block_128 leaf
//! ```

#![warn(missing_docs)]

mod dialect;

pub use dialect::{parse_pred, ParseError};

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use thicket_graph::{Graph, Node, NodeId};

/// How many consecutive call-tree nodes one query node matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quantifier {
    /// `"."` — exactly one node.
    One,
    /// `"*"` — zero or more nodes.
    ZeroOrMore,
    /// `"+"` — one or more nodes.
    OneOrMore,
    /// An integer — exactly that many nodes.
    Exactly(usize),
}

impl Quantifier {
    /// Parse the string dialect used by Hatchet: `"."`, `"*"`, `"+"`, or a
    /// decimal count.
    pub fn parse(s: &str) -> Result<Quantifier, QueryError> {
        match s {
            "." => Ok(Quantifier::One),
            "*" => Ok(Quantifier::ZeroOrMore),
            "+" => Ok(Quantifier::OneOrMore),
            other => other
                .parse::<usize>()
                .map(Quantifier::Exactly)
                .map_err(|_| QueryError::BadQuantifier(other.to_string())),
        }
    }
}

impl fmt::Display for Quantifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Quantifier::One => f.write_str("."),
            Quantifier::ZeroOrMore => f.write_str("*"),
            Quantifier::OneOrMore => f.write_str("+"),
            Quantifier::Exactly(n) => write!(f, "{n}"),
        }
    }
}

/// Errors from query construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Unrecognized quantifier token.
    BadQuantifier(String),
    /// A query must contain at least one query node.
    EmptyQuery,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::BadQuantifier(s) => write!(f, "unrecognized quantifier {s:?}"),
            QueryError::EmptyQuery => f.write_str("query has no query nodes"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A node predicate: decides whether one call-tree node can match.
pub type Predicate = Arc<dyn Fn(&Node) -> bool + Send + Sync>;

/// Ready-made predicates over node frames.
pub mod pred {
    use super::Predicate;
    use std::sync::Arc;
    use thicket_dataframe::Value;

    /// Matches every node (`rel("*")` with no condition).
    pub fn any() -> Predicate {
        Arc::new(|_| true)
    }

    /// `name == s`.
    pub fn name_eq(s: impl Into<String>) -> Predicate {
        let s = s.into();
        Arc::new(move |n| n.name() == s)
    }

    /// `name.starts_with(s)`.
    pub fn name_starts_with(s: impl Into<String>) -> Predicate {
        let s = s.into();
        Arc::new(move |n| n.name().starts_with(&s))
    }

    /// `name.ends_with(s)` — the paper's `.block_128` example.
    pub fn name_ends_with(s: impl Into<String>) -> Predicate {
        let s = s.into();
        Arc::new(move |n| n.name().ends_with(&s))
    }

    /// `name.contains(s)`.
    pub fn name_contains(s: impl Into<String>) -> Predicate {
        let s = s.into();
        Arc::new(move |n| n.name().contains(&s))
    }

    /// Frame attribute equality, e.g. `attr_eq("type", "kernel")`.
    pub fn attr_eq(key: impl Into<String>, value: impl Into<Value>) -> Predicate {
        let key = key.into();
        let value = value.into();
        Arc::new(move |n| n.frame().get(&key) == Some(&value))
    }

    /// Conjunction of two predicates.
    pub fn and(a: Predicate, b: Predicate) -> Predicate {
        Arc::new(move |n| a(n) && b(n))
    }

    /// Disjunction of two predicates.
    pub fn or(a: Predicate, b: Predicate) -> Predicate {
        Arc::new(move |n| a(n) || b(n))
    }

    /// Negation of a predicate.
    pub fn not(a: Predicate) -> Predicate {
        Arc::new(move |n| !a(n))
    }

    /// Compile a [`PredExpr`](thicket_dataframe::PredExpr) from the
    /// unified predicate engine into a node predicate: the field `name`
    /// reads the node's name, any other field reads the frame attribute
    /// of that key (missing attribute ⇒ the leaf is `false`). This is the
    /// bridge the string dialect uses, so builder-made and parsed
    /// predicates share one set of comparison semantics.
    pub fn expr(e: thicket_dataframe::PredExpr) -> Predicate {
        Arc::new(move |n| {
            e.eval_lookup(&mut |key| {
                if key == "name" {
                    Some(Value::from(n.name()))
                } else {
                    n.frame().get(key).cloned()
                }
            })
        })
    }
}

/// One query node: quantifier + predicate.
#[derive(Clone)]
pub struct QueryNode {
    /// How many call-tree nodes this query node consumes.
    pub quantifier: Quantifier,
    /// Condition a consumed node must satisfy.
    pub predicate: Predicate,
}

impl fmt::Debug for QueryNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "QueryNode({})", self.quantifier)
    }
}

/// Compiled internal form: `Exactly(n)` expands to `n` singles and
/// `OneOrMore` to a single followed by a star, leaving only two atom kinds.
#[derive(Clone)]
enum Atom {
    Single(Predicate),
    Star(Predicate),
}

/// A call-path query.
#[derive(Clone)]
pub struct Query {
    nodes: Vec<QueryNode>,
    atoms: Vec<Atom>,
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pat: Vec<String> = self.nodes.iter().map(|n| n.quantifier.to_string()).collect();
        write!(f, "Query[{}]", pat.join(" "))
    }
}

impl Query {
    /// Start building a query.
    pub fn builder() -> QueryBuilder {
        QueryBuilder { nodes: Vec::new() }
    }

    /// The query-node sequence.
    pub fn nodes(&self) -> &[QueryNode] {
        &self.nodes
    }

    fn compile(nodes: &[QueryNode]) -> Vec<Atom> {
        let mut atoms = Vec::new();
        for qn in nodes {
            match qn.quantifier {
                Quantifier::One => atoms.push(Atom::Single(qn.predicate.clone())),
                Quantifier::ZeroOrMore => atoms.push(Atom::Star(qn.predicate.clone())),
                Quantifier::OneOrMore => {
                    atoms.push(Atom::Single(qn.predicate.clone()));
                    atoms.push(Atom::Star(qn.predicate.clone()));
                }
                Quantifier::Exactly(n) => {
                    for _ in 0..n {
                        atoms.push(Atom::Single(qn.predicate.clone()));
                    }
                }
            }
        }
        atoms
    }

    /// Apply the query: the set of all nodes lying on any matching
    /// descending path. Uses memoized reachability to prune the path
    /// enumeration.
    pub fn apply(&self, graph: &Graph) -> HashSet<NodeId> {
        self.apply_impl(graph, true)
    }

    /// Reference implementation without memoization (exponential in the
    /// worst case); kept as the `ablate_query` baseline and test oracle.
    pub fn apply_unmemoized(&self, graph: &Graph) -> HashSet<NodeId> {
        self.apply_impl(graph, false)
    }

    fn apply_impl(&self, graph: &Graph, memoize: bool) -> HashSet<NodeId> {
        let mut result = HashSet::new();
        if self.atoms.is_empty() {
            return result;
        }
        let mut memo: HashMap<(NodeId, usize), bool> = HashMap::new();
        let mut path: Vec<NodeId> = Vec::new();
        for start in graph.preorder() {
            self.walk(graph, start, 0, &mut path, &mut result, &mut memo, memoize);
        }
        result
    }

    /// `true` if every atom from `s` on is a star (the match may stop here).
    fn all_skippable(&self, s: usize) -> bool {
        self.atoms[s..].iter().all(|a| matches!(a, Atom::Star(_)))
    }

    /// Can a path starting at `node` match atoms `s..`? (memoized)
    fn can_match(
        &self,
        graph: &Graph,
        node: NodeId,
        s: usize,
        memo: &mut HashMap<(NodeId, usize), bool>,
        memoize: bool,
    ) -> bool {
        if s == self.atoms.len() {
            return false;
        }
        if memoize {
            if let Some(&v) = memo.get(&(node, s)) {
                return v;
            }
        }
        let n = graph.node(node);
        let ok = match &self.atoms[s] {
            Atom::Single(p) => {
                p(n)
                    && (self.all_skippable(s + 1)
                        || n.children()
                            .iter()
                            .any(|&c| self.can_match(graph, c, s + 1, memo, memoize)))
            }
            Atom::Star(p) => {
                // Skip the star entirely…
                self.can_match(graph, node, s + 1, memo, memoize)
                    // …or consume this node and continue in the star (or
                    // stop if everything after is skippable).
                    || (p(n)
                        && (self.all_skippable(s + 1)
                            || n.children()
                                .iter()
                                .any(|&c| self.can_match(graph, c, s, memo, memoize))
                            || n.children()
                                .iter()
                                .any(|&c| self.can_match(graph, c, s + 1, memo, memoize))))
            }
        };
        if memoize {
            memo.insert((node, s), ok);
        }
        ok
    }

    /// Enumerate matching paths from (`node`, state `s`), collecting every
    /// node of every complete match into `result`.
    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        graph: &Graph,
        node: NodeId,
        s: usize,
        path: &mut Vec<NodeId>,
        result: &mut HashSet<NodeId>,
        memo: &mut HashMap<(NodeId, usize), bool>,
        memoize: bool,
    ) {
        if s == self.atoms.len() {
            return;
        }
        if memoize && !self.can_match(graph, node, s, memo, memoize) {
            return;
        }
        let n = graph.node(node);
        match &self.atoms[s] {
            Atom::Single(p) => {
                if !p(n) {
                    return;
                }
                path.push(node);
                if self.all_skippable(s + 1) {
                    result.extend(path.iter().copied());
                }
                for &c in n.children() {
                    self.walk(graph, c, s + 1, path, result, memo, memoize);
                }
                path.pop();
            }
            Atom::Star(p) => {
                // Skip the star without consuming.
                self.walk(graph, node, s + 1, path, result, memo, memoize);
                // Consume this node within the star.
                if p(n) {
                    path.push(node);
                    if self.all_skippable(s + 1) {
                        result.extend(path.iter().copied());
                    }
                    for &c in n.children() {
                        self.walk(graph, c, s, path, result, memo, memoize);
                    }
                    path.pop();
                }
            }
        }
    }
}

/// Fluent builder mirroring Hatchet's `QueryMatcher().match(...).rel(...)`.
pub struct QueryBuilder {
    nodes: Vec<QueryNode>,
}

impl QueryBuilder {
    /// Append a query node with an explicit predicate. `quantifier` uses
    /// the string dialect (`"."`, `"*"`, `"+"`, `"3"`); panics on an
    /// unrecognized token (use [`QueryBuilder::try_node`] to handle it).
    pub fn node(mut self, quantifier: &str, predicate: Predicate) -> Self {
        let q = Quantifier::parse(quantifier).expect("valid quantifier token");
        self.nodes.push(QueryNode {
            quantifier: q,
            predicate,
        });
        self
    }

    /// Append a query node matching *any* node (`rel("*")`-style).
    pub fn any(self, quantifier: &str) -> Self {
        self.node(quantifier, pred::any())
    }

    /// Fallible version of [`QueryBuilder::node`].
    pub fn try_node(mut self, quantifier: &str, predicate: Predicate) -> Result<Self, QueryError> {
        let q = Quantifier::parse(quantifier)?;
        self.nodes.push(QueryNode {
            quantifier: q,
            predicate,
        });
        Ok(self)
    }

    /// Finish the query. Panics on an empty builder (use
    /// [`QueryBuilder::try_build`] to handle it).
    pub fn build(self) -> Query {
        self.try_build().expect("non-empty query")
    }

    /// Fallible version of [`QueryBuilder::build`].
    pub fn try_build(self) -> Result<Query, QueryError> {
        if self.nodes.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        let atoms = Query::compile(&self.nodes);
        Ok(Query {
            nodes: self.nodes,
            atoms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::Frame;

    /// Base_CUDA -> Algorithm -> {MEMCPY -> {block_128, block_256},
    ///                            MEMSET -> {block_128}}
    fn cuda_tree() -> Graph {
        let mut g = Graph::new();
        let root = g.add_root(Frame::named("Base_CUDA"));
        let alg = g.add_child(root, Frame::named("Algorithm"));
        let memcpy = g.add_child(alg, Frame::named("Algorithm_MEMCPY"));
        g.add_child(memcpy, Frame::named("Algorithm_MEMCPY.block_128"));
        g.add_child(memcpy, Frame::named("Algorithm_MEMCPY.block_256"));
        let memset = g.add_child(alg, Frame::named("Algorithm_MEMSET"));
        g.add_child(memset, Frame::named("Algorithm_MEMSET.block_128"));
        g
    }

    fn names(g: &Graph, ids: &HashSet<NodeId>) -> Vec<String> {
        let mut v: Vec<String> = ids.iter().map(|&i| g.node(i).name().to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_block_128_query() {
        let g = cuda_tree();
        let q = Query::builder()
            .node(".", pred::name_eq("Base_CUDA"))
            .any("*")
            .node(".", pred::name_ends_with("block_128"))
            .build();
        let hits = q.apply(&g);
        assert_eq!(
            names(&g, &hits),
            vec![
                "Algorithm",
                "Algorithm_MEMCPY",
                "Algorithm_MEMCPY.block_128",
                "Algorithm_MEMSET",
                "Algorithm_MEMSET.block_128",
                "Base_CUDA",
            ]
        );
    }

    #[test]
    fn single_node_query_matches_anywhere() {
        let g = cuda_tree();
        let q = Query::builder()
            .node(".", pred::name_contains("MEMSET"))
            .build();
        assert_eq!(
            names(&g, &q.apply(&g)),
            vec!["Algorithm_MEMSET", "Algorithm_MEMSET.block_128"]
        );
    }

    #[test]
    fn star_matches_empty_sequence() {
        let g = cuda_tree();
        // "." Base_CUDA then "*": star may be empty, so the root alone
        // matches, plus every descending extension.
        let q = Query::builder()
            .node(".", pred::name_eq("Base_CUDA"))
            .any("*")
            .build();
        let hits = q.apply(&g);
        assert_eq!(hits.len(), g.len());
    }

    #[test]
    fn one_or_more_requires_at_least_one() {
        let mut g = Graph::new();
        g.add_root(Frame::named("only"));
        let q = Query::builder()
            .node(".", pred::name_eq("only"))
            .any("+")
            .build();
        // "only" has no children: "+" cannot consume anything.
        assert!(q.apply(&g).is_empty());
    }

    #[test]
    fn exact_count_quantifier() {
        let g = cuda_tree();
        // Exactly 2 nodes below the root then a block_256 leaf:
        // Base_CUDA -> Algorithm -> MEMCPY -> block_256.
        let q = Query::builder()
            .node(".", pred::name_eq("Base_CUDA"))
            .any("2")
            .node(".", pred::name_ends_with("block_256"))
            .build();
        assert_eq!(q.apply(&g).len(), 4);
        // Exactly 1 intermediate is too short.
        let q1 = Query::builder()
            .node(".", pred::name_eq("Base_CUDA"))
            .any("1")
            .node(".", pred::name_ends_with("block_256"))
            .build();
        assert!(q1.apply(&g).is_empty());
    }

    #[test]
    fn predicate_combinators() {
        let g = cuda_tree();
        let q = Query::builder()
            .node(
                ".",
                pred::and(
                    pred::name_starts_with("Algorithm_"),
                    pred::not(pred::name_contains("block")),
                ),
            )
            .build();
        assert_eq!(
            names(&g, &q.apply(&g)),
            vec!["Algorithm_MEMCPY", "Algorithm_MEMSET"]
        );
    }

    #[test]
    fn or_combinator() {
        let g = cuda_tree();
        let q = Query::builder()
            .node(
                ".",
                pred::or(pred::name_eq("Algorithm"), pred::name_eq("Base_CUDA")),
            )
            .build();
        assert_eq!(names(&g, &q.apply(&g)), vec!["Algorithm", "Base_CUDA"]);
    }

    #[test]
    fn attr_predicate() {
        let mut g = Graph::new();
        let r = g.add_root(Frame::with_type("main", "function"));
        g.add_child(r, Frame::with_type("k1", "kernel"));
        g.add_child(r, Frame::with_type("r1", "region"));
        let q = Query::builder().node(".", pred::attr_eq("type", "kernel")).build();
        assert_eq!(names(&g, &q.apply(&g)), vec!["k1"]);
    }

    #[test]
    fn quantifier_parsing() {
        assert_eq!(Quantifier::parse(".").unwrap(), Quantifier::One);
        assert_eq!(Quantifier::parse("*").unwrap(), Quantifier::ZeroOrMore);
        assert_eq!(Quantifier::parse("+").unwrap(), Quantifier::OneOrMore);
        assert_eq!(Quantifier::parse("7").unwrap(), Quantifier::Exactly(7));
        assert!(Quantifier::parse("what").is_err());
    }

    #[test]
    fn empty_query_rejected() {
        assert!(matches!(
            Query::builder().try_build(),
            Err(QueryError::EmptyQuery)
        ));
    }

    #[test]
    fn memoized_matches_unmemoized() {
        let g = cuda_tree();
        for q in [
            Query::builder()
                .node(".", pred::name_eq("Base_CUDA"))
                .any("*")
                .node(".", pred::name_ends_with("block_128"))
                .build(),
            Query::builder().any("+").build(),
            Query::builder()
                .any("*")
                .node(".", pred::name_contains("block"))
                .build(),
        ] {
            assert_eq!(q.apply(&g), q.apply_unmemoized(&g));
        }
    }

    #[test]
    fn no_match_returns_empty() {
        let g = cuda_tree();
        let q = Query::builder().node(".", pred::name_eq("nope")).build();
        assert!(q.apply(&g).is_empty());
    }

    #[test]
    fn star_then_single_anchors_anywhere() {
        let g = cuda_tree();
        let q = Query::builder()
            .any("*")
            .node(".", pred::name_eq("Algorithm_MEMCPY"))
            .build();
        // Matching paths: [MEMCPY], [Algorithm, MEMCPY],
        // [Base_CUDA, Algorithm, MEMCPY] — union covers 3 nodes.
        assert_eq!(
            names(&g, &q.apply(&g)),
            vec!["Algorithm", "Algorithm_MEMCPY", "Base_CUDA"]
        );
    }
}
