//! The string dialect of the Call Path Query Language.
//!
//! Hatchet offers both an object-based dialect (the builder API in this
//! crate) and a string-based dialect; this module provides the latter.
//! A query is a `->`-separated chain of query nodes, each a quantifier
//! plus an optional predicate expression:
//!
//! ```text
//! (".", name == "Base_CUDA") -> ("*") -> (".", name endswith "block_128")
//! ```
//!
//! Predicates support `==`, `!=`, `<`, `<=`, `>`, `>=` on frame
//! attributes, the string operators `startswith`, `endswith`,
//! `contains`, and the combinators `and`, `or`, `not`, with parentheses.
//! Bare identifiers (`name`, `type`, or any frame attribute key) appear
//! on the left of an operator; literals are double-quoted strings,
//! numbers, `true`, or `false`.

use crate::{pred, Query, QueryBuilder};
use std::fmt;
use thicket_dataframe::{PredExpr, Value};

/// Errors from parsing the string dialect.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    LParen,
    RParen,
    Comma,
    Arrow,
    Ident(String),
    Str(String),
    Num(f64),
    Op(String), // == != < <= > >=
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Token)>, ParseError> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let c = self.bytes[self.pos];
            let start = self.pos;
            match c {
                b' ' | b'\t' | b'\n' | b'\r' => {
                    self.pos += 1;
                }
                b'(' => {
                    out.push((start, Token::LParen));
                    self.pos += 1;
                }
                b')' => {
                    out.push((start, Token::RParen));
                    self.pos += 1;
                }
                b',' => {
                    out.push((start, Token::Comma));
                    self.pos += 1;
                }
                b'-' if self.bytes.get(self.pos + 1) == Some(&b'>') => {
                    out.push((start, Token::Arrow));
                    self.pos += 2;
                }
                b'=' | b'!' | b'<' | b'>' => {
                    let mut op = String::new();
                    op.push(c as char);
                    self.pos += 1;
                    if self.bytes.get(self.pos) == Some(&b'=') {
                        op.push('=');
                        self.pos += 1;
                    }
                    if op == "=" || op == "!" {
                        return Err(self.err(format!("incomplete operator {op:?}")));
                    }
                    out.push((start, Token::Op(op)));
                }
                b'"' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        match self.bytes.get(self.pos) {
                            None => return Err(self.err("unterminated string literal")),
                            Some(b'"') => {
                                self.pos += 1;
                                break;
                            }
                            Some(b'\\') => {
                                self.pos += 1;
                                match self.bytes.get(self.pos) {
                                    Some(b'"') => s.push('"'),
                                    Some(b'\\') => s.push('\\'),
                                    _ => return Err(self.err("bad escape in string literal")),
                                }
                                self.pos += 1;
                            }
                            Some(_) => {
                                let rest = std::str::from_utf8(&self.bytes[self.pos..])
                                    .map_err(|_| self.err("invalid UTF-8"))?;
                                let ch = rest.chars().next().expect("non-empty");
                                s.push(ch);
                                self.pos += ch.len_utf8();
                            }
                        }
                    }
                    out.push((start, Token::Str(s)));
                }
                c if c.is_ascii_digit() => {
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_digit() || self.bytes[end] == b'.')
                    {
                        end += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[self.pos..end]).unwrap();
                    let n: f64 = text
                        .parse()
                        .map_err(|_| self.err(format!("bad number {text:?}")))?;
                    out.push((start, Token::Num(n)));
                    self.pos = end;
                }
                c if c.is_ascii_alphabetic() || c == b'_' || c == b'.' || c == b'*' || c == b'+' => {
                    // Identifiers; also the bare quantifier tokens . * +
                    // when they stand alone.
                    if c == b'.' || c == b'*' || c == b'+' {
                        out.push((start, Token::Ident((c as char).to_string())));
                        self.pos += 1;
                        continue;
                    }
                    let mut end = self.pos;
                    while end < self.bytes.len()
                        && (self.bytes[end].is_ascii_alphanumeric()
                            || self.bytes[end] == b'_'
                            || self.bytes[end] == b'.')
                    {
                        end += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[self.pos..end]).unwrap();
                    out.push((start, Token::Ident(text.to_string())));
                    self.pos = end;
                }
                other => {
                    return Err(self.err(format!("unexpected character {:?}", other as char)))
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset_at(self.pos),
            message: message.into(),
        }
    }

    /// Byte offset of token `pos` (or just past the last token at end of
    /// input) — every error this parser raises points at a real byte.
    fn offset_at(&self, pos: usize) -> usize {
        self.tokens
            .get(pos)
            .map(|(o, _)| *o)
            .unwrap_or_else(|| self.tokens.last().map(|(o, _)| *o + 1).unwrap_or(0))
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err_at(format!("expected {want:?}, found {other:?}"))),
        }
    }

    /// query := group ( "->" group )*
    fn query(&mut self) -> Result<Query, ParseError> {
        let mut builder = Query::builder();
        builder = self.group(builder)?;
        while self.peek() == Some(&Token::Arrow) {
            self.pos += 1;
            builder = self.group(builder)?;
        }
        if self.pos != self.tokens.len() {
            return Err(self.err_at("trailing tokens after query"));
        }
        // Unreachable in practice (at least one group parsed above), but
        // keep the offset honest rather than fabricating byte 0.
        let end = self.offset_at(self.pos);
        builder.try_build().map_err(|e| ParseError {
            offset: end,
            message: e.to_string(),
        })
    }

    /// group := "(" quant ( "," expr )? ")"
    fn group(&mut self, builder: QueryBuilder) -> Result<QueryBuilder, ParseError> {
        self.expect(&Token::LParen)?;
        let quant_offset = self.offset_at(self.pos);
        let quant = match self.next() {
            Some(Token::Str(s)) | Some(Token::Ident(s)) => s,
            Some(Token::Num(n)) if n == n.trunc() && n >= 0.0 => format!("{}", n as u64),
            other => return Err(self.err_at(format!("expected quantifier, found {other:?}"))),
        };
        let predicate = if self.peek() == Some(&Token::Comma) {
            self.pos += 1;
            pred::expr(self.expr()?)
        } else {
            pred::any()
        };
        self.expect(&Token::RParen)?;
        // A bad quantifier token points at the token itself, not byte 0.
        builder.try_node(&quant, predicate).map_err(|e| ParseError {
            offset: quant_offset,
            message: e.to_string(),
        })
    }

    /// expr := term ( "or" term )*
    fn expr(&mut self) -> Result<PredExpr, ParseError> {
        let mut acc = self.term()?;
        while matches!(self.peek(), Some(Token::Ident(w)) if w == "or") {
            self.pos += 1;
            let rhs = self.term()?;
            acc = PredExpr::or([acc, rhs]);
        }
        Ok(acc)
    }

    /// term := factor ( "and" factor )*
    fn term(&mut self) -> Result<PredExpr, ParseError> {
        let mut acc = self.factor()?;
        while matches!(self.peek(), Some(Token::Ident(w)) if w == "and") {
            self.pos += 1;
            let rhs = self.factor()?;
            acc = PredExpr::and([acc, rhs]);
        }
        Ok(acc)
    }

    /// factor := "not" factor | "(" expr ")" | comparison
    fn factor(&mut self) -> Result<PredExpr, ParseError> {
        match self.peek() {
            Some(Token::Ident(w)) if w == "not" => {
                self.pos += 1;
                Ok(PredExpr::not(self.factor()?))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            _ => self.comparison(),
        }
    }

    /// comparison := IDENT op value
    fn comparison(&mut self) -> Result<PredExpr, ParseError> {
        let key = match self.next() {
            Some(Token::Ident(k)) => k,
            other => return Err(self.err_at(format!("expected attribute name, found {other:?}"))),
        };
        let op_offset = self.offset_at(self.pos);
        let op = match self.next() {
            Some(Token::Op(op)) => op,
            Some(Token::Ident(w))
                if matches!(w.as_str(), "startswith" | "endswith" | "contains") =>
            {
                w
            }
            other => return Err(self.err_at(format!("expected operator, found {other:?}"))),
        };
        let value = match self.next() {
            Some(Token::Str(s)) => Value::from(s.as_str()),
            Some(Token::Num(n)) => Value::Float(n),
            Some(Token::Ident(w)) if w == "true" => Value::Bool(true),
            Some(Token::Ident(w)) if w == "false" => Value::Bool(false),
            other => return Err(self.err_at(format!("expected literal, found {other:?}"))),
        };
        build_comparison(&key, &op, value).map_err(|m| ParseError {
            offset: op_offset,
            message: m,
        })
    }
}

/// Compile one `key op value` comparison into the unified [`PredExpr`]
/// AST. Ordering comparisons are kind-guarded by the engine (a cross-kind
/// `name >= 5` is `false`, not rank-ordered — see the engine docs).
fn build_comparison(key: &str, op: &str, value: Value) -> Result<PredExpr, String> {
    match op {
        "==" => Ok(PredExpr::eq(key, value)),
        "!=" => Ok(PredExpr::ne(key, value)),
        "<" => Ok(PredExpr::lt(key, value)),
        "<=" => Ok(PredExpr::le(key, value)),
        ">" => Ok(PredExpr::gt(key, value)),
        ">=" => Ok(PredExpr::ge(key, value)),
        "startswith" | "endswith" | "contains" => {
            let Some(needle) = value.as_str().map(str::to_owned) else {
                return Err(format!("{op} needs a string literal"));
            };
            Ok(match op {
                "startswith" => PredExpr::starts_with(key, needle),
                "endswith" => PredExpr::ends_with(key, needle),
                _ => PredExpr::contains(key, needle),
            })
        }
        other => Err(format!("unknown operator {other:?}")),
    }
}

impl Query {
    /// Parse the string dialect, e.g.
    /// `(".", name == "Base_CUDA") -> ("*") -> (".", name endswith "block_128")`.
    pub fn parse(input: &str) -> Result<Query, ParseError> {
        let tokens = Lexer {
            bytes: input.as_bytes(),
            pos: 0,
        }
        .tokens()?;
        Parser { tokens, pos: 0 }.query()
    }
}

/// Parse a bare predicate expression of the string dialect (no
/// quantifiers or `->`), e.g. `cluster == "quartz" and problem_size >= 30`,
/// into the unified [`PredExpr`] AST.
///
/// This is how a human-written filter string reaches the predicate
/// engine: hand the result to `Thicket::loader(...).filter(...)`
/// (metadata conjuncts are pushed below the store read), to
/// `DataFrame::filter_expr`, or wrap it with [`pred::expr`] for call-path
/// queries.
pub fn parse_pred(input: &str) -> Result<PredExpr, ParseError> {
    let tokens = Lexer {
        bytes: input.as_bytes(),
        pos: 0,
    }
    .tokens()?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(p.err_at("trailing tokens after predicate"));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use thicket_graph::{Frame, Graph};

    fn cuda_tree() -> Graph {
        let mut g = Graph::new();
        let root = g.add_root(Frame::named("Base_CUDA"));
        let alg = g.add_child(root, Frame::named("Algorithm"));
        let memcpy = g.add_child(alg, Frame::with_type("Algorithm_MEMCPY", "kernel"));
        g.add_child(memcpy, Frame::named("Algorithm_MEMCPY.block_128"));
        g.add_child(memcpy, Frame::named("Algorithm_MEMCPY.block_256"));
        g
    }

    fn names(g: &Graph, ids: &std::collections::HashSet<thicket_graph::NodeId>) -> Vec<String> {
        let mut v: Vec<String> = ids.iter().map(|&i| g.node(i).name().to_string()).collect();
        v.sort();
        v
    }

    #[test]
    fn paper_query_string_form() {
        let g = cuda_tree();
        let q = Query::parse(
            r#"(".", name == "Base_CUDA") -> ("*") -> (".", name endswith "block_128")"#,
        )
        .unwrap();
        let hits = q.apply(&g);
        assert_eq!(
            names(&g, &hits),
            vec![
                "Algorithm",
                "Algorithm_MEMCPY",
                "Algorithm_MEMCPY.block_128",
                "Base_CUDA"
            ]
        );
    }

    #[test]
    fn string_matches_builder_semantics() {
        let g = cuda_tree();
        let s = Query::parse(r#"("*") -> (".", name contains "MEMCPY")"#).unwrap();
        let b = Query::builder()
            .any("*")
            .node(".", pred::name_contains("MEMCPY"))
            .build();
        assert_eq!(s.apply(&g), b.apply(&g));
    }

    #[test]
    fn attribute_and_combinators() {
        let g = cuda_tree();
        let q = Query::parse(r#"(".", type == "kernel" and not name endswith "256")"#).unwrap();
        assert_eq!(names(&g, &q.apply(&g)), vec!["Algorithm_MEMCPY"]);
        let q2 = Query::parse(
            r#"(".", name == "Algorithm" or name == "Base_CUDA")"#,
        )
        .unwrap();
        assert_eq!(q2.apply(&g).len(), 2);
    }

    #[test]
    fn parenthesized_expressions() {
        let g = cuda_tree();
        let q = Query::parse(
            r#"(".", (name startswith "Algorithm" or name == "Base_CUDA") and not name contains "block")"#,
        )
        .unwrap();
        assert_eq!(
            names(&g, &q.apply(&g)),
            vec!["Algorithm", "Algorithm_MEMCPY", "Base_CUDA"]
        );
    }

    #[test]
    fn numeric_comparisons() {
        let mut g = Graph::new();
        let r = g.add_root(Frame::named("root").set("depth", 0i64));
        g.add_child(r, Frame::named("deep").set("depth", 5i64));
        let q = Query::parse(r#"(".", depth >= 3)"#).unwrap();
        assert_eq!(names(&g, &q.apply(&g)), vec!["deep"]);
        let q2 = Query::parse(r#"(".", depth < 3)"#).unwrap();
        assert_eq!(names(&g, &q2.apply(&g)), vec!["root"]);
    }

    #[test]
    fn exact_count_quantifier_in_dialect() {
        let g = cuda_tree();
        let q = Query::parse(r#"(".", name == "Base_CUDA") -> (2) -> (".")"#).unwrap();
        // Base_CUDA -> Algorithm, MEMCPY -> block leaf: full depth-4 paths.
        assert_eq!(q.apply(&g).len(), 5);
    }

    #[test]
    fn quantifier_token_forms() {
        for q in [r#"(".")"#, r#"("*")"#, r#"("+")"#, "(.)", "(*)", "(+)", "(2)"] {
            assert!(Query::parse(q).is_ok(), "should parse {q}");
        }
    }

    #[test]
    fn missing_attribute_never_matches() {
        let g = cuda_tree();
        let q = Query::parse(r#"(".", missing == "x")"#).unwrap();
        assert!(q.apply(&g).is_empty());
        // != on a missing attribute is also false (three-valued logic).
        let q2 = Query::parse(r#"(".", missing != "x")"#).unwrap();
        assert!(q2.apply(&g).is_empty());
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "(",
            r#"(".") -> "#,
            r#"(".", name = "x")"#,
            r#"(".", name == )"#,
            r#"(".", name startswith 5)"#,
            r#"(".", == "x")"#,
            r#"("?")"#,
            r#"(".") extra"#,
            r#"(".", name == "unterminated)"#,
        ] {
            assert!(Query::parse(bad).is_err(), "should fail: {bad}");
        }
    }

    #[test]
    fn errors_carry_real_byte_offsets() {
        // Bad quantifier: offset points at the quantifier token, not 0.
        let e = Query::parse(r#"("?x")"#).unwrap_err();
        assert_eq!(e.offset, 1, "{e}");
        // String-op on a non-string literal: offset points at the operator.
        let input = r#"(".", name startswith 5)"#;
        let e = Query::parse(input).unwrap_err();
        assert_eq!(e.offset, input.find("startswith").unwrap(), "{e}");
        // Trailing garbage after a bare predicate.
        let e = super::parse_pred(r#"a == 1 b"#).unwrap_err();
        assert_eq!(e.offset, 7, "{e}");
    }

    #[test]
    fn parse_pred_builds_engine_ast() {
        use thicket_dataframe::PredExpr;
        let e = super::parse_pred(r#"cluster == "quartz" and problem_size >= 30 and not name contains "x""#)
            .unwrap();
        assert_eq!(e.conjuncts().len(), 3);
        assert_eq!(
            e.fields().into_iter().collect::<Vec<_>>(),
            vec!["cluster", "name", "problem_size"]
        );
        // Numbers lex as floats; equality still matches ints numerically.
        assert!(matches!(e.conjuncts()[1], PredExpr::Cmp { .. }));
    }

    #[test]
    fn escaped_strings() {
        let mut g = Graph::new();
        g.add_root(Frame::named("weird\"name"));
        let q = Query::parse(r#"(".", name == "weird\"name")"#).unwrap();
        assert_eq!(q.apply(&g).len(), 1);
    }
}
