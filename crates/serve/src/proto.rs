//! Request/response vocabulary for the `thicketd` wire protocol.
//!
//! Every frame payload is one JSON object through the hardened
//! [`thicket_perfsim::json`] codec. Requests carry an `"op"`
//! discriminator; responses carry either `"ok"` (success shape) or
//! `"err"` (typed failure). Predicates and call-path queries travel as
//! their *dialect strings* (`cluster == "quartz" and problem_size >=
//! 30`, `(".", name == "X") -> ("*")`) and are parsed server-side —
//! the wire never carries a serialized AST, so the protocol surface
//! stays exactly as wide as the two parsers the repo already hardens.

use thicket_perfsim::{Json, Profile};

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load the profiles matching a dialect predicate (`None` = all),
    /// straight off a pinned snapshot.
    LoadMatching {
        /// Dialect predicate string, e.g. `cluster == "quartz"`.
        pred: Option<String>,
    },
    /// Apply a call-path query (string dialect) to the thicket
    /// composed from the matching profiles; returns the surviving
    /// call-tree node names.
    Query {
        /// Call-path query, e.g. `(".", name == "X") -> ("*")`.
        query: String,
        /// Optional dialect predicate narrowing the ensemble first.
        pred: Option<String>,
    },
    /// Per-node aggregate statistics of one metric across the matching
    /// profiles.
    NodeStats {
        /// Metric name, e.g. `time (exc)`.
        metric: String,
        /// Optional dialect predicate narrowing the ensemble first.
        pred: Option<String>,
    },
    /// Store and server status.
    Status,
    /// Debug op (only with `enable_debug_ops`): hold the worker — and
    /// a pinned snapshot, modeling a long-running query — for `ms`
    /// milliseconds. Exists to make overload, deadline, drain, and
    /// daemon-kill tests deterministic.
    DebugSleep {
        /// How long the worker sleeps.
        ms: u64,
    },
    /// Debug op (only with `enable_debug_ops`): panic inside the
    /// worker, exercising the per-request isolation path.
    DebugPanic,
}

/// One row of a [`Response::Stats`] result.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStat {
    /// Call-tree node name.
    pub node: String,
    /// Number of (profile, node) observations.
    pub count: u64,
    /// Mean of the metric over the observations.
    pub mean: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// The `status` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusInfo {
    /// Newest store generation the server reads.
    pub generation: u64,
    /// Profiles in that generation.
    pub profiles: usize,
    /// Requests served since start.
    pub served: u64,
    /// Connections shed with `Overloaded` since start.
    pub shed: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
}

/// Typed failures a server can answer with.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded work queue is full; retry after the hinted delay.
    Overloaded {
        /// Server's retry hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The store's commit/lease coordination timed out underneath the
    /// request ([`thicket_perfsim::StoreError::Busy`]).
    Busy {
        /// How long the store waited before giving up, in ms.
        waited_ms: u64,
    },
    /// The request exceeded its server-side deadline.
    DeadlineExceeded,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The request was malformed (bad JSON, unknown op, bad dialect
    /// string, oversized frame, disabled debug op).
    BadRequest(String),
    /// The request failed inside the server (including an isolated
    /// worker panic); the connection stays usable.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded (retry after {retry_after_ms} ms)")
            }
            ServeError::Busy { waited_ms } => {
                write!(f, "store busy (waited {waited_ms} ms)")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::BadRequest(d) => write!(f, "bad request: {d}"),
            ServeError::Internal(d) => write!(f, "internal error: {d}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Whether a client retry can reasonably succeed (transient
    /// contention, not a malformed request).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. } | ServeError::Busy { .. } | ServeError::ShuttingDown
        )
    }
}

/// A server response. (No `PartialEq`: [`Profile`] compares by
/// content hash, not structural equality — tests compare the wire
/// JSON instead.)
#[derive(Debug, Clone)]
pub enum Response {
    /// Matching profiles, plus the pinned generation they came from.
    Profiles {
        /// Generation the snapshot pinned.
        generation: u64,
        /// The matching profiles.
        profiles: Vec<Profile>,
    },
    /// Call-path query result: surviving node names, plus how many
    /// perf-data rows survived with them.
    Nodes {
        /// Distinct node names on matching paths, traversal order.
        nodes: Vec<String>,
        /// Perf-data rows in the queried thicket.
        rows: usize,
    },
    /// Per-node statistics of one metric.
    Stats {
        /// The metric the stats describe.
        metric: String,
        /// One row per node name, store order.
        rows: Vec<NodeStat>,
    },
    /// Status payload.
    Status(StatusInfo),
    /// Acknowledgement carrying no data (debug ops).
    Done,
    /// A typed failure.
    Error(ServeError),
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: u64) -> Json {
    Json::Num(n as f64)
}

fn opt_str(v: &Option<String>) -> Json {
    match v {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

fn get_str(doc: &Json, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn get_opt_str(doc: &Json, key: &str) -> Result<Option<String>, String> {
    match doc.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s.clone())),
        Some(_) => Err(format!("field {key:?} must be a string or null")),
    }
}

fn get_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_i64)
        .and_then(|n| u64::try_from(n).ok())
        .ok_or_else(|| format!("missing non-negative integer field {key:?}"))
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number field {key:?}"))
}

impl Request {
    /// Serialize to the wire JSON shape.
    pub fn to_json(&self) -> Json {
        match self {
            Request::LoadMatching { pred } => obj(vec![
                ("op", Json::Str("load_matching".into())),
                ("pred", opt_str(pred)),
            ]),
            Request::Query { query, pred } => obj(vec![
                ("op", Json::Str("query".into())),
                ("query", Json::Str(query.clone())),
                ("pred", opt_str(pred)),
            ]),
            Request::NodeStats { metric, pred } => obj(vec![
                ("op", Json::Str("node_stats".into())),
                ("metric", Json::Str(metric.clone())),
                ("pred", opt_str(pred)),
            ]),
            Request::Status => obj(vec![("op", Json::Str("status".into()))]),
            Request::DebugSleep { ms } => obj(vec![
                ("op", Json::Str("debug_sleep".into())),
                ("ms", num(*ms)),
            ]),
            Request::DebugPanic => obj(vec![("op", Json::Str("debug_panic".into()))]),
        }
    }

    /// Parse from the wire JSON shape.
    pub fn from_json(doc: &Json) -> Result<Request, String> {
        let op = get_str(doc, "op")?;
        match op.as_str() {
            "load_matching" => Ok(Request::LoadMatching { pred: get_opt_str(doc, "pred")? }),
            "query" => Ok(Request::Query {
                query: get_str(doc, "query")?,
                pred: get_opt_str(doc, "pred")?,
            }),
            "node_stats" => Ok(Request::NodeStats {
                metric: get_str(doc, "metric")?,
                pred: get_opt_str(doc, "pred")?,
            }),
            "status" => Ok(Request::Status),
            "debug_sleep" => Ok(Request::DebugSleep { ms: get_u64(doc, "ms")? }),
            "debug_panic" => Ok(Request::DebugPanic),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

impl Response {
    /// Serialize to the wire JSON shape.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Profiles { generation, profiles } => obj(vec![
                ("ok", Json::Str("profiles".into())),
                ("generation", num(*generation)),
                (
                    "profiles",
                    Json::Arr(profiles.iter().map(Profile::to_json).collect()),
                ),
            ]),
            Response::Nodes { nodes, rows } => obj(vec![
                ("ok", Json::Str("nodes".into())),
                ("rows", num(*rows as u64)),
                (
                    "nodes",
                    Json::Arr(nodes.iter().map(|n| Json::Str(n.clone())).collect()),
                ),
            ]),
            Response::Stats { metric, rows } => obj(vec![
                ("ok", Json::Str("stats".into())),
                ("metric", Json::Str(metric.clone())),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                obj(vec![
                                    ("node", Json::Str(r.node.clone())),
                                    ("count", num(r.count)),
                                    ("mean", Json::Num(r.mean)),
                                    ("min", Json::Num(r.min)),
                                    ("max", Json::Num(r.max)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Response::Status(s) => obj(vec![
                ("ok", Json::Str("status".into())),
                ("generation", num(s.generation)),
                ("profiles", num(s.profiles as u64)),
                ("served", num(s.served)),
                ("shed", num(s.shed)),
                ("uptime_ms", num(s.uptime_ms)),
            ]),
            Response::Done => obj(vec![("ok", Json::Str("done".into()))]),
            Response::Error(e) => match e {
                ServeError::Overloaded { retry_after_ms } => obj(vec![
                    ("err", Json::Str("overloaded".into())),
                    ("retry_after_ms", num(*retry_after_ms)),
                ]),
                ServeError::Busy { waited_ms } => obj(vec![
                    ("err", Json::Str("busy".into())),
                    ("waited_ms", num(*waited_ms)),
                ]),
                ServeError::DeadlineExceeded => {
                    obj(vec![("err", Json::Str("deadline".into()))])
                }
                ServeError::ShuttingDown => {
                    obj(vec![("err", Json::Str("shutting_down".into()))])
                }
                ServeError::BadRequest(d) => obj(vec![
                    ("err", Json::Str("bad_request".into())),
                    ("detail", Json::Str(d.clone())),
                ]),
                ServeError::Internal(d) => obj(vec![
                    ("err", Json::Str("internal".into())),
                    ("detail", Json::Str(d.clone())),
                ]),
            },
        }
    }

    /// Parse from the wire JSON shape.
    pub fn from_json(doc: &Json) -> Result<Response, String> {
        if let Some(err) = doc.get("err").and_then(Json::as_str) {
            let e = match err {
                "overloaded" => ServeError::Overloaded {
                    retry_after_ms: get_u64(doc, "retry_after_ms")?,
                },
                "busy" => ServeError::Busy { waited_ms: get_u64(doc, "waited_ms")? },
                "deadline" => ServeError::DeadlineExceeded,
                "shutting_down" => ServeError::ShuttingDown,
                "bad_request" => ServeError::BadRequest(get_str(doc, "detail")?),
                "internal" => ServeError::Internal(get_str(doc, "detail")?),
                other => return Err(format!("unknown error kind {other:?}")),
            };
            return Ok(Response::Error(e));
        }
        let ok = get_str(doc, "ok")?;
        match ok.as_str() {
            "profiles" => {
                let arr = doc
                    .get("profiles")
                    .and_then(Json::as_arr)
                    .ok_or("missing profiles array")?;
                let profiles = arr
                    .iter()
                    .map(Profile::from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| format!("profile decode: {e}"))?;
                Ok(Response::Profiles { generation: get_u64(doc, "generation")?, profiles })
            }
            "nodes" => {
                let arr = doc
                    .get("nodes")
                    .and_then(Json::as_arr)
                    .ok_or("missing nodes array")?;
                let nodes = arr
                    .iter()
                    .map(|n| n.as_str().map(str::to_string).ok_or("non-string node name"))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Response::Nodes { nodes, rows: get_u64(doc, "rows")? as usize })
            }
            "stats" => {
                let arr = doc
                    .get("rows")
                    .and_then(Json::as_arr)
                    .ok_or("missing rows array")?;
                let rows = arr
                    .iter()
                    .map(|r| {
                        Ok(NodeStat {
                            node: get_str(r, "node")?,
                            count: get_u64(r, "count")?,
                            mean: get_f64(r, "mean")?,
                            min: get_f64(r, "min")?,
                            max: get_f64(r, "max")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Response::Stats { metric: get_str(doc, "metric")?, rows })
            }
            "status" => Ok(Response::Status(StatusInfo {
                generation: get_u64(doc, "generation")?,
                profiles: get_u64(doc, "profiles")? as usize,
                served: get_u64(doc, "served")?,
                shed: get_u64(doc, "shed")?,
                uptime_ms: get_u64(doc, "uptime_ms")?,
            })),
            "done" => Ok(Response::Done),
            other => Err(format!("unknown ok kind {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let text = req.to_json().to_string_compact();
        let back = Request::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(req, back, "request round trip through {text}");
    }

    fn round_trip_resp(resp: Response) {
        let text = resp.to_json().to_string_compact();
        let back = Response::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(resp.to_json(), back.to_json(), "response round trip through {text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::LoadMatching { pred: None });
        round_trip_req(Request::LoadMatching {
            pred: Some("cluster == \"quartz\" and problem_size >= 30".into()),
        });
        round_trip_req(Request::Query {
            query: "(\".\", name == \"Stream\") -> (\"*\")".into(),
            pred: Some("tuning == \"block_128\"".into()),
        });
        round_trip_req(Request::NodeStats { metric: "time (exc)".into(), pred: None });
        round_trip_req(Request::Status);
        round_trip_req(Request::DebugSleep { ms: 250 });
        round_trip_req(Request::DebugPanic);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Nodes {
            nodes: vec!["Stream".into(), "Stream_MUL".into()],
            rows: 12,
        });
        round_trip_resp(Response::Stats {
            metric: "time (exc)".into(),
            rows: vec![NodeStat {
                node: "Stream_MUL".into(),
                count: 4,
                mean: 0.5,
                min: 0.25,
                max: 1.0,
            }],
        });
        round_trip_resp(Response::Status(StatusInfo {
            generation: 3,
            profiles: 2000,
            served: 17,
            shed: 2,
            uptime_ms: 1234,
        }));
        round_trip_resp(Response::Done);
        for e in [
            ServeError::Overloaded { retry_after_ms: 50 },
            ServeError::Busy { waited_ms: 120 },
            ServeError::DeadlineExceeded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("no such op".into()),
            ServeError::Internal("worker panicked".into()),
        ] {
            round_trip_resp(Response::Error(e));
        }
    }

    #[test]
    fn unknown_ops_are_typed_errors() {
        let doc = Json::parse("{\"op\": \"drop_tables\"}").unwrap();
        assert!(Request::from_json(&doc).unwrap_err().contains("unknown op"));
        let doc = Json::parse("{\"neither\": true}").unwrap();
        assert!(Request::from_json(&doc).is_err());
    }
}
