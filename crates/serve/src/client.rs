//! `ThicketClient`: a retrying, deadline-bounded client for the
//! `thicketd` wire protocol.
//!
//! Retry discipline: transient failures — a shed connection
//! ([`ServeError::Overloaded`]), store contention
//! ([`ServeError::Busy`]), a draining server, or a connection-level
//! I/O failure (the daemon restarting) — are retried under the
//! seedable equal-jitter [`Backoff`], bounded by
//! [`Backoff::with_deadline`] so the *total* sleep across all retries
//! never exceeds the client's request budget. The server's
//! `retry_after` hint acts as a floor on each sleep, clamped to the
//! remaining wall budget so the bound still holds. Non-retryable
//! failures (bad request, internal error, deadline) surface
//! immediately.
//!
//! Connection discipline: the client keeps **one persistent framed
//! connection** and reuses it across requests — the server's
//! connection loop is built for exactly this, and skipping the
//! per-request TCP handshake removes the dominant latency term for
//! small requests. Any wire-level failure (I/O, torn frame, protocol
//! violation) invalidates the cached connection; a *stale* reused
//! connection (the server restarted or idled it out) is retried once
//! on a fresh connection immediately, and anything beyond that falls
//! back to the budgeted backoff above.

use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use thicket_perfsim::{Backoff, Json, Profile};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::proto::{NodeStat, Request, Response, ServeError, StatusInfo};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Cap on a declared response frame length, checked pre-allocation.
    pub max_frame: usize,
    /// Total request budget: wall time across every attempt and every
    /// backoff sleep.
    pub deadline: Duration,
    /// First backoff slot.
    pub backoff_base: Duration,
    /// Backoff slot cap.
    pub backoff_cap: Duration,
    /// Jitter seed — fix it for reproducible retry schedules.
    pub backoff_seed: u64,
    /// Socket read timeout while waiting for the response.
    pub read_timeout: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            max_frame: DEFAULT_MAX_FRAME,
            deadline: Duration::from_secs(10),
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(500),
            backoff_seed: 0,
            read_timeout: Duration::from_secs(5),
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The server answered with a non-retryable typed error.
    Server(ServeError),
    /// The request budget ran out; `last` is the most recent transient
    /// failure description, if any attempt got that far.
    DeadlineExceeded {
        /// Last transient failure seen before the budget ran out.
        last: Option<String>,
    },
    /// A connection-level failure on the final permitted attempt.
    Io(std::io::Error),
    /// The server broke the frame protocol.
    Frame(FrameError),
    /// The response frame parsed as JSON but not as a known response.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::DeadlineExceeded { last: Some(l) } => {
                write!(f, "request budget exhausted (last failure: {l})")
            }
            ClientError::DeadlineExceeded { last: None } => {
                write!(f, "request budget exhausted")
            }
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A client for one `thicketd` address. Holds one persistent framed
/// connection, established lazily and reused across requests; the
/// client is `Send`, and a clone starts with its own connection slot
/// (clones never serialize behind each other's in-flight requests).
#[derive(Debug)]
pub struct ThicketClient {
    addr: String,
    opts: ClientOptions,
    /// The cached connection. `None` until the first request, and
    /// again after any wire-level failure invalidates it.
    conn: Arc<Mutex<Option<TcpStream>>>,
}

impl Clone for ThicketClient {
    fn clone(&self) -> ThicketClient {
        ThicketClient {
            addr: self.addr.clone(),
            opts: self.opts.clone(),
            conn: Arc::new(Mutex::new(None)),
        }
    }
}

impl ThicketClient {
    /// A client with default options.
    pub fn new(addr: impl Into<String>) -> ThicketClient {
        ThicketClient {
            addr: addr.into(),
            opts: ClientOptions::default(),
            conn: Arc::new(Mutex::new(None)),
        }
    }

    /// A client with explicit options.
    pub fn with_options(addr: impl Into<String>, opts: ClientOptions) -> ThicketClient {
        ThicketClient { addr: addr.into(), opts, conn: Arc::new(Mutex::new(None)) }
    }

    /// Dial and configure a fresh connection.
    fn connect(&self) -> Result<TcpStream, ClientError> {
        let stream = TcpStream::connect(&self.addr).map_err(ClientError::Io)?;
        stream
            .set_read_timeout(Some(self.opts.read_timeout))
            .map_err(ClientError::Io)?;
        stream
            .set_write_timeout(Some(self.opts.read_timeout))
            .map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    /// One framed request/response exchange on an open connection.
    fn round_trip(&self, stream: &mut TcpStream, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(stream, payload).map_err(ClientError::Io)?;
        let frame = read_frame(stream, self.opts.max_frame, self.opts.read_timeout)
            .map_err(ClientError::Frame)?
            .ok_or_else(|| {
                ClientError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before responding",
                ))
            })?;
        let text = std::str::from_utf8(&frame)
            .map_err(|e| ClientError::Protocol(format!("response not UTF-8: {e}")))?;
        let doc = Json::parse(text)
            .map_err(|e| ClientError::Protocol(format!("response not JSON: {e}")))?;
        Response::from_json(&doc).map_err(ClientError::Protocol)
    }

    /// One wire attempt, no backoff: reuse the cached connection (or
    /// dial one), exchange frames, and keep the connection only on
    /// success. A reused connection that fails with an I/O error is
    /// most likely stale (the server restarted or closed it idle), so
    /// that one case gets a single immediate redial — a genuine outage
    /// fails the redial too and lands in the caller's backoff.
    fn attempt(&self, payload: &[u8]) -> Result<Response, ClientError> {
        let mut guard = self.conn.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let reused = guard.is_some();
        let mut stream = match guard.take() {
            Some(stream) => stream,
            None => self.connect()?,
        };
        match self.round_trip(&mut stream, payload) {
            Ok(resp) => {
                *guard = Some(stream);
                Ok(resp)
            }
            Err(ClientError::Io(_)) if reused => {
                let mut fresh = self.connect()?;
                let resp = self.round_trip(&mut fresh, payload)?;
                *guard = Some(fresh);
                Ok(resp)
            }
            // Any other wire-level failure: the stream position is
            // unknowable, so the connection stays invalidated.
            Err(e) => Err(e),
        }
    }

    /// Send `request`, retrying transient failures under the budgeted
    /// backoff, until success, a permanent failure, or budget
    /// exhaustion.
    pub fn request(&self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.to_json().to_string_compact().into_bytes();
        let start = Instant::now();
        let mut backoff = Backoff::new(
            self.opts.backoff_base,
            self.opts.backoff_cap,
            self.opts.backoff_seed,
        )
        .with_deadline(self.opts.deadline);
        let mut last: Option<String> = None;
        loop {
            if start.elapsed() >= self.opts.deadline {
                return Err(ClientError::DeadlineExceeded { last });
            }
            let (transient, hint) = match self.attempt(&payload) {
                Ok(Response::Error(e)) if e.is_retryable() => {
                    let hint = match e {
                        ServeError::Overloaded { retry_after_ms } => {
                            Some(Duration::from_millis(retry_after_ms))
                        }
                        _ => None,
                    };
                    (e.to_string(), hint)
                }
                Ok(Response::Error(e)) => return Err(ClientError::Server(e)),
                Ok(resp) => return Ok(resp),
                // Connection-level failures are transient by policy: a
                // restarting daemon looks exactly like this.
                Err(ClientError::Io(e)) => (format!("connection: {e}"), None),
                Err(other) => return Err(other),
            };
            last = Some(transient);
            // Budgeted sleep: the backoff's deadline bounds its own
            // total; the server hint may raise one sleep but is
            // clamped to the remaining wall budget.
            let Some(delay) = backoff.next() else {
                return Err(ClientError::DeadlineExceeded { last });
            };
            let wall_left = self.opts.deadline.saturating_sub(start.elapsed());
            let sleep = delay.max(hint.unwrap_or(Duration::ZERO)).min(wall_left);
            if sleep.is_zero() && wall_left.is_zero() {
                return Err(ClientError::DeadlineExceeded { last });
            }
            std::thread::sleep(sleep);
        }
    }

    fn expect_server_err(resp: Response) -> ClientError {
        match resp {
            Response::Error(e) => ClientError::Server(e),
            other => ClientError::Protocol(format!("unexpected response shape: {other:?}")),
        }
    }

    /// Load the profiles matching a dialect predicate (`None` = all).
    /// Returns the pinned generation and the profiles.
    pub fn load_matching(
        &self,
        pred: Option<&str>,
    ) -> Result<(u64, Vec<Profile>), ClientError> {
        let req = Request::LoadMatching { pred: pred.map(str::to_string) };
        match self.request(&req)? {
            Response::Profiles { generation, profiles } => Ok((generation, profiles)),
            other => Err(Self::expect_server_err(other)),
        }
    }

    /// Run a call-path query (string dialect) server-side; returns the
    /// surviving node names and the surviving perf-row count.
    pub fn query_nodes(
        &self,
        query: &str,
        pred: Option<&str>,
    ) -> Result<(Vec<String>, usize), ClientError> {
        let req = Request::Query { query: query.into(), pred: pred.map(str::to_string) };
        match self.request(&req)? {
            Response::Nodes { nodes, rows } => Ok((nodes, rows)),
            other => Err(Self::expect_server_err(other)),
        }
    }

    /// Per-node stats of `metric` across the matching profiles.
    pub fn node_stats(
        &self,
        metric: &str,
        pred: Option<&str>,
    ) -> Result<Vec<NodeStat>, ClientError> {
        let req = Request::NodeStats { metric: metric.into(), pred: pred.map(str::to_string) };
        match self.request(&req)? {
            Response::Stats { rows, .. } => Ok(rows),
            other => Err(Self::expect_server_err(other)),
        }
    }

    /// Server and store status.
    pub fn status(&self) -> Result<StatusInfo, ClientError> {
        match self.request(&Request::Status)? {
            Response::Status(s) => Ok(s),
            other => Err(Self::expect_server_err(other)),
        }
    }
}
