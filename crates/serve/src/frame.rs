//! The wire frame: a 4-byte big-endian length prefix followed by that
//! many bytes of UTF-8 JSON.
//!
//! Two rules make the codec robust against hostile or broken peers,
//! mirroring the discipline `binprofile`'s `Cursor` applies to shard
//! payloads:
//!
//! 1. **The declared length is checked against a cap *before* any
//!    allocation.** A peer declaring a 4 GiB frame costs four bytes of
//!    read and one typed [`FrameError::Oversized`], never a 4 GiB
//!    `Vec`.
//! 2. **A frame, once started, must finish within a deadline.** The
//!    reader distinguishes an *idle* socket (no frame in progress —
//!    [`FrameError::IdleTimeout`], the server's cue to poll its
//!    shutdown flag) from a *slow* peer trickling bytes mid-frame
//!    ([`FrameError::SlowPeer`], the slow-loris cut) and from a peer
//!    that hung up mid-frame ([`FrameError::Torn`]).
//!
//! Timeouts ride on the socket's own `set_read_timeout`; the reader
//! treats `WouldBlock`/`TimedOut` as ticks of that clock.

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Default cap on a declared frame length (8 MiB): comfortably above
/// any response the 2,000-profile reference store produces, far below
/// anything that could pressure the allocator.
pub const DEFAULT_MAX_FRAME: usize = 8 * 1024 * 1024;

/// Why a frame read failed.
#[derive(Debug)]
pub enum FrameError {
    /// The declared length exceeds the configured cap. No allocation
    /// was made.
    Oversized {
        /// Length the peer declared.
        declared: u64,
        /// The configured cap it exceeded.
        cap: usize,
    },
    /// The peer hung up mid-frame (EOF after the frame started).
    Torn {
        /// Bytes received of the current section.
        got: usize,
        /// Bytes the section needed.
        want: usize,
    },
    /// The peer is trickling bytes: the frame did not complete within
    /// the frame deadline (slow-loris defense).
    SlowPeer {
        /// Wall time since the frame's first byte.
        elapsed: Duration,
    },
    /// The socket's read timeout fired with no frame in progress. Not
    /// a protocol violation — the caller decides whether to keep
    /// waiting (and typically polls its shutdown flag first).
    IdleTimeout,
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { declared, cap } => {
                write!(f, "declared frame length {declared} exceeds cap {cap}")
            }
            FrameError::Torn { got, want } => {
                write!(f, "peer hung up mid-frame ({got}/{want} bytes)")
            }
            FrameError::SlowPeer { elapsed } => {
                write!(f, "frame incomplete after {elapsed:?} (slow peer)")
            }
            FrameError::IdleTimeout => write!(f, "idle read timeout"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Write one frame: length prefix, payload, flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds u32")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Fill `buf` from `r`, treating socket read timeouts as clock ticks
/// against `deadline` (measured from `start`). `None` deadline start
/// means "no frame in progress yet": a timeout there surfaces as
/// [`FrameError::IdleTimeout`] instead.
fn read_exact_deadline(
    r: &mut impl Read,
    buf: &mut [u8],
    started: &mut Option<Instant>,
    deadline: Duration,
) -> Result<bool, FrameError> {
    let want = buf.len();
    let mut got = 0usize;
    while got < want {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 && started.is_none() {
                    return Ok(false); // clean EOF at a frame boundary
                }
                return Err(FrameError::Torn { got, want });
            }
            Ok(n) => {
                started.get_or_insert_with(Instant::now);
                got += n;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => match *started {
                None => return Err(FrameError::IdleTimeout),
                Some(t0) => {
                    let elapsed = t0.elapsed();
                    if elapsed > deadline {
                        return Err(FrameError::SlowPeer { elapsed });
                    }
                }
            },
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` is a clean disconnect at a frame
/// boundary. The declared length is validated against `cap` before the
/// payload buffer is allocated; `frame_deadline` bounds the wall time
/// from the frame's first byte to its last.
pub fn read_frame(
    r: &mut impl Read,
    cap: usize,
    frame_deadline: Duration,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut started: Option<Instant> = None;
    let mut len_buf = [0u8; 4];
    if !read_exact_deadline(r, &mut len_buf, &mut started, frame_deadline)? {
        return Ok(None);
    }
    let declared = u64::from(u32::from_be_bytes(len_buf));
    if declared > cap as u64 {
        return Err(FrameError::Oversized { declared, cap });
    }
    // Only now, with the length proven sane, allocate.
    let mut payload = vec![0u8; declared as usize];
    if !read_exact_deadline(r, &mut payload, &mut started, frame_deadline)? {
        return Err(FrameError::Torn { got: 0, want: declared as usize });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn framed(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload).unwrap();
        out
    }

    #[test]
    fn round_trip() {
        let wire = framed(b"{\"op\":\"status\"}");
        let mut r = Cursor::new(wire);
        let got = read_frame(&mut r, DEFAULT_MAX_FRAME, Duration::from_secs(1))
            .unwrap()
            .unwrap();
        assert_eq!(got, b"{\"op\":\"status\"}");
        // Clean EOF at the boundary: None, not an error.
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME, Duration::from_secs(1))
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_is_rejected_before_allocation() {
        // Declare 3 GiB; supply nothing. If the reader allocated
        // first, this test would OOM long before failing.
        let wire = (3u32 << 30).to_be_bytes().to_vec();
        let err = read_frame(&mut Cursor::new(wire), 1024, Duration::from_secs(1)).unwrap_err();
        match err {
            FrameError::Oversized { declared, cap } => {
                assert_eq!(declared, 3 << 30);
                assert_eq!(cap, 1024);
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn torn_length_and_torn_payload() {
        // Two of four length bytes.
        let err =
            read_frame(&mut Cursor::new(vec![0, 0]), 1024, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, FrameError::Torn { got: 2, want: 4 }), "{err}");
        // Full length, half the payload.
        let mut wire = framed(b"abcdef");
        wire.truncate(4 + 3);
        let err = read_frame(&mut Cursor::new(wire), 1024, Duration::from_secs(1)).unwrap_err();
        assert!(matches!(err, FrameError::Torn { got: 3, want: 6 }), "{err}");
    }

    /// A reader that yields timeouts between single bytes: the
    /// slow-loris shape, without sockets.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        timeouts_between: u32,
        pending: u32,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending > 0 {
                self.pending -= 1;
                std::thread::sleep(Duration::from_millis(2));
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            self.pending = self.timeouts_between;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn slow_peer_is_cut_by_the_frame_deadline() {
        let mut r = Trickle {
            data: framed(&[b'x'; 64]),
            pos: 0,
            timeouts_between: 3,
            pending: 0,
        };
        let err = read_frame(&mut r, 1024, Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, FrameError::SlowPeer { .. }), "{err}");
    }

    #[test]
    fn idle_timeout_is_not_slow_peer() {
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
            }
        }
        let err =
            read_frame(&mut AlwaysTimeout, 1024, Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, FrameError::IdleTimeout), "{err}");
    }
}
