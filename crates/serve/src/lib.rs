//! # thicket-serve
//!
//! `thicketd`: a fault-tolerant concurrent query service over the
//! pinned store — the Thicket paper's "many clients, one shared
//! ensemble" shape (and PAPERS.md's exascale-diagnostics scale
//! reference) made concrete as a long-lived daemon.
//!
//! The crate is std-only: `std::net::TcpListener`, `std::thread`, and
//! the workspace's own building blocks — the hardened
//! [`thicket_perfsim::json`] codec on the wire, MVCC snapshot pinning
//! ([`thicket_perfsim::Store::open_pinned_opts`]) per request, and the
//! seedable equal-jitter [`thicket_perfsim::Backoff`] (deadline-bounded
//! via `with_deadline`) driving client retries.
//!
//! Layering:
//!
//! * [`frame`] — the length-prefixed wire frame; declared lengths are
//!   bounds-checked before allocation, slow peers are cut by a
//!   per-frame deadline.
//! * [`proto`] — the JSON request/response vocabulary; predicates and
//!   call-path queries travel as dialect strings and are parsed
//!   server-side.
//! * [`server`] — accept loop, bounded shed queue, worker pool,
//!   per-request pin/deadline/panic-isolation lifecycle, graceful
//!   drain.
//! * [`client`] — [`ThicketClient`], retrying transient failures under
//!   a budgeted backoff.
//!
//! See DESIGN.md's "Service layer" section for the protocol and
//! robustness contract in one place.

#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::{ClientError, ClientOptions, ThicketClient};
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
pub use proto::{NodeStat, Request, Response, ServeError, StatusInfo};
pub use server::{ServeOptions, Server};
